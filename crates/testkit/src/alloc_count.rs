//! Optional global-allocator instrumentation for the bench harness.
//!
//! Behind the (default-off) `count-allocs` feature this module installs a
//! counting wrapper around the system allocator and exposes its running
//! totals. The bench harness ([`crate::bench`]) uses the counters to record
//! **allocations per iteration** into the JSONL stream, which is how CI
//! enforces the zero-allocation steady-state contract of the pooled round
//! loop (experiment E13).
//!
//! Beyond call counts, the wrapper keeps dhat-style **byte tracking**: a
//! live-bytes gauge (allocated minus freed) and a high-water mark
//! ([`peak_bytes`], resettable with [`reset_peak`]), which the harness
//! surfaces as a `peak_bytes` column so memory-footprint regressions show up
//! next to throughput ones.
//!
//! Without the feature every function here is a stub that reports counting
//! as disabled, so the default build carries no allocator interposition and
//! no atomic traffic.

/// `true` when the crate was built with `count-allocs` and the counting
/// allocator is installed.
pub fn enabled() -> bool {
    cfg!(feature = "count-allocs")
}

/// Running total of allocation calls (`alloc`, `alloc_zeroed`, `realloc`)
/// since process start. Always 0 without the `count-allocs` feature.
pub fn allocs() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

/// Running total of `dealloc` calls since process start. Always 0 without
/// the `count-allocs` feature.
pub fn frees() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting::FREES.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

/// Bytes currently allocated (allocated minus freed since process start).
/// Clamped at zero: memory allocated before the counters existed may be
/// freed through them. Always 0 without the `count-allocs` feature.
pub fn live_bytes() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting::LIVE.load(std::sync::atomic::Ordering::Relaxed).max(0) as u64
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

/// High-water mark of [`live_bytes`] since process start or the last
/// [`reset_peak`]. Always 0 without the `count-allocs` feature.
pub fn peak_bytes() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting::PEAK.load(std::sync::atomic::Ordering::Relaxed).max(0) as u64
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

/// Resets the high-water mark to the current live-bytes level, so a caller
/// can measure the peak *of one region* (the bench harness resets before
/// each measured batch). No-op without the `count-allocs` feature.
pub fn reset_peak() {
    #[cfg(feature = "count-allocs")]
    {
        use std::sync::atomic::Ordering;
        let live = counting::LIVE.load(Ordering::Relaxed);
        counting::PEAK.store(live, Ordering::Relaxed);
    }
}

#[cfg(feature = "count-allocs")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static FREES: AtomicU64 = AtomicU64::new(0);
    /// Live bytes. Signed: frees of pre-instrumentation memory may drive
    /// the balance below zero transiently; readers clamp at 0.
    pub static LIVE: AtomicI64 = AtomicI64::new(0);
    /// High-water mark of `LIVE` (monotone between `reset_peak` calls).
    pub static PEAK: AtomicI64 = AtomicI64::new(0);

    /// Charges `delta` bytes to the live gauge and folds the new level into
    /// the peak. The update is racy across threads (two relaxed atomics),
    /// which is fine for instrumentation: the mark can only under-report by
    /// the width of a concurrent in-flight update, never drift.
    fn charge(delta: i64) {
        let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
    }

    /// System allocator plus relaxed counters. Counting must never perturb
    /// what it measures, so there is no locking and no allocation here.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            charge(layout.size() as i64);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            charge(layout.size() as i64);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            charge(new_size as i64 - layout.size() as i64);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            FREES.fetch_add(1, Ordering::Relaxed);
            charge(-(layout.size() as i64));
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(all(test, feature = "count-allocs"))]
mod tests {
    #[test]
    fn counters_advance_on_allocation() {
        let before = super::allocs();
        let v: Vec<u8> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        drop(v);
        assert!(super::allocs() > before);
        assert!(super::enabled());
    }

    #[test]
    fn peak_tracks_highwater_and_resets() {
        super::reset_peak();
        let baseline = super::peak_bytes();
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        std::hint::black_box(&v);
        let with_block = super::peak_bytes();
        assert!(
            with_block >= baseline + (1 << 20),
            "peak should include the 1MiB block: baseline={baseline} with={with_block}"
        );
        drop(v);
        // The mark holds after the free...
        assert!(super::peak_bytes() >= with_block - 64);
        // ...until reset drops it back near the live level.
        super::reset_peak();
        assert!(super::peak_bytes() < with_block, "reset should shed the freed block");
    }

    #[test]
    fn live_bytes_falls_after_free() {
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        std::hint::black_box(&v);
        let held = super::live_bytes();
        drop(v);
        let after = super::live_bytes();
        assert!(after + (1 << 20) <= held + 65536, "live should fall by ~1MiB: {held} -> {after}");
    }
}
