//! Optional global-allocator instrumentation for the bench harness.
//!
//! Behind the (default-off) `count-allocs` feature this module installs a
//! counting wrapper around the system allocator and exposes its running
//! totals. The bench harness ([`crate::bench`]) uses the counters to record
//! **allocations per iteration** into the JSONL stream, which is how CI
//! enforces the zero-allocation steady-state contract of the pooled round
//! loop (experiment E13).
//!
//! Without the feature every function here is a stub that reports counting
//! as disabled, so the default build carries no allocator interposition and
//! no atomic traffic.

/// `true` when the crate was built with `count-allocs` and the counting
/// allocator is installed.
pub fn enabled() -> bool {
    cfg!(feature = "count-allocs")
}

/// Running total of allocation calls (`alloc`, `alloc_zeroed`, `realloc`)
/// since process start. Always 0 without the `count-allocs` feature.
pub fn allocs() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

/// Running total of `dealloc` calls since process start. Always 0 without
/// the `count-allocs` feature.
pub fn frees() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting::FREES.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

#[cfg(feature = "count-allocs")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static FREES: AtomicU64 = AtomicU64::new(0);

    /// System allocator plus relaxed counters. Counting must never perturb
    /// what it measures, so there is no locking and no allocation here.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            FREES.fetch_add(1, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(all(test, feature = "count-allocs"))]
mod tests {
    #[test]
    fn counters_advance_on_allocation() {
        let before = super::allocs();
        let v: Vec<u8> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        drop(v);
        assert!(super::allocs() > before);
        assert!(super::enabled());
    }
}
