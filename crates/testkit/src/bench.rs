//! In-tree bench timing: warmup + N samples + median/p95, JSON lines out.
//!
//! The replacement for the criterion dependency. Each `[[bench]]` target
//! (with `harness = false`) builds a [`Bench`] group, times closures with
//! [`Bench::bench`], and prints one human line plus one JSON line per
//! benchmark. JSON lines are appended to `target/goc-bench.jsonl` (override
//! with `GOC_BENCH_JSON`, disable with `GOC_BENCH_JSON=-`) and are consumed
//! by `goc-report --bench-summary`.
//!
//! Environment knobs: `GOC_BENCH_SAMPLES`, `GOC_BENCH_WARMUP`,
//! `GOC_BENCH_QUICK=1` (3 samples, 1 warmup — CI smoke).

use std::fmt::Write as _;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Resolves the default JSON-lines path: `goc-bench.jsonl` inside the cargo
/// target directory. Bench binaries run with the *package* directory as cwd
/// while `goc-report` runs from wherever the user invoked it, so a relative
/// path would scatter files; anchoring on the running binary's own `target`
/// ancestor makes writer and reader agree regardless of cwd.
pub fn default_json_path() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::Path::new(&dir).join("goc-bench.jsonl");
    }
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().is_some_and(|n| n == "target") {
                return anc.join("goc-bench.jsonl");
            }
        }
    }
    std::path::PathBuf::from("target/goc-bench.jsonl")
}

/// One benchmark's measured statistics. All times are nanoseconds per
/// iteration of the benched closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Bench group (one per `[[bench]]` target, e.g. `e1_compact_universal`).
    pub group: String,
    /// Benchmark id within the group (e.g. `classic/3`).
    pub id: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Iterations of the closure per sample.
    pub iters: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Median sample.
    pub median_ns: u64,
    /// 95th-percentile sample.
    pub p95_ns: u64,
    /// Mean over samples.
    pub mean_ns: u64,
    /// Optional throughput denominator (elements processed per iteration).
    pub elems: Option<u64>,
    /// Worker threads the benched code ran with (parallel-variant benches).
    pub threads: Option<u64>,
    /// Candidate-cache hits observed during one probe run of the closure.
    pub cache_hits: Option<u64>,
    /// Candidate-cache misses observed during the same probe run.
    pub cache_misses: Option<u64>,
    /// Heap allocations per iteration (steady state: minimum over probe
    /// passes), when the harness was built with the
    /// `count-allocs` feature. See [`crate::alloc_count`].
    pub allocs: Option<u64>,
    /// Peak live heap bytes above the pre-batch level during one probe batch
    /// (minimum over probe passes — the steady-state footprint), when built
    /// with `count-allocs`. See [`crate::alloc_count::peak_bytes`].
    pub peak_bytes: Option<u64>,
    /// Prewarm mispredictions during a representative run (JSONL key
    /// `prewarm.mispredict`): live second rounds whose inbox none of the
    /// speculated continuations matched.
    pub mispredicts: Option<u64>,
    /// Interpreter core the bench ran on (JSONL key `dispatch.mode`):
    /// `"table"` or `"match"`.
    pub dispatch: Option<String>,
}

impl BenchRecord {
    /// Serialises to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"group\":{},\"id\":{},\"samples\":{},\"iters\":{},\"min_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"mean_ns\":{}",
            json_string(&self.group),
            json_string(&self.id),
            self.samples,
            self.iters,
            self.min_ns,
            self.median_ns,
            self.p95_ns,
            self.mean_ns,
        );
        if let Some(e) = self.elems {
            let _ = write!(s, ",\"elems\":{e}");
        }
        if let Some(t) = self.threads {
            let _ = write!(s, ",\"threads\":{t}");
        }
        if let Some(h) = self.cache_hits {
            let _ = write!(s, ",\"cache_hits\":{h}");
        }
        if let Some(m) = self.cache_misses {
            let _ = write!(s, ",\"cache_misses\":{m}");
        }
        if let Some(a) = self.allocs {
            let _ = write!(s, ",\"allocs\":{a}");
        }
        if let Some(p) = self.peak_bytes {
            let _ = write!(s, ",\"peak_bytes\":{p}");
        }
        if let Some(m) = self.mispredicts {
            let _ = write!(s, ",\"prewarm.mispredict\":{m}");
        }
        if let Some(d) = &self.dispatch {
            let _ = write!(s, ",\"dispatch.mode\":{}", json_string(d));
        }
        s.push('}');
        s
    }

    /// Cache hits as a fraction of all lookups, when both counters were
    /// recorded and at least one lookup happened.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let (h, m) = (self.cache_hits?, self.cache_misses?);
        if h + m == 0 {
            return None;
        }
        Some(h as f64 / (h + m) as f64)
    }

    /// Parses a line produced by [`to_json_line`](Self::to_json_line).
    /// Accepts any flat JSON object with string/unsigned-integer values;
    /// returns `None` on malformed input or missing fields.
    pub fn parse_json_line(line: &str) -> Option<BenchRecord> {
        let fields = parse_flat_object(line)?;
        let get_s = |k: &str| {
            fields.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
                JsonValue::Str(s) => Some(s.clone()),
                JsonValue::Num(_) => None,
            })
        };
        let get_n = |k: &str| {
            fields.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
                JsonValue::Num(n) => Some(*n),
                JsonValue::Str(_) => None,
            })
        };
        Some(BenchRecord {
            group: get_s("group")?,
            id: get_s("id")?,
            samples: get_n("samples")?,
            iters: get_n("iters")?,
            min_ns: get_n("min_ns")?,
            median_ns: get_n("median_ns")?,
            p95_ns: get_n("p95_ns")?,
            mean_ns: get_n("mean_ns")?,
            elems: get_n("elems"),
            threads: get_n("threads"),
            cache_hits: get_n("cache_hits"),
            cache_misses: get_n("cache_misses"),
            allocs: get_n("allocs"),
            peak_bytes: get_n("peak_bytes"),
            mispredicts: get_n("prewarm.mispredict"),
            dispatch: get_s("dispatch.mode"),
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(u64),
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal parser for a single-line flat JSON object with string and
/// unsigned-integer values — exactly the dialect [`BenchRecord`] emits.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = line.trim().chars().peekable();
    let mut out = Vec::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            '"' => {
                let key = parse_string(&mut chars)?;
                skip_ws(&mut chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(&mut chars);
                let value = match chars.peek()? {
                    '"' => JsonValue::Str(parse_string(&mut chars)?),
                    c if c.is_ascii_digit() => {
                        let mut n = String::new();
                        while let Some(c) = chars.peek() {
                            if c.is_ascii_digit() {
                                n.push(*c);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        JsonValue::Num(n.parse().ok()?)
                    }
                    _ => return None,
                };
                out.push((key, value));
                skip_ws(&mut chars);
                match chars.peek()? {
                    ',' => {
                        chars.next();
                    }
                    '}' => {}
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Renders a byte quantity with a sensible unit (binary prefixes).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Renders a nanosecond quantity with a sensible unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Optional per-benchmark annotations carried into the JSONL record.
///
/// Used by the parallel-variant benches (thread count) and the
/// candidate-cache benches (hit/miss counters measured over one probe run of
/// the closure, since the harness's own iteration count is calibrated).
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchMeta {
    /// Throughput denominator, as in [`Bench::bench_elems`].
    pub elems: Option<u64>,
    /// Worker threads the benched code runs with.
    pub threads: Option<u64>,
    /// Candidate-cache hits during a representative run.
    pub cache_hits: Option<u64>,
    /// Candidate-cache misses during the same run.
    pub cache_misses: Option<u64>,
    /// Explicit allocations-per-iteration override. When `None` and the
    /// `count-allocs` feature is on, the harness measures it itself.
    pub allocs: Option<u64>,
    /// Explicit peak-bytes override. When `None` and `count-allocs` is on,
    /// the harness measures it alongside the allocation probe.
    pub peak_bytes: Option<u64>,
    /// Prewarm mispredictions during a representative run.
    pub mispredicts: Option<u64>,
    /// Interpreter core label (`"table"` / `"match"`). `&'static str` so the
    /// meta stays `Copy`.
    pub dispatch: Option<&'static str>,
}

/// A benchmark group: times closures and reports per-iteration statistics.
pub struct Bench {
    group: String,
    samples: u64,
    warmup: u64,
    /// Target wall time per sample; the harness batches fast closures so a
    /// sample is long enough for the clock to resolve.
    min_sample_ns: u128,
    sink: Option<std::fs::File>,
    records: Vec<BenchRecord>,
}

impl Bench {
    /// Opens a bench group, honouring the `GOC_BENCH_*` environment knobs.
    pub fn group(name: &str) -> Self {
        let quick = std::env::var("GOC_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let samples = env_u64("GOC_BENCH_SAMPLES").unwrap_or(if quick { 3 } else { 12 }).max(1);
        let warmup = env_u64("GOC_BENCH_WARMUP").unwrap_or(if quick { 1 } else { 3 });
        let path = std::env::var("GOC_BENCH_JSON")
            .unwrap_or_else(|_| default_json_path().to_string_lossy().into_owned());
        let sink = if path == "-" {
            None
        } else {
            if let Some(dir) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                Ok(f) => Some(f),
                Err(e) => {
                    eprintln!("goc-bench: cannot open {path}: {e}; JSON lines go to stdout only");
                    None
                }
            }
        };
        println!("\n== {name} ==");
        Bench {
            group: name.to_string(),
            samples,
            warmup,
            min_sample_ns: if quick { 1_000_000 } else { 10_000_000 },
            sink,
            records: Vec::new(),
        }
    }

    /// Overrides the sample count (the env knobs still win if set).
    pub fn samples(mut self, n: u64) -> Self {
        if std::env::var("GOC_BENCH_SAMPLES").is_err()
            && std::env::var("GOC_BENCH_QUICK").is_err()
        {
            self.samples = n.max(1);
        }
        self
    }

    /// Times `f`, recording per-iteration statistics under `id`.
    pub fn bench<R>(&mut self, id: impl Into<String>, f: impl FnMut() -> R) {
        self.run(id.into(), BenchMeta::default(), f);
    }

    /// Like [`bench`](Self::bench), recording that each iteration processes
    /// `elems` elements so the summary can show throughput.
    pub fn bench_elems<R>(&mut self, id: impl Into<String>, elems: u64, f: impl FnMut() -> R) {
        self.run(id.into(), BenchMeta { elems: Some(elems), ..BenchMeta::default() }, f);
    }

    /// Like [`bench`](Self::bench), attaching thread-count and cache-counter
    /// annotations to the record.
    pub fn bench_tagged<R>(
        &mut self,
        id: impl Into<String>,
        meta: BenchMeta,
        f: impl FnMut() -> R,
    ) {
        self.run(id.into(), meta, f);
    }

    fn run<R>(&mut self, id: String, meta: BenchMeta, mut f: impl FnMut() -> R) {
        // Calibrate: batch enough iterations that one sample is measurable.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let iters = ((self.min_sample_ns / once).clamp(1, 1_000_000)) as u64;

        for _ in 0..self.warmup {
            for _ in 0..iters {
                black_box(f());
            }
        }
        let mut per_iter_ns: Vec<u64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() / iters as u128;
            per_iter_ns.push(ns.min(u64::MAX as u128) as u64);
        }
        // Allocation probe: after the timed passes (pools and scratch
        // buffers warm), measure allocator calls over whole batches and keep
        // the best batch — the steady-state allocs per iteration. The same
        // passes probe the heap high-water mark: reset the peak to the live
        // level before each batch and keep the smallest rise above it.
        let measure = meta.allocs.is_none() || meta.peak_bytes.is_none();
        let (mut best_allocs, mut best_peak) = (u64::MAX, u64::MAX);
        if measure && crate::alloc_count::enabled() {
            for _ in 0..3 {
                let before = crate::alloc_count::allocs();
                let floor = crate::alloc_count::live_bytes();
                crate::alloc_count::reset_peak();
                for _ in 0..iters {
                    black_box(f());
                }
                let delta = crate::alloc_count::allocs().saturating_sub(before);
                best_allocs = best_allocs.min(delta / iters);
                let rise = crate::alloc_count::peak_bytes().saturating_sub(floor);
                best_peak = best_peak.min(rise);
            }
        }
        let allocs = meta.allocs.or((best_allocs != u64::MAX).then_some(best_allocs));
        let peak_bytes = meta.peak_bytes.or((best_peak != u64::MAX).then_some(best_peak));

        per_iter_ns.sort_unstable();
        let n = per_iter_ns.len();
        let min_ns = per_iter_ns[0];
        let median_ns = per_iter_ns[n / 2];
        let p95_ns = percentile(&per_iter_ns, 95);
        let mean_ns = (per_iter_ns.iter().map(|&x| x as u128).sum::<u128>() / n as u128) as u64;

        let rec = BenchRecord {
            group: self.group.clone(),
            id,
            samples: self.samples,
            iters,
            min_ns,
            median_ns,
            p95_ns,
            mean_ns,
            elems: meta.elems,
            threads: meta.threads,
            cache_hits: meta.cache_hits,
            cache_misses: meta.cache_misses,
            allocs,
            peak_bytes,
            mispredicts: meta.mispredicts,
            dispatch: meta.dispatch.map(str::to_string),
        };
        let mut line = format!(
            "{:<40} median {:>10}  p95 {:>10}  min {:>10}  ({} samples x {} iters)",
            format!("{}/{}", rec.group, rec.id),
            fmt_ns(rec.median_ns),
            fmt_ns(rec.p95_ns),
            fmt_ns(rec.min_ns),
            rec.samples,
            rec.iters
        );
        if let Some(e) = rec.elems {
            let per_elem = rec.median_ns as f64 / e as f64;
            let _ = write!(line, "  [{per_elem:.1} ns/elem]");
        }
        if let Some(t) = rec.threads {
            let _ = write!(line, "  [t={t}]");
        }
        if let Some(rate) = rec.cache_hit_rate() {
            let _ = write!(line, "  [cache {:.0}%]", rate * 100.0);
        }
        if let Some(a) = rec.allocs {
            let _ = write!(line, "  [{a} allocs/iter]");
        }
        if let Some(p) = rec.peak_bytes {
            let _ = write!(line, "  [peak {}]", fmt_bytes(p));
        }
        if let Some(d) = &rec.dispatch {
            let _ = write!(line, "  [dispatch={d}]");
        }
        if let Some(m) = rec.mispredicts {
            let _ = write!(line, "  [mispred {m}]");
        }
        println!("{line}");
        let json = rec.to_json_line();
        if let Some(f) = &mut self.sink {
            // One write_all per record, newline included: several bench
            // binaries append to the same JSONL concurrently, and O_APPEND
            // only guarantees atomicity per write call — a write/writeln
            // pair could interleave and corrupt both lines.
            let _ = f.write_all(format!("{json}\n").as_bytes());
        } else {
            println!("{json}");
        }
        self.records.push(rec);
    }

    /// Results recorded so far (mainly for tests).
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Prints the closing line. Dropping the group without calling this is
    /// fine; it exists for symmetry with the criterion API it replaces.
    pub fn finish(self) {
        println!("-- {}: {} benchmarks done --", self.group, self.records.len());
    }
}

/// The `pct`-th percentile of an ascending-sorted sample, by linear
/// interpolation between closest ranks (the "type 7" estimator), computed in
/// exact integer arithmetic.
///
/// The previous nearest-rank rule (`ceil(n·0.95)`) degenerates for small
/// samples: for every `n < 20` the 95th percentile *is* the maximum, so a
/// single outlier sample polluted the reported p95 at typical bench sample
/// counts (10–16). Interpolating at rank `(n−1)·pct/100` never selects the
/// maximum for `p95` until `n` is large enough to support it
/// (`frac = 0` only when `(n−1)·pct % 100 == 0`).
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct > 100`.
pub fn percentile(sorted: &[u64], pct: u32) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!(pct <= 100, "percentile rank must be 0..=100");
    let n = sorted.len();
    let h_num = (n as u64 - 1) * pct as u64; // rank position, scaled by 100
    let idx = (h_num / 100) as usize;
    let frac = h_num % 100;
    let lo = sorted[idx];
    if frac == 0 {
        return lo;
    }
    let hi = sorted[idx + 1];
    lo + ((hi - lo) as u128 * frac as u128 / 100) as u64
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> BenchRecord {
        BenchRecord {
            group: "e9_substrate".into(),
            id: "exec_rounds/1000".into(),
            samples: 12,
            iters: 4,
            min_ns: 101,
            median_ns: 120,
            p95_ns: 200,
            mean_ns: 130,
            elems: Some(1000),
            threads: None,
            cache_hits: None,
            cache_misses: None,
            allocs: None,
            peak_bytes: None,
            mispredicts: None,
            dispatch: None,
        }
    }

    #[test]
    fn json_line_roundtrips() {
        let rec = sample_record();
        let parsed = BenchRecord::parse_json_line(&rec.to_json_line()).expect("parses");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn percentile_known_answers_small_n() {
        // data = 100, 200, ..., n·100 → type-7 p95 = 100·(1 + (n−1)·0.95)
        // = 95n + 5 exactly, for every n. Table-driven over the small-n
        // range where the old nearest-rank rule always returned the max.
        for n in 1..=25usize {
            let data: Vec<u64> = (1..=n as u64).map(|k| k * 100).collect();
            let expect = 95 * n as u64 + 5;
            assert_eq!(percentile(&data, 95), expect, "p95 at n={n}");
            // p0/p100 pin the ends; p50 matches the interpolated median.
            assert_eq!(percentile(&data, 0), 100, "p0 at n={n}");
            assert_eq!(percentile(&data, 100), n as u64 * 100, "p100 at n={n}");
            let expect_p50 = 50 * (n as u64 - 1) + 100;
            assert_eq!(percentile(&data, 50), expect_p50, "p50 at n={n}");
            // The defect under repair: p95 must not be the max for n ≥ 2.
            if n >= 2 {
                assert!(percentile(&data, 95) < data[n - 1], "p95 selected max at n={n}");
            }
        }
    }

    #[test]
    fn percentile_constant_sample_is_constant() {
        let data = [42u64; 17];
        for pct in [0, 1, 50, 95, 99, 100] {
            assert_eq!(percentile(&data, pct), 42);
        }
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7], 95), 7);
        assert_eq!(percentile(&[7], 0), 7);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 95);
    }

    #[test]
    fn json_line_roundtrips_with_parallel_and_cache_fields() {
        let mut rec = sample_record();
        rec.threads = Some(4);
        rec.cache_hits = Some(90);
        rec.cache_misses = Some(10);
        let line = rec.to_json_line();
        assert!(line.contains("\"threads\":4"));
        assert!(line.contains("\"cache_hits\":90"));
        let parsed = BenchRecord::parse_json_line(&line).expect("parses");
        assert_eq!(parsed, rec);
        assert_eq!(parsed.cache_hit_rate(), Some(0.9));
    }

    #[test]
    fn cache_hit_rate_handles_missing_and_zero_counters() {
        let mut rec = sample_record();
        assert_eq!(rec.cache_hit_rate(), None);
        rec.cache_hits = Some(0);
        rec.cache_misses = Some(0);
        assert_eq!(rec.cache_hit_rate(), None, "0/0 lookups is no rate, not 0%");
    }

    #[test]
    fn json_line_roundtrips_with_allocs() {
        let mut rec = sample_record();
        rec.allocs = Some(0);
        let line = rec.to_json_line();
        assert!(line.contains("\"allocs\":0"));
        let parsed = BenchRecord::parse_json_line(&line).expect("parses");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn json_line_roundtrips_with_peak_bytes() {
        let mut rec = sample_record();
        rec.allocs = Some(3);
        rec.peak_bytes = Some(4096);
        let line = rec.to_json_line();
        assert!(line.contains("\"peak_bytes\":4096"));
        let parsed = BenchRecord::parse_json_line(&line).expect("parses");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn json_line_roundtrips_with_dispatch_and_mispredicts() {
        let mut rec = sample_record();
        rec.mispredicts = Some(7);
        rec.dispatch = Some("table".into());
        let line = rec.to_json_line();
        assert!(line.contains("\"prewarm.mispredict\":7"));
        assert!(line.contains("\"dispatch.mode\":\"table\""));
        let parsed = BenchRecord::parse_json_line(&line).expect("parses");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn fmt_bytes_picks_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.50 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn json_line_roundtrips_without_elems() {
        let mut rec = sample_record();
        rec.elems = None;
        let parsed = BenchRecord::parse_json_line(&rec.to_json_line()).expect("parses");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn json_string_escaping_roundtrips() {
        let mut rec = sample_record();
        rec.id = "weird \"id\"\\with\nescapes\u{1}".into();
        let parsed = BenchRecord::parse_json_line(&rec.to_json_line()).expect("parses");
        assert_eq!(parsed.id, rec.id);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in ["", "{", "{]", "not json", "{\"group\":}", "{\"group\":\"g\""] {
            assert!(BenchRecord::parse_json_line(bad).is_none(), "accepted {bad:?}");
        }
        // Well-formed but missing required fields.
        assert!(BenchRecord::parse_json_line("{\"group\":\"g\"}").is_none());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
