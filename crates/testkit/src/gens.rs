//! Input generators with attached shrinkers.
//!
//! A [`Gen<T>`] bundles a draw function (from a [`GocRng`]) with a function
//! proposing *smaller* candidates for shrinking. Generators for ranged
//! integers shrink toward their lower bound and never leave their range, so
//! a shrunk counterexample is always a legal input of the original property.

use goc_core::channel::{Fault, FaultSchedule};
use goc_core::rng::GocRng;
use std::rc::Rc;

/// A value generator plus its shrinker.
pub struct Gen<T> {
    generate: Rc<dyn Fn(&mut GocRng) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { generate: Rc::clone(&self.generate), shrink: Rc::clone(&self.shrink) }
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from a draw function and a shrink-candidate
    /// function. Candidates must be strictly "smaller" in some well-founded
    /// sense — the greedy shrinker otherwise loops until its budget runs out.
    pub fn new(
        generate: impl Fn(&mut GocRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen { generate: Rc::new(generate), shrink: Rc::new(shrink) }
    }

    /// A generator whose values are never shrunk.
    pub fn no_shrink(generate: impl Fn(&mut GocRng) -> T + 'static) -> Self {
        Gen::new(generate, |_| Vec::new())
    }

    /// Draws one value.
    pub fn generate(&self, rng: &mut GocRng) -> T {
        (self.generate)(rng)
    }

    /// Proposes smaller candidates for `value` (possibly none).
    pub fn shrink_candidates(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

/// Shrink candidates for an integer, toward `lo`: the bound itself, then a
/// geometric approach from below (`v - (v-lo)/2^k`), ending at `v - 1`. The
/// greedy shrinker therefore converges to the exact minimal failing value in
/// O(log²) tried candidates.
fn shrink_u64_toward(lo: u64, v: u64) -> Vec<u64> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut d = v - lo;
    loop {
        d /= 2;
        if d == 0 {
            break;
        }
        let cand = v - d;
        if cand != *out.last().unwrap() {
            out.push(cand);
        }
    }
    if *out.last().unwrap() != v - 1 {
        out.push(v - 1);
    }
    out
}

/// Uniform `u64` over the full range, shrinking toward 0.
pub fn any_u64() -> Gen<u64> {
    Gen::new(|rng| rng.next_u64(), |&v| shrink_u64_toward(0, v))
}

/// Uniform `u32`, shrinking toward 0.
pub fn any_u32() -> Gen<u32> {
    Gen::new(
        |rng| rng.next_u32(),
        |&v| shrink_u64_toward(0, v as u64).into_iter().map(|x| x as u32).collect(),
    )
}

/// Uniform `u8`, shrinking toward 0.
pub fn any_u8() -> Gen<u8> {
    Gen::new(
        |rng| rng.byte(),
        |&v| shrink_u64_toward(0, v as u64).into_iter().map(|x| x as u8).collect(),
    )
}

/// Uniform `u64` in `[lo, hi)`, shrinking toward `lo`.
///
/// # Panics
///
/// Panics if `hi <= lo`.
pub fn u64_in(lo: u64, hi: u64) -> Gen<u64> {
    assert!(hi > lo, "u64_in requires lo < hi");
    Gen::new(move |rng| lo + rng.below(hi - lo), move |&v| shrink_u64_toward(lo, v))
}

/// Uniform `u32` in `[lo, hi)`, shrinking toward `lo`.
pub fn u32_in(lo: u32, hi: u32) -> Gen<u32> {
    assert!(hi > lo, "u32_in requires lo < hi");
    Gen::new(
        move |rng| lo + rng.below((hi - lo) as u64) as u32,
        move |&v| shrink_u64_toward(lo as u64, v as u64).into_iter().map(|x| x as u32).collect(),
    )
}

/// Uniform `u8` in `[lo, hi)`, shrinking toward `lo`.
pub fn u8_in(lo: u8, hi: u8) -> Gen<u8> {
    assert!(hi > lo, "u8_in requires lo < hi");
    Gen::new(
        move |rng| lo + rng.below((hi - lo) as u64) as u8,
        move |&v| shrink_u64_toward(lo as u64, v as u64).into_iter().map(|x| x as u8).collect(),
    )
}

/// Uniform `usize` in `[lo, hi)`, shrinking toward `lo`.
pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
    assert!(hi > lo, "usize_in requires lo < hi");
    Gen::new(
        move |rng| lo + rng.below((hi - lo) as u64) as usize,
        move |&v| {
            shrink_u64_toward(lo as u64, v as u64).into_iter().map(|x| x as usize).collect()
        },
    )
}

/// Vector of values from `elem`, with length uniform in
/// `[min_len, max_len)`. Shrinks by halving, dropping an endpoint, and
/// shrinking individual elements — never below `min_len`.
///
/// # Panics
///
/// Panics if `max_len <= min_len`.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(max_len > min_len, "vec_of requires min_len < max_len");
    let draw = elem.clone();
    Gen::new(
        move |rng| {
            let len = min_len + rng.below((max_len - min_len) as u64) as usize;
            (0..len).map(|_| draw.generate(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            let len = v.len();
            if len > min_len {
                let half = min_len.max(len / 2);
                if half < len - 1 {
                    out.push(v[..half].to_vec());
                }
                out.push(v[..len - 1].to_vec());
                out.push(v[1..].to_vec());
            }
            for i in 0..len {
                for cand in elem.shrink_candidates(&v[i]) {
                    let mut w = v.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        },
    )
}

/// Byte vector with length uniform in `[min_len, max_len)`.
pub fn bytes(min_len: usize, max_len: usize) -> Gen<Vec<u8>> {
    vec_of(any_u8(), min_len, max_len)
}

/// Pair of independent draws; shrinks one component at a time.
pub fn tuple2<A, B>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let (ga, gb) = (a.clone(), b.clone());
    Gen::new(
        move |rng| (ga.generate(rng), gb.generate(rng)),
        move |(x, y): &(A, B)| {
            let mut out = Vec::new();
            for c in a.shrink_candidates(x) {
                out.push((c, y.clone()));
            }
            for c in b.shrink_candidates(y) {
                out.push((x.clone(), c));
            }
            out
        },
    )
}

/// Triple of independent draws; shrinks one component at a time.
pub fn tuple3<A, B, C>(a: Gen<A>, b: Gen<B>, c: Gen<C>) -> Gen<(A, B, C)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    let (ga, gb, gc) = (a.clone(), b.clone(), c.clone());
    Gen::new(
        move |rng| (ga.generate(rng), gb.generate(rng), gc.generate(rng)),
        move |(x, y, z): &(A, B, C)| {
            let mut out = Vec::new();
            for cand in a.shrink_candidates(x) {
                out.push((cand, y.clone(), z.clone()));
            }
            for cand in b.shrink_candidates(y) {
                out.push((x.clone(), cand, z.clone()));
            }
            for cand in c.shrink_candidates(z) {
                out.push((x.clone(), y.clone(), cand));
            }
            out
        },
    )
}

/// A well-founded "size" for a fault: `Drop` is minimal, then kinds in
/// increasing structural weight, tie-broken by parameter. Shrinking only
/// proposes strictly smaller faults under this order, so greedy shrinking
/// terminates.
fn fault_size(fault: &Fault) -> (u8, u64) {
    match fault {
        Fault::Drop => (0, 0),
        Fault::Duplicate => (1, 0),
        Fault::Corrupt { mask } => (2, *mask as u64),
        Fault::Delay { rounds } => (3, *rounds),
        Fault::Reorder { depth } => (4, *depth),
        Fault::Burst { len } => (5, *len),
    }
}

/// A single channel fault, parameters in `[1, max_param]`. Shrinks toward
/// [`Fault::Drop`] (the structurally simplest fault) and toward smaller
/// parameters within the same kind.
pub fn fault(max_param: u64) -> Gen<Fault> {
    let max_param = max_param.max(1);
    Gen::new(
        move |rng| match rng.below(6) {
            0 => Fault::Drop,
            1 => Fault::Duplicate,
            2 => Fault::Corrupt { mask: rng.byte() | 1 },
            3 => Fault::Delay { rounds: 1 + rng.below(max_param) },
            4 => Fault::Reorder { depth: 1 + rng.below(max_param) },
            _ => Fault::Burst { len: 1 + rng.below(max_param) },
        },
        |f: &Fault| {
            let mut out = Vec::new();
            if *f != Fault::Drop {
                out.push(Fault::Drop);
            }
            let same_kind_smaller: Vec<Fault> = match f {
                Fault::Drop | Fault::Duplicate => Vec::new(),
                Fault::Corrupt { mask } => shrink_u64_toward(1, *mask as u64)
                    .into_iter()
                    .map(|m| Fault::Corrupt { mask: m as u8 })
                    .collect(),
                Fault::Delay { rounds } => shrink_u64_toward(1, *rounds)
                    .into_iter()
                    .map(|r| Fault::Delay { rounds: r })
                    .collect(),
                Fault::Reorder { depth } => shrink_u64_toward(1, *depth)
                    .into_iter()
                    .map(|d| Fault::Reorder { depth: d })
                    .collect(),
                Fault::Burst { len } => shrink_u64_toward(1, *len)
                    .into_iter()
                    .map(|l| Fault::Burst { len: l })
                    .collect(),
            };
            out.extend(same_kind_smaller);
            let size = fault_size(f);
            out.retain(|cand| fault_size(cand) < size);
            out
        },
    )
}

/// Wraps an entry-vector generator into a [`FaultSchedule`] generator. The
/// schedule shrinks by shrinking the underlying entry vector (toward the
/// empty schedule) and re-normalizing; normalization can only remove
/// entries, so candidates stay strictly smaller.
fn schedule_from_entries(inner: Gen<Vec<(u64, Fault)>>) -> Gen<FaultSchedule> {
    let draw = inner.clone();
    Gen::new(
        move |rng| FaultSchedule::from_entries(draw.generate(rng)),
        move |s: &FaultSchedule| {
            inner
                .shrink_candidates(&s.entries().to_vec())
                .into_iter()
                .map(FaultSchedule::from_entries)
                .filter(|cand| cand != s)
                .collect()
        },
    )
}

/// A general fault schedule: up to `max_faults` arbitrary faults on rounds
/// `[0, max_round)` with parameters in `[1, max_param]`. Shrinks toward the
/// empty schedule (and each fault toward `Drop`).
pub fn fault_schedule(max_round: u64, max_faults: usize, max_param: u64) -> Gen<FaultSchedule> {
    schedule_from_entries(vec_of(
        tuple2(u64_in(0, max_round.max(1)), fault(max_param)),
        0,
        max_faults.max(1) + 1,
    ))
}

/// A bounded-loss schedule: up to `max_drops` pure `Drop` faults. Losing
/// finitely many messages never destroys a server's helpfulness for a
/// forgiving goal, so viability must survive *every* value this generator
/// can produce — the conformance harness's cleanest metamorphic class.
pub fn bounded_loss_schedule(max_round: u64, max_drops: usize) -> Gen<FaultSchedule> {
    let drop = Gen::new(|_rng: &mut GocRng| Fault::Drop, |_| Vec::new());
    schedule_from_entries(vec_of(
        tuple2(u64_in(0, max_round.max(1)), drop),
        0,
        max_drops.max(1) + 1,
    ))
}

/// A bursty schedule: up to `max_bursts` loss bursts of length
/// `[1, max_burst_len]` — clustered erasures, the adversary's answer to
/// "random drops are easy".
pub fn bursty_schedule(max_round: u64, max_bursts: usize, max_burst_len: u64) -> Gen<FaultSchedule> {
    let max_burst_len = max_burst_len.max(1);
    let burst = Gen::new(
        move |rng: &mut GocRng| Fault::Burst { len: 1 + rng.below(max_burst_len) },
        |f: &Fault| match f {
            Fault::Burst { len } => shrink_u64_toward(1, *len)
                .into_iter()
                .map(|l| Fault::Burst { len: l })
                .collect(),
            _ => Vec::new(),
        },
    );
    schedule_from_entries(vec_of(
        tuple2(u64_in(0, max_round.max(1)), burst),
        0,
        max_bursts.max(1) + 1,
    ))
}

/// An adversarial-prefix schedule: a dense barrage of arbitrary faults
/// confined to rounds `[0, prefix_len)`, perfect forever after. Models a
/// hostile warm-up — exactly the "arbitrary start state" quantifier of the
/// theorems, expressed on the link instead of in the server.
pub fn adversarial_prefix_schedule(prefix_len: u64, max_param: u64) -> Gen<FaultSchedule> {
    let prefix_len = prefix_len.max(1);
    let per_round = fault(max_param);
    let shrink_vec = vec_of(
        tuple2(u64_in(0, prefix_len), fault(max_param)),
        0,
        prefix_len as usize + 1,
    );
    Gen::new(
        move |rng| {
            let mut entries = Vec::new();
            for round in 0..prefix_len {
                if rng.chance(0.9) {
                    entries.push((round, per_round.generate(rng)));
                }
            }
            FaultSchedule::from_entries(entries)
        },
        move |s: &FaultSchedule| {
            shrink_vec
                .shrink_candidates(&s.entries().to_vec())
                .into_iter()
                .map(FaultSchedule::from_entries)
                .filter(|cand| cand != s)
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranged_generators_stay_in_range() {
        let mut rng = GocRng::seed_from_u64(1);
        let g = u64_in(10, 20);
        for _ in 0..500 {
            let v = g.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
        let b = u8_in(3, 7);
        for _ in 0..500 {
            assert!((3..7).contains(&b.generate(&mut rng)));
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller_and_in_range() {
        for v in [11u64, 19, 200, u64::MAX] {
            for c in shrink_u64_toward(10, v) {
                assert!(c < v, "candidate {c} not smaller than {v}");
                assert!(c >= 10, "candidate {c} escaped the range");
            }
        }
        assert!(shrink_u64_toward(10, 10).is_empty());
    }

    #[test]
    fn shrink_candidates_include_the_predecessor() {
        // The predecessor guarantees greedy shrinking can always take the
        // final step to the exact boundary.
        for v in [2u64, 77, 1_000_000] {
            assert!(shrink_u64_toward(0, v).contains(&(v - 1)));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds_and_shrink_floor() {
        let mut rng = GocRng::seed_from_u64(2);
        let g = bytes(2, 9);
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            for cand in g.shrink_candidates(&v) {
                assert!(cand.len() >= 2, "shrink went below min_len: {cand:?}");
            }
        }
    }

    #[test]
    fn tuple_generation_is_deterministic_per_rng_state() {
        let g = tuple3(any_u64(), any_u8(), bytes(0, 8));
        let a = g.generate(&mut GocRng::seed_from_u64(9));
        let b = g.generate(&mut GocRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn fault_shrinks_strictly_toward_drop() {
        let g = fault(16);
        let mut rng = GocRng::seed_from_u64(3);
        for _ in 0..300 {
            let f = g.generate(&mut rng);
            for cand in g.shrink_candidates(&f) {
                assert!(fault_size(&cand) < fault_size(&f), "{cand:?} !< {f:?}");
            }
        }
        assert!(g.shrink_candidates(&Fault::Drop).is_empty(), "Drop is the bottom");
        assert!(g.shrink_candidates(&Fault::Burst { len: 9 }).contains(&Fault::Drop));
    }

    #[test]
    fn schedules_shrink_toward_empty() {
        // Greedy-shrink any generated schedule against the always-failing
        // property: the bottom must be the empty schedule.
        for g in [
            fault_schedule(64, 6, 8),
            bounded_loss_schedule(64, 6),
            bursty_schedule(64, 4, 8),
            adversarial_prefix_schedule(12, 8),
        ] {
            let mut rng = GocRng::seed_from_u64(7);
            let mut s = g.generate(&mut rng);
            for _ in 0..10_000 {
                match g.shrink_candidates(&s).into_iter().next() {
                    Some(cand) => s = cand,
                    None => break,
                }
            }
            assert!(s.is_empty(), "did not bottom out at the empty schedule: {s:?}");
        }
    }

    #[test]
    fn bounded_loss_schedules_are_pure_drops() {
        let g = bounded_loss_schedule(100, 8);
        let mut rng = GocRng::seed_from_u64(11);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert!(s.entries().iter().all(|(_, f)| *f == Fault::Drop));
        }
    }

    #[test]
    fn bursty_schedules_are_pure_bursts_with_bounded_length() {
        let g = bursty_schedule(100, 4, 8);
        let mut rng = GocRng::seed_from_u64(12);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            for (_, f) in s.entries() {
                match f {
                    Fault::Burst { len } => assert!((1..=8).contains(len)),
                    other => panic!("non-burst fault {other:?}"),
                }
            }
        }
    }

    #[test]
    fn adversarial_prefix_confined_to_prefix() {
        let g = adversarial_prefix_schedule(10, 4);
        let mut rng = GocRng::seed_from_u64(13);
        let mut saw_nonempty = false;
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            saw_nonempty |= !s.is_empty();
            assert!(s.entries().iter().all(|&(round, _)| round < 10));
        }
        assert!(saw_nonempty, "a dense prefix generator should rarely be empty");
    }

    #[test]
    fn schedule_shrink_candidates_differ_from_input() {
        let g = fault_schedule(32, 5, 6);
        let mut rng = GocRng::seed_from_u64(14);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            for cand in g.shrink_candidates(&s) {
                assert_ne!(cand, s, "shrinker proposed a non-progress candidate");
            }
        }
    }
}
