//! Metamorphic conformance sweep for the paper's two invariants.
//!
//! Theorem 1 rests on **sensing safety** (no positive verdict on an
//! unachieved goal, no false halt — unconditionally, against *any* server
//! and any channel) and **viability** (a helpful server is eventually
//! conquered). This module checks both *metamorphically*: instead of fixed
//! expected outputs, it asserts relations that must survive generated
//! channel-fault schedules:
//!
//! - **Safety.** For every goal/server-class/sensing triple, under every
//!   generated [`FaultSchedule`] (applied to both directions of the
//!   user↔server link): a replayed fresh sensing instance never returns
//!   `Positive` on a world-state prefix the referee would reject, and the
//!   universal user never halts without the goal being achieved.
//! - **Viability.** Every generated schedule is *finite*, hence
//!   bounded-loss: after [`FaultSchedule::quiet_after`] the link is perfect
//!   again, so a helpful server stays helpful for the (forgiving) toy goals
//!   and the universal user must still conquer it when the horizon is
//!   extended past the schedule's tail.
//!
//! Failing schedules are shrunk by the property harness toward the empty
//! schedule and reported as a replayable `(seed, stream, schedule)` triple
//! via [`Failure::report`]. The sweep itself is deterministic: a fixed
//! [`SweepConfig`] always produces the identical [`ConformanceReport`],
//! regardless of `GOC_THREADS` or testkit env overrides — `ci.sh` diffs two
//! runs to enforce exactly that.

use crate::gens::{
    adversarial_prefix_schedule, bounded_loss_schedule, bursty_schedule, fault_schedule, Gen,
};
use crate::{check_result, CaseError, Config};
use goc_core::channel::{FaultSchedule, Scheduled};
use goc_core::exec::Execution;
use goc_core::goal::{evaluate_compact_view, evaluate_finite_view, CompactGoal, Goal};
use goc_core::rng::GocRng;
use goc_core::sensing::{BoxedSensing, Deadline, Sensing};
use goc_core::strategy::{BoxedServer, SilentServer};
use goc_core::toy::{self, MagicState};
use goc_core::universal::{CompactUniversalUser, LevinUniversalUser};
use goc_core::view::UserView;

/// Budget and seeding for one conformance sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Root seed; schedule generation and execution seeds derive from it.
    pub seed: u64,
    /// Fault schedules generated per property.
    pub cases: u64,
    /// Base conquer budget in rounds; each run extends it by the schedule's
    /// [`FaultSchedule::quiet_after`] tail so viability is judged only after
    /// the link has recovered.
    pub horizon: u64,
    /// Schedules place faults on rounds `[0, max_round)`.
    pub max_round: u64,
    /// Maximum faults per schedule.
    pub max_faults: usize,
    /// Maximum fault parameter (delay rounds, reorder depth, burst length).
    pub max_param: u64,
}

impl SweepConfig {
    /// The full sweep at `seed`.
    pub fn new(seed: u64) -> Self {
        SweepConfig { seed, cases: 10, horizon: 30_000, max_round: 96, max_faults: 6, max_param: 12 }
    }

    /// A cheaper sweep for CI smoke and doctests.
    pub fn quick(seed: u64) -> Self {
        SweepConfig { cases: 5, ..SweepConfig::new(seed) }
    }
}

/// The outcome of a full sweep; render with [`ConformanceReport::render`].
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// The seed the sweep ran under.
    pub seed: u64,
    /// Cases per property.
    pub cases: u64,
    /// Names of properties that passed, in check order.
    pub passed: Vec<String>,
    /// Rendered safety violations (expected: none, under any schedule).
    pub safety_violations: Vec<String>,
    /// Rendered shrunk viability counterexamples (expected: none; every
    /// finite schedule is bounded-loss).
    pub viability_failures: Vec<String>,
}

impl ConformanceReport {
    /// `true` if both invariants held on every triple.
    pub fn holds(&self) -> bool {
        self.safety_violations.is_empty() && self.viability_failures.is_empty()
    }

    /// Deterministic multi-line report, stable across runs and thread
    /// counts for a fixed [`SweepConfig`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "[goc-conformance] seed {:#x}, {} cases/property\n",
            self.seed, self.cases
        ));
        for name in &self.passed {
            out.push_str(&format!("  PASS {name}\n"));
        }
        for failure in &self.safety_violations {
            out.push_str(&format!("  SAFETY VIOLATION\n{}\n", indent(failure)));
        }
        for failure in &self.viability_failures {
            out.push_str(&format!("  VIABILITY FAILURE\n{}\n", indent(failure)));
        }
        out.push_str(&format!("safety violations: {}\n", self.safety_violations.len()));
        out.push_str(&format!("viability failures: {}\n", self.viability_failures.len()));
        out.push_str(if self.holds() { "RESULT: CONFORMANT\n" } else { "RESULT: NONCONFORMANT\n" });
        out
    }
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("    {l}\n")).collect()
}

/// What one faulted execution did, as far as the invariants care.
#[derive(Clone, Debug)]
struct RunOutcome {
    halted: bool,
    achieved: bool,
    /// Round of the first `Positive` indication (from a fresh replay of the
    /// triple's sensing over the recorded view) whose world-state prefix
    /// the referee rejects. `None` is the safe outcome.
    false_positive_round: Option<u64>,
}

/// Replays a fresh sensing over the view, returning the first positive
/// indication that is not grounded in an acceptable world-state prefix.
fn first_unsound_positive(
    mut sensing: BoxedSensing,
    view: &UserView,
    states: &[MagicState],
    acceptable: impl Fn(&[MagicState]) -> bool,
) -> Option<u64> {
    for (i, ev) in view.events().iter().enumerate() {
        if sensing.observe(ev).is_positive() {
            // Event i closes round i; states[..i + 2] is the prefix through
            // the state after that round.
            let end = (i + 2).min(states.len());
            if !acceptable(&states[..end]) {
                return Some(ev.round);
            }
        }
    }
    None
}

const WORD: &str = "hi";
const SHIFTS: u8 = 8;
const LEVIN_BASE: u64 = 16;
const COMPACT_WINDOW: u64 = 64;
const COMPACT_DEADLINE: u64 = 32;
/// Compact viability judges the last `COMPACT_TAIL` prefixes: the schedule
/// has drained and the settled user must keep the word recurring.
const COMPACT_TAIL: u64 = 2_000;

fn finite_sensing(deadline: Option<u64>) -> BoxedSensing {
    match deadline {
        None => Box::new(toy::ack_sensing()),
        Some(t) => Box::new(Deadline::new(toy::ack_sensing(), t)),
    }
}

/// One finite-goal execution of the universal user against `server`, with
/// `schedule` installed on both directions of the user↔server link.
/// `horizon` is used as-is; the sweep adds the schedule's
/// [`FaultSchedule::quiet_after`] tail before calling.
fn run_finite(
    server: BoxedServer,
    deadline: Option<u64>,
    schedule: &FaultSchedule,
    seed: u64,
    horizon: u64,
) -> RunOutcome {
    let goal = toy::MagicWordGoal::new(WORD);
    let user = LevinUniversalUser::round_robin(
        Box::new(toy::caesar_class(WORD, SHIFTS, false)),
        finite_sensing(deadline),
        LEVIN_BASE,
    );
    let mut rng = GocRng::seed_from_u64(seed);
    let mut exec = Execution::with_channels(
        goal.spawn_world(&mut rng),
        server,
        Box::new(user),
        rng,
        Box::new(Scheduled::new(schedule.clone())),
        Box::new(Scheduled::new(schedule.clone())),
    );
    // Drive the run on the borrowing path: step until halt or horizon, then
    // judge through [`TranscriptView`] — the sweep never clones the history.
    exec.reserve_rounds(horizon);
    for _ in 0..horizon {
        exec.step();
        if exec.transcript_view().halt().is_some() {
            break;
        }
    }
    let t = exec.transcript_view();
    let v = evaluate_finite_view(&goal, t);
    let false_positive_round = first_unsound_positive(
        finite_sensing(deadline),
        t.view,
        t.world_states,
        |prefix| prefix.last().map(|s| s.heard_count > 0).unwrap_or(false),
    );
    RunOutcome { halted: v.halted, achieved: v.achieved, false_positive_round }
}

/// One compact-goal execution (the system runs the full horizon; the user
/// never halts but switches on negative sensing).
fn run_compact(server: BoxedServer, schedule: &FaultSchedule, seed: u64, horizon: u64) -> RunOutcome {
    let goal = toy::CompactMagicWordGoal::new(WORD, COMPACT_WINDOW);
    let user = CompactUniversalUser::new(
        Box::new(toy::caesar_class(WORD, SHIFTS, true)),
        Box::new(Deadline::new(toy::ack_sensing(), COMPACT_DEADLINE)),
    );
    let mut rng = GocRng::seed_from_u64(seed);
    let mut exec = Execution::with_channels(
        goal.spawn_world(&mut rng),
        server,
        Box::new(user),
        rng,
        Box::new(Scheduled::new(schedule.clone())),
        Box::new(Scheduled::new(schedule.clone())),
    );
    // Compact goals ignore halting: run the full horizon, judge the view.
    exec.reserve_rounds(horizon);
    for _ in 0..horizon {
        exec.step();
    }
    let t = exec.transcript_view();
    let v = evaluate_compact_view(&goal, t);
    let false_positive_round = first_unsound_positive(
        Box::new(toy::ack_sensing()),
        t.view,
        t.world_states,
        |prefix| goal.prefix_acceptable(prefix),
    );
    RunOutcome {
        halted: false,
        achieved: v.achieved(COMPACT_TAIL),
        false_positive_round,
    }
}

/// FNV-1a, used to derive per-property execution seeds from the sweep seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

struct Property {
    name: String,
    gen: Gen<FaultSchedule>,
    /// Runs one schedule; `seed` is the derived execution seed.
    run: Box<dyn Fn(&FaultSchedule, u64) -> RunOutcome>,
    /// Safety properties check "no false halt/positive"; viability
    /// properties additionally require conquest.
    expect_conquest: bool,
}

fn schedule_generators(cfg: &SweepConfig) -> Vec<(&'static str, Gen<FaultSchedule>)> {
    vec![
        ("general", fault_schedule(cfg.max_round, cfg.max_faults, cfg.max_param)),
        ("bounded-loss", bounded_loss_schedule(cfg.max_round, cfg.max_faults)),
        ("bursty", bursty_schedule(cfg.max_round, cfg.max_faults.min(4), cfg.max_param)),
        ("adversarial-prefix", adversarial_prefix_schedule(cfg.max_round.min(24), cfg.max_param)),
    ]
}

/// The repo's goal/server-class/sensing triples, instantiated as checkable
/// properties: viability against helpful servers from the class, safety
/// against unhelpful ones.
fn properties(cfg: &SweepConfig) -> Vec<Property> {
    let mut props = Vec::new();
    let horizon = cfg.horizon;
    // Safety runs don't need a conquest budget — only enough rounds to
    // tempt a false halt.
    let safety_horizon = cfg.horizon.min(4_000);

    for (gen_name, gen) in schedule_generators(cfg) {
        // Triple 1: finite magic-word / caesar relay class / ack sensing.
        for shift in [0u8, 5] {
            props.push(Property {
                name: format!("viability finite/caesar{SHIFTS}/ack vs relay(shift {shift}) [{gen_name}]"),
                gen: gen.clone(),
                run: Box::new(move |s, seed| {
                    run_finite(
                        Box::new(toy::RelayServer::with_shift(shift)),
                        None,
                        s,
                        seed,
                        horizon.saturating_add(s.quiet_after()),
                    )
                }),
                expect_conquest: true,
            });
        }
        props.push(Property {
            name: format!("safety    finite/caesar{SHIFTS}/ack vs silent-server [{gen_name}]"),
            gen: gen.clone(),
            run: Box::new(move |s, seed| {
                run_finite(Box::new(SilentServer), None, s, seed, safety_horizon)
            }),
            expect_conquest: false,
        });

        // Triple 2: finite magic-word / caesar relay class / Deadline(ack)
        // sensing — the deadline manufactures negatives under channel
        // faults; they must only ever cause switches, never false halts.
        props.push(Property {
            name: format!(
                "viability finite/caesar{SHIFTS}/deadline(ack) vs relay(shift 3) [{gen_name}]"
            ),
            gen: gen.clone(),
            run: Box::new(move |s, seed| {
                run_finite(
                    Box::new(toy::RelayServer::with_shift(3)),
                    Some(64),
                    s,
                    seed,
                    horizon.saturating_add(s.quiet_after()),
                )
            }),
            expect_conquest: true,
        });
        props.push(Property {
            name: format!(
                "safety    finite/caesar{SHIFTS}/deadline(ack) vs silent-server [{gen_name}]"
            ),
            gen: gen.clone(),
            run: Box::new(move |s, seed| {
                run_finite(Box::new(SilentServer), Some(64), s, seed, safety_horizon)
            }),
            expect_conquest: false,
        });

        // Triple 3: compact magic-word / persistent caesar class /
        // Deadline(ack) sensing, driven by the switch-on-negative user.
        props.push(Property {
            name: format!(
                "viability compact/caesar{SHIFTS}/deadline(ack) vs relay(shift 2) [{gen_name}]"
            ),
            gen: gen.clone(),
            run: Box::new(move |s, seed| {
                run_compact(
                    Box::new(toy::RelayServer::with_shift(2)),
                    s,
                    seed,
                    horizon.saturating_add(s.quiet_after()),
                )
            }),
            expect_conquest: true,
        });
        props.push(Property {
            name: format!(
                "safety    compact/caesar{SHIFTS}/deadline(ack) vs silent-server [{gen_name}]"
            ),
            gen: gen.clone(),
            run: Box::new(move |s, seed| {
                run_compact(Box::new(SilentServer), s, seed, safety_horizon)
            }),
            expect_conquest: false,
        });
    }
    props
}

/// Runs the full sweep. Deterministic in `cfg`; testkit env overrides are
/// deliberately ignored so CI output is reproducible.
pub fn sweep(cfg: &SweepConfig) -> ConformanceReport {
    let mut report = ConformanceReport {
        seed: cfg.seed,
        cases: cfg.cases,
        passed: Vec::new(),
        safety_violations: Vec::new(),
        viability_failures: Vec::new(),
    };
    for prop in properties(cfg) {
        let tk = Config {
            cases: cfg.cases,
            seed: cfg.seed,
            max_shrink_iters: 4_096,
            max_discards: 1_000,
        };
        let exec_seed = cfg.seed ^ fnv1a(prop.name.as_bytes());
        let run = prop.run;
        let expect_conquest = prop.expect_conquest;
        // Span per property: enter = generated cases, exit = 1 iff the
        // property held. The sweep is deterministic by construction, so
        // these records are safe to export at any thread count.
        let mut span = goc_core::obs::span("conformance.property", cfg.cases);
        let result = check_result(tk, &prop.name, prop.gen, move |schedule| {
            let outcome = run(schedule, exec_seed);
            if let Some(round) = outcome.false_positive_round {
                return Err(CaseError::fail(format!(
                    "SAFETY: positive sensing verdict at round {round} on an unacceptable prefix"
                )));
            }
            if !expect_conquest && outcome.halted && !outcome.achieved {
                return Err(CaseError::fail(
                    "SAFETY: user halted although the goal was not achieved".to_string(),
                ));
            }
            if expect_conquest && !outcome.achieved {
                return Err(CaseError::fail(
                    "VIABILITY: bounded-loss schedule defeated a helpful server".to_string(),
                ));
            }
            Ok(())
        });
        span.set_exit(result.is_ok() as u64);
        drop(span);
        match result {
            Ok(()) => report.passed.push(prop.name),
            Err(failure) => {
                // Safety breaches are violations even when discovered by a
                // viability property; classify by the failure message.
                if failure.message.contains("SAFETY") {
                    report.safety_violations.push(failure.report());
                } else {
                    report.viability_failures.push(failure.report());
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::channel::Fault;

    #[test]
    fn quick_sweep_is_conformant_and_reproducible() {
        let cfg = SweepConfig { cases: 2, horizon: 30_000, ..SweepConfig::quick(0xC0FFEE) };
        let a = sweep(&cfg);
        assert!(a.holds(), "{}", a.render());
        assert_eq!(a.safety_violations.len(), 0);
        let b = sweep(&cfg);
        assert_eq!(a.render(), b.render(), "sweep must be deterministic");
        assert!(a.render().contains("RESULT: CONFORMANT"));
    }

    #[test]
    fn starved_horizon_viability_failure_shrinks_to_a_replayable_schedule() {
        // Deliberately under-budget the horizon so big schedules defeat the
        // finite universal user: the harness must shrink the failing
        // schedule toward a minimal counterexample and report seed+stream.
        // Bursts pinned to round 0 with lengths up to 5000: most schedules
        // black out the entire 600-round budget.
        let tk = Config { cases: 8, seed: 0x5EED, max_shrink_iters: 4_096, max_discards: 100 };
        let gen = bursty_schedule(1, 3, 5_000);
        let result = check_result(tk, "starved-viability", gen, |schedule: &FaultSchedule| {
            let out = run_finite(
                Box::new(toy::RelayServer::with_shift(1)),
                None,
                schedule,
                0x5EED,
                600,
            );
            if !out.achieved {
                return Err(CaseError::fail("VIABILITY: not conquered".to_string()));
            }
            Ok(())
        });
        let failure = result.expect_err("a 600-round budget cannot absorb 700-round bursts");
        assert!(failure.shrink_steps > 0, "expected shrinking: {}", failure.report());
        assert!(failure.shrunk.contains("Burst"), "minimal schedule keeps a burst: {}", failure.report());
        let report = failure.report();
        assert!(report.contains("root seed"), "replayable seed missing: {report}");
        assert!(report.contains("fork stream"), "replayable stream missing: {report}");
    }

    #[test]
    fn run_finite_conquers_through_a_drop_schedule() {
        let schedule = FaultSchedule::from_entries(vec![
            (0, Fault::Drop),
            (1, Fault::Burst { len: 8 }),
            (12, Fault::Corrupt { mask: 0x55 }),
        ]);
        let out =
            run_finite(Box::new(toy::RelayServer::with_shift(4)), None, &schedule, 7, 30_000);
        assert!(out.halted && out.achieved, "{out:?}");
        assert!(out.false_positive_round.is_none());
    }

    #[test]
    fn silent_server_never_yields_a_halt() {
        let schedule = FaultSchedule::single(3, Fault::Duplicate);
        let out = run_finite(Box::new(SilentServer), None, &schedule, 9, 2_000);
        assert!(!out.halted && !out.achieved);
        assert!(out.false_positive_round.is_none());
    }
}
