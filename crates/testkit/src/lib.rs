//! # goc-testkit — the hermetic verification substrate
//!
//! The workspace's tier-1 guarantee is that `cargo build && cargo test` works
//! with **no network and an empty registry**: every theorem-experiment of
//! Goldreich–Juba–Sudan must be checkable offline, forever. This crate is the
//! in-tree replacement for the two external harnesses the seed depended on:
//!
//! - a **property-testing harness** ([`check`], [`gens`]) — seeded case
//!   generation on top of [`goc_core::rng::GocRng`] (xoshiro256++), an
//!   iteration budget, failure reporting with the reproducing seed, and
//!   greedy input shrinking;
//! - a **bench timing harness** ([`bench`]) — warmup + N samples +
//!   median/p95, emitting JSON lines that `goc-report --bench-summary`
//!   consumes.
//!
//! ## Writing a property
//!
//! ```
//! use goc_testkit::{check, gens, prop_assert, prop_assert_eq};
//!
//! check(
//!     "reverse_is_involutive",
//!     gens::bytes(0, 32),
//!     |v: &Vec<u8>| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(&w, v);
//!         prop_assert!(w.len() == v.len());
//!         Ok(())
//!     },
//! );
//! ```
//!
//! Every case is drawn from an independent fork of a per-property root rng,
//! so a failure report's `(seed, stream)` pair reproduces the exact input.
//! Override the number of cases with `GOC_TESTKIT_CASES` and the root seed
//! with `GOC_TESTKIT_SEED` (decimal or `0x`-prefixed).

pub mod alloc_count;
pub mod bench;
pub mod conformance;
pub mod gens;

pub use gens::Gen;

use goc_core::rng::GocRng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why a single property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count toward
    /// the case budget.
    Discard,
    /// The property failed with the given message.
    Fail(String),
}

impl CaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }
}

/// What a property closure returns: `Ok(())` to pass the case, or a
/// [`CaseError`] (normally produced by the `prop_assert*` macros).
pub type PropResult = Result<(), CaseError>;

/// Budget and seeding for one property check.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of non-discarded cases to run.
    pub cases: u64,
    /// Root seed; each property decorrelates it by hashing its own name.
    pub seed: u64,
    /// Cap on shrink candidates *tried* (passing candidates included).
    pub max_shrink_iters: u64,
    /// Cap on `prop_assume!` rejections before the check aborts.
    pub max_discards: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config::from_env()
    }
}

impl Config {
    /// The default configuration, honouring `GOC_TESTKIT_CASES` and
    /// `GOC_TESTKIT_SEED`.
    pub fn from_env() -> Self {
        let cases = env_u64("GOC_TESTKIT_CASES").unwrap_or(96).max(1);
        let seed = env_u64("GOC_TESTKIT_SEED").unwrap_or(0x67_6f_63_74_6b);
        Config {
            cases,
            seed,
            max_shrink_iters: 4096,
            max_discards: cases.saturating_mul(64).saturating_add(1024),
        }
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let s = raw.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A fully shrunk property failure, ready for reporting.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Name the property was checked under.
    pub property: String,
    /// Index of the failing case among the non-discarded ones.
    pub case: u64,
    /// Fork stream id of the failing case (reproduce with
    /// `root.fork(stream)`).
    pub stream: u64,
    /// The effective root seed (already decorrelated by property name).
    pub seed: u64,
    /// The failure message of the *shrunk* input.
    pub message: String,
    /// `Debug` rendering of the originally drawn input.
    pub original: String,
    /// `Debug` rendering of the minimal failing input found.
    pub shrunk: String,
    /// Number of successful shrink steps taken.
    pub shrink_steps: u64,
}

impl Failure {
    /// Multi-line human report, used as the panic message of [`check`].
    pub fn report(&self) -> String {
        format!(
            "[goc-testkit] property '{}' failed\n  \
             case {} (root seed {:#x}, fork stream {})\n  \
             original input: {}\n  \
             shrunk input:   {} ({} shrink steps)\n  \
             error: {}\n  \
             rerun deterministically: the harness is seeded — same build, same failure;\n  \
             override with GOC_TESTKIT_SEED / GOC_TESTKIT_CASES to explore nearby inputs",
            self.property,
            self.case,
            self.seed,
            self.stream,
            self.original,
            self.shrunk,
            self.shrink_steps,
            self.message,
        )
    }
}

/// Checks `prop` against `cases` inputs drawn from `gen`, panicking with a
/// shrunk counterexample on the first failure.
///
/// This is the `#[test]`-facing entry point; [`check_result`] is the
/// non-panicking variant the testkit's own tests use.
pub fn check<T, F>(name: &str, gen: Gen<T>, prop: F)
where
    T: Debug + 'static,
    F: Fn(&T) -> PropResult,
{
    check_with(Config::from_env(), name, gen, prop)
}

/// [`check`] with an explicit [`Config`].
pub fn check_with<T, F>(cfg: Config, name: &str, gen: Gen<T>, prop: F)
where
    T: Debug + 'static,
    F: Fn(&T) -> PropResult,
{
    if let Err(failure) = check_result(cfg, name, gen, prop) {
        panic!("{}", failure.report());
    }
}

/// Runs the check and returns the shrunk [`Failure`] instead of panicking.
pub fn check_result<T, F>(cfg: Config, name: &str, gen: Gen<T>, prop: F) -> Result<(), Failure>
where
    T: Debug + 'static,
    F: Fn(&T) -> PropResult,
{
    let seed = cfg.seed ^ fnv1a(name);
    let root = GocRng::seed_from_u64(seed);
    let mut case = 0u64;
    let mut discards = 0u64;
    let mut stream = 0u64;
    while case < cfg.cases {
        let mut rng = root.fork(stream);
        let input = gen.generate(&mut rng);
        match run_case(&prop, &input) {
            Ok(()) => case += 1,
            Err(CaseError::Discard) => {
                discards += 1;
                assert!(
                    discards <= cfg.max_discards,
                    "[goc-testkit] property '{name}' discarded {discards} cases \
                     (budget {}); loosen prop_assume! or widen the generator",
                    cfg.max_discards
                );
            }
            Err(CaseError::Fail(message)) => {
                let original = format!("{input:?}");
                let (shrunk, shrink_steps, message) =
                    shrink_failure(&cfg, &gen, &prop, input, message);
                return Err(Failure {
                    property: name.to_string(),
                    case,
                    stream,
                    seed,
                    message,
                    original,
                    shrunk: format!("{shrunk:?}"),
                    shrink_steps,
                });
            }
        }
        stream += 1;
    }
    Ok(())
}

/// Runs one case, converting panics inside the property (or the code under
/// test) into ordinary failures so they shrink like any other.
fn run_case<T, F>(prop: &F, input: &T) -> PropResult
where
    F: Fn(&T) -> PropResult,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(payload) => Err(CaseError::Fail(panic_message(&*payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Greedy shrinking: repeatedly replace the current counterexample with the
/// first still-failing candidate its generator proposes, until no candidate
/// fails or the iteration budget is exhausted. Candidates that pass or are
/// discarded are skipped.
fn shrink_failure<T, F>(
    cfg: &Config,
    gen: &Gen<T>,
    prop: &F,
    first: T,
    first_msg: String,
) -> (T, u64, String)
where
    T: Debug + 'static,
    F: Fn(&T) -> PropResult,
{
    let mut current = first;
    let mut message = first_msg;
    let mut steps = 0u64;
    let mut tried = 0u64;
    loop {
        let mut advanced = false;
        for cand in gen.shrink_candidates(&current) {
            if tried >= cfg.max_shrink_iters {
                return (current, steps, message);
            }
            tried += 1;
            if let Err(CaseError::Fail(m)) = run_case(prop, &cand) {
                current = cand;
                message = m;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, steps, message);
        }
    }
}

/// FNV-1a, used to decorrelate properties sharing one root seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fails the case unless the condition holds. Accepts an optional
/// format-string message like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(),
                line!(),
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed at {}:{}: {} == {}\n    left: {:?}\n   right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed at {}:{}: {} == {}: {}\n    left: {:?}\n   right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed at {}:{}: {} != {}\n    both: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the case (without counting it) unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseError::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn small_cfg() -> Config {
        Config { cases: 64, seed: 0xdead_beef, max_shrink_iters: 4096, max_discards: 10_000 }
    }

    #[test]
    fn same_seed_yields_identical_case_sequence() {
        let record = || {
            let seen = RefCell::new(Vec::new());
            let r = check_result(small_cfg(), "determinism", gens::any_u64(), |&v| {
                seen.borrow_mut().push(v);
                Ok(())
            });
            assert!(r.is_ok());
            seen.into_inner()
        };
        let (a, b) = (record(), record());
        assert_eq!(a.len(), 64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_property_names_decorrelate_inputs() {
        let record = |name: &str| {
            let seen = RefCell::new(Vec::new());
            let _ = check_result(small_cfg(), name, gens::any_u64(), |&v| {
                seen.borrow_mut().push(v);
                Ok(())
            });
            seen.into_inner()
        };
        assert_ne!(record("alpha"), record("beta"));
    }

    #[test]
    fn shrinking_finds_the_minimal_failing_integer() {
        let failure = check_result(small_cfg(), "ge_1000_fails", gens::any_u64(), |&v| {
            prop_assert!(v < 1000);
            Ok(())
        })
        .expect_err("property must fail");
        assert_eq!(failure.shrunk, "1000", "greedy shrink must reach the boundary");
        assert!(failure.shrink_steps > 0);
    }

    #[test]
    fn shrinking_finds_the_minimal_failing_vector() {
        let failure = check_result(
            small_cfg(),
            "contains_big_byte_fails",
            gens::bytes(0, 64),
            |v: &Vec<u8>| {
                prop_assert!(v.iter().all(|&b| b < 200));
                Ok(())
            },
        )
        .expect_err("property must fail");
        assert_eq!(failure.shrunk, "[200]", "minimal witness is a single boundary byte");
    }

    #[test]
    fn shrinking_respects_generator_lower_bounds() {
        // Everything fails; the shrunk input must still satisfy the
        // generator's range contract instead of collapsing to zero.
        let failure =
            check_result(small_cfg(), "always_fails", gens::u64_in(10, 50), |_| {
                Err(CaseError::fail("no"))
            })
            .expect_err("property must fail");
        assert_eq!(failure.shrunk, "10");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let failure = check_result(small_cfg(), "panics_ge_100", gens::any_u64(), |&v| {
            assert!(v < 100, "too big");
            Ok(())
        })
        .expect_err("property must fail");
        assert_eq!(failure.shrunk, "100");
        assert!(failure.message.contains("too big"), "message = {}", failure.message);
    }

    #[test]
    fn discards_do_not_consume_the_case_budget() {
        let ran = RefCell::new(0u64);
        let r = check_result(small_cfg(), "assume_even", gens::any_u64(), |&v| {
            prop_assume!(v % 2 == 0);
            *ran.borrow_mut() += 1;
            Ok(())
        });
        assert!(r.is_ok());
        assert_eq!(ran.into_inner(), 64, "all 64 counted cases were even");
    }

    #[test]
    fn fork_streams_are_independent_across_cases() {
        let seen = RefCell::new(Vec::new());
        let _ = check_result(small_cfg(), "streams", gens::any_u64(), |&v| {
            seen.borrow_mut().push(v);
            Ok(())
        });
        let seen = seen.into_inner();
        let mut uniq = seen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seen.len(), "case inputs must not repeat");
    }

    #[test]
    fn failure_report_names_the_reproduction_knobs() {
        let failure = check_result(small_cfg(), "doomed", gens::any_u8(), |_| {
            Err(CaseError::fail("always"))
        })
        .expect_err("property must fail");
        let report = failure.report();
        assert!(report.contains("doomed"));
        assert!(report.contains("GOC_TESTKIT_SEED"));
        assert!(report.contains("fork stream"));
    }
}
