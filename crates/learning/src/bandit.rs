//! Bandit (partial-information) feedback: the regime Theorem 1's universal
//! user actually lives in.
//!
//! In a single execution, the user only observes the consequences of the
//! strategy it is *currently running* — bandit feedback. The halving
//! algorithm's log₂N bound needs *full information* (every hypothesis's
//! counterfactual correctness), which multi-session goals with rich echoes
//! provide (see [`crate::bridge`]). This module plays the bandit variant and
//! shows the gap: with bandit feedback, eliminating one hypothesis per
//! mistake (≈ N−1 total) is essentially the best any learner can do against
//! an adversarial concept, which is exactly the enumeration overhead of the
//! paper's universal construction.

use crate::class::HypothesisClass;
use goc_core::rng::GocRng;
use std::fmt::Debug;

/// A policy for the bandit game: pick a hypothesis, observe only whether
/// *that* hypothesis's response succeeded.
pub trait BanditPolicy: Debug {
    /// Chooses the hypothesis index to play this session.
    fn choose(&mut self, rng: &mut GocRng) -> usize;

    /// Observes the played hypothesis's success.
    fn observe(&mut self, played: usize, success: bool);

    /// A short human-readable name.
    fn name(&self) -> String;
}

/// Sequential elimination — the bandit form of Theorem 1's enumeration:
/// stay while succeeding, advance on failure. Mistakes ≤ N − 1 on
/// consistent data; optimal up to constants under bandit feedback.
#[derive(Debug)]
pub struct SequentialElimination {
    n: usize,
    current: usize,
}

impl SequentialElimination {
    /// A policy over `n` hypotheses.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "SequentialElimination requires a non-empty class");
        SequentialElimination { n, current: 0 }
    }
}

impl BanditPolicy for SequentialElimination {
    fn choose(&mut self, _rng: &mut GocRng) -> usize {
        self.current
    }

    fn observe(&mut self, played: usize, success: bool) {
        if played == self.current && !success {
            self.current = (self.current + 1) % self.n;
        }
    }

    fn name(&self) -> String {
        format!("sequential-elimination(x{})", self.n)
    }
}

/// ε-greedy exploration: mostly exploit the best empirical hypothesis,
/// explore uniformly with probability ε. Included as the classic bandit
/// baseline; against a *deterministic* consistent concept it has no edge
/// over sequential elimination, illustrating the full-info/bandit gap.
#[derive(Debug)]
pub struct EpsilonGreedy {
    epsilon: f64,
    successes: Vec<u64>,
    plays: Vec<u64>,
}

impl EpsilonGreedy {
    /// A policy over `n` hypotheses exploring with probability `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon` is outside `[0, 1]`.
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "EpsilonGreedy requires a non-empty class");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        EpsilonGreedy { epsilon, successes: vec![0; n], plays: vec![0; n] }
    }

    fn best(&self) -> usize {
        let score = |i: usize| {
            if self.plays[i] == 0 {
                // Optimistic initialization: unplayed arms look perfect.
                1.0
            } else {
                self.successes[i] as f64 / self.plays[i] as f64
            }
        };
        // Ties break toward the lowest index (a deterministic sweep order).
        let mut best = 0;
        for i in 1..self.successes.len() {
            if score(i) > score(best) {
                best = i;
            }
        }
        best
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn choose(&mut self, rng: &mut GocRng) -> usize {
        if rng.chance(self.epsilon) {
            rng.index(self.successes.len())
        } else {
            self.best()
        }
    }

    fn observe(&mut self, played: usize, success: bool) {
        self.plays[played] += 1;
        if success {
            self.successes[played] += 1;
        }
    }

    fn name(&self) -> String {
        format!("epsilon-greedy(ε={})", self.epsilon)
    }
}

/// Outcome of a bandit run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BanditReport {
    /// Sessions played.
    pub sessions: u64,
    /// Failed sessions.
    pub mistakes: u64,
    /// Session of the last mistake, if any.
    pub last_mistake: Option<u64>,
}

impl BanditReport {
    /// `true` if the policy stopped erring at some point.
    pub fn converged(&self) -> bool {
        match self.last_mistake {
            None => true,
            Some(last) => last + 1 < self.sessions,
        }
    }
}

/// Plays a bandit game whose hidden concept **drifts**: the active concept
/// is `concepts[t / phase_len]` (clamped to the last entry). Static learners
/// that lock on (sequential elimination) are broken by the first drift;
/// exploring learners (EXP3, ε-greedy) recover.
///
/// Returns per-phase mistake counts.
///
/// # Panics
///
/// Panics if `concepts` is empty, any index is out of range, or
/// `phase_len == 0`.
pub fn run_drifting_bandit(
    class: &dyn HypothesisClass,
    concepts: &[usize],
    phase_len: u64,
    policy: &mut dyn BanditPolicy,
    challenge_len: usize,
    rng: &mut GocRng,
) -> Vec<u64> {
    assert!(!concepts.is_empty(), "need at least one concept phase");
    assert!(phase_len > 0, "phase_len must be positive");
    assert!(concepts.iter().all(|&c| c < class.len()), "concept index out of range");
    let mut per_phase = vec![0u64; concepts.len()];
    for session in 0..concepts.len() as u64 * phase_len {
        let phase = (session / phase_len) as usize;
        let concept = concepts[phase];
        let challenge = rng.bytes(challenge_len);
        let truth = class.respond(concept, &challenge);
        let played = policy.choose(rng);
        let success = class.respond(played, &challenge) == truth;
        if !success {
            per_phase[phase] += 1;
        }
        policy.observe(played, success);
    }
    per_phase
}

/// Plays `sessions` rounds of the bandit game: the policy picks a
/// hypothesis, plays its response, and learns only that response's success.
///
/// # Panics
///
/// Panics if `concept` is out of range.
pub fn run_bandit(
    class: &dyn HypothesisClass,
    concept: usize,
    policy: &mut dyn BanditPolicy,
    sessions: u64,
    challenge_len: usize,
    rng: &mut GocRng,
) -> BanditReport {
    assert!(concept < class.len(), "concept index out of range");
    let mut mistakes = 0;
    let mut last_mistake = None;
    for session in 0..sessions {
        let challenge = rng.bytes(challenge_len);
        let truth = class.respond(concept, &challenge);
        let played = policy.choose(rng);
        let response = class.respond(played, &challenge);
        let success = response == truth;
        if !success {
            mistakes += 1;
            last_mistake = Some(session);
        }
        policy.observe(played, success);
    }
    BanditReport { sessions, mistakes, last_mistake }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::TransformClass;
    use goc_goals::transmission::Transform;

    fn table_class(n: usize) -> TransformClass {
        TransformClass::new((0..n).map(|i| Transform::Table(2_000 + i as u64)).collect())
    }

    #[test]
    fn sequential_elimination_pays_linear_mistakes() {
        let n = 20;
        let class = table_class(n);
        let mut p = SequentialElimination::new(n);
        let r = run_bandit(&class, n - 1, &mut p, 200, 4, &mut GocRng::seed_from_u64(1));
        assert!(r.converged(), "{r:?}");
        assert_eq!(r.mistakes as usize, n - 1);
    }

    #[test]
    fn sequential_elimination_with_concept_zero_is_free() {
        let class = table_class(8);
        let mut p = SequentialElimination::new(8);
        let r = run_bandit(&class, 0, &mut p, 50, 4, &mut GocRng::seed_from_u64(2));
        assert_eq!(r.mistakes, 0);
    }

    #[test]
    fn epsilon_greedy_zero_eps_converges() {
        // Pure exploitation with optimistic initialization sweeps the arms
        // once, then locks onto the concept.
        let n = 12;
        let class = table_class(n);
        let mut p = EpsilonGreedy::new(n, 0.0);
        let r = run_bandit(&class, n - 1, &mut p, 200, 4, &mut GocRng::seed_from_u64(3));
        assert!(r.converged(), "{r:?}");
        // Must try each wrong arm at least once: the bandit lower bound.
        assert!(r.mistakes as usize >= n - 1, "{r:?}");
    }

    #[test]
    fn exploring_epsilon_greedy_keeps_erring() {
        // With ε > 0 the policy keeps exploring (and erring) forever —
        // exploration is wasted against a deterministic concept.
        let n = 8;
        let class = table_class(n);
        let mut p = EpsilonGreedy::new(n, 0.3);
        let r = run_bandit(&class, 0, &mut p, 400, 4, &mut GocRng::seed_from_u64(4));
        assert!(r.mistakes > 20, "{r:?}");
    }

    #[test]
    fn bandit_gap_versus_full_information() {
        // The headline: same class, same adversarial concept — bandit
        // learners pay ~N−1 while the full-information halving learner pays
        // ~log2 N (see crate::arena). This is why Theorem 1's in-execution
        // enumeration overhead is unavoidable *within* one execution.
        let n = 64;
        let class = table_class(n);
        let mut bandit = SequentialElimination::new(n);
        let rb = run_bandit(&class, n - 1, &mut bandit, 400, 4, &mut GocRng::seed_from_u64(5));
        let mut halving = crate::policy::HalvingPolicy::new(n);
        let rf = crate::arena::run_arena(
            &class,
            n - 1,
            &mut halving,
            400,
            4,
            &mut GocRng::seed_from_u64(6),
        );
        assert!(rb.mistakes as usize >= n - 1);
        assert!(rf.mistakes <= 7);
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| SequentialElimination::new(0)).is_err());
        assert!(std::panic::catch_unwind(|| EpsilonGreedy::new(0, 0.1)).is_err());
        assert!(std::panic::catch_unwind(|| EpsilonGreedy::new(4, 1.5)).is_err());
    }

    #[test]
    fn names() {
        assert!(SequentialElimination::new(2).name().contains("sequential"));
        assert!(EpsilonGreedy::new(2, 0.25).name().contains("0.25"));
    }
}
