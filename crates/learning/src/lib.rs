//! # goc-learning — multi-session goals and on-line learning
//!
//! The closing remark of *A Theory of Goal-Oriented Communication* points at
//! efficient universal users for broad special classes; Juba–Vempala
//! (reference \[5\] of the paper) make this precise for **simple multi-session
//! goals**: choosing a user strategy session-by-session with per-session
//! success feedback *is* on-line learning over the strategy class. This
//! crate reproduces that correspondence:
//!
//! - [`class`] — hypothesis classes (the transform class of the transmission
//!   goal, plus a textbook threshold class).
//! - [`policy`] — the learners: [`EnumerationPolicy`] (what Theorem 1's
//!   universal user amounts to, mistake bound N−1), [`HalvingPolicy`]
//!   (⌈log₂ N⌉), [`WeightedMajorityPolicy`] (noise-tolerant).
//! - [`arena`] — the abstract full-information game.
//! - [`bridge`] — the same game played **inside the real simulator**, with
//!   feedback extracted from the transmission world's echoes only.
//!
//! Experiment E7 (EXPERIMENTS.md) charts the N−1 vs log₂N mistake curves.

pub mod arena;
pub mod bandit;
pub mod bridge;
pub mod class;
pub mod exp3;
pub mod policy;

pub use arena::{run_arena, ArenaReport};
pub use bandit::{run_bandit, run_drifting_bandit, BanditPolicy, BanditReport, EpsilonGreedy, SequentialElimination};
pub use exp3::Exp3;
pub use bridge::{run_bandit_bridge, run_bridge, BridgeReport};
pub use class::{HypothesisClass, ThresholdClass, TransformClass};
pub use policy::{EnumerationPolicy, HalvingPolicy, SessionPolicy, WeightedMajorityPolicy};
