//! EXP3 — exponential-weights exploration for the adversarial bandit
//! setting.
//!
//! Completes the bandit picture of [`crate::bandit`]: where
//! [`SequentialElimination`](crate::bandit::SequentialElimination) exploits
//! consistency (deterministic concepts), EXP3 handles *adversarial* reward
//! sequences — servers whose helpfulness drifts over time (e.g. an
//! intermittently-helpful composite). Regret O(√(T·N·ln N)) instead of a
//! mistake bound.

use crate::bandit::BanditPolicy;
use goc_core::rng::GocRng;

/// The EXP3 algorithm (Auer–Cesa-Bianchi–Freund–Schapire) over `n` arms.
///
/// With a non-zero mixing rate ([`Exp3::with_mixing`]) this becomes EXP3.S,
/// which *tracks* drifting concepts: a little uniform weight is folded in
/// after every update, so no arm's weight ever becomes irrecoverably small
/// relative to the others.
#[derive(Debug)]
pub struct Exp3 {
    weights: Vec<f64>,
    gamma: f64,
    alpha: f64,
    last_probs: Vec<f64>,
    last_played: usize,
}

impl Exp3 {
    /// An EXP3 learner with exploration rate `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `gamma` is outside `(0, 1]`.
    pub fn new(n: usize, gamma: f64) -> Self {
        Self::with_mixing(n, gamma, 0.0)
    }

    /// EXP3.S: like [`new`](Self::new) but folds `alpha` of the total weight
    /// back in uniformly after each update, enabling recovery from concept
    /// drift.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `gamma` is outside `(0, 1]`, or `alpha` is
    /// outside `[0, 1)`.
    pub fn with_mixing(n: usize, gamma: f64, alpha: f64) -> Self {
        assert!(n > 0, "Exp3 requires a non-empty class");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must lie in (0, 1]");
        assert!((0.0..1.0).contains(&alpha), "alpha must lie in [0, 1)");
        Exp3 {
            weights: vec![1.0; n],
            gamma,
            alpha,
            last_probs: vec![1.0 / n as f64; n],
            last_played: 0,
        }
    }

    /// The current sampling distribution.
    pub fn distribution(&self) -> Vec<f64> {
        let n = self.weights.len() as f64;
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|w| (1.0 - self.gamma) * (w / total) + self.gamma / n)
            .collect()
    }

    fn renormalize(&mut self) {
        let max = self.weights.iter().cloned().fold(f64::MIN, f64::max);
        if max > 1e100 {
            for w in &mut self.weights {
                *w /= max;
            }
        }
    }
}

impl BanditPolicy for Exp3 {
    fn choose(&mut self, rng: &mut GocRng) -> usize {
        let probs = self.distribution();
        self.last_probs = probs.clone();
        let mut x = rng.unit();
        for (i, p) in probs.iter().enumerate() {
            if x < *p {
                self.last_played = i;
                return i;
            }
            x -= p;
        }
        self.last_played = probs.len() - 1;
        self.last_played
    }

    fn observe(&mut self, played: usize, success: bool) {
        if played != self.last_played {
            return; // out-of-band observation; EXP3 only learns its own play
        }
        let reward = if success { 1.0 } else { 0.0 };
        let p = self.last_probs[played].max(1e-12);
        let estimated = reward / p; // importance-weighted reward estimate
        let n = self.weights.len() as f64;
        self.weights[played] *= (self.gamma * estimated / n).exp();
        if self.alpha > 0.0 {
            // EXP3.S mixing: keep every arm recoverable.
            let total: f64 = self.weights.iter().sum();
            for w in &mut self.weights {
                *w = (1.0 - self.alpha) * *w + self.alpha * total / n;
            }
        }
        self.renormalize();
    }

    fn name(&self) -> String {
        format!("exp3(γ={})", self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::run_bandit;
    use crate::class::TransformClass;
    use goc_goals::transmission::Transform;

    fn table_class(n: usize) -> TransformClass {
        TransformClass::new((0..n).map(|i| Transform::Table(3_000 + i as u64)).collect())
    }

    #[test]
    fn distribution_sums_to_one() {
        let e = Exp3::new(8, 0.2);
        let d = e.distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn concentrates_on_the_concept() {
        let n = 8;
        let class = table_class(n);
        let mut e = Exp3::new(n, 0.15);
        let _ = run_bandit(&class, 3, &mut e, 2_000, 4, &mut GocRng::seed_from_u64(1));
        let d = e.distribution();
        let best = d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3, "distribution: {d:?}");
        assert!(d[3] > 0.5, "should concentrate: {d:?}");
    }

    #[test]
    fn late_mistake_rate_is_bounded_by_exploration() {
        let n = 4;
        let class = table_class(n);
        let mut e = Exp3::new(n, 0.1);
        let report = run_bandit(&class, 1, &mut e, 3_000, 4, &mut GocRng::seed_from_u64(2));
        // Can't converge exactly (γ-exploration keeps erring), but the
        // mistake fraction should approach γ·(n−1)/n plus learning cost.
        let rate = report.mistakes as f64 / report.sessions as f64;
        assert!(rate < 0.25, "mistake rate {rate}");
    }

    #[test]
    fn exp3_recovers_from_concept_drift() {
        use crate::bandit::{run_drifting_bandit, SequentialElimination};
        let n = 6;
        let class = table_class(n);
        // Concept switches 2 -> 5 halfway through.
        let concepts = [2usize, 5];
        let phase_len = 1_500;

        // Plain EXP3 cannot forget phase 1's accumulated weight, so its
        // phase-2 recovery is slow; EXP3.S (mixing) tracks the drift.
        let mut plain = Exp3::new(n, 0.2);
        let plain_phases = run_drifting_bandit(
            &class, &concepts, phase_len, &mut plain, 4, &mut GocRng::seed_from_u64(31),
        );
        let mut tracking = Exp3::with_mixing(n, 0.1, 0.002);
        let tracking_phases = run_drifting_bandit(
            &class, &concepts, phase_len, &mut tracking, 4, &mut GocRng::seed_from_u64(31),
        );
        let mut seq = SequentialElimination::new(n);
        let seq_phases = run_drifting_bandit(
            &class, &concepts, phase_len, &mut seq, 4, &mut GocRng::seed_from_u64(32),
        );

        let chance = phase_len as f64 * (n as f64 - 1.0) / n as f64;
        // Plain EXP3's phase-2 recovery is nearly as bad as chance…
        assert!((plain_phases[1] as f64) > 0.8 * chance, "plain: {plain_phases:?}");
        // …while mixing recovers to well under half of chance…
        assert!((tracking_phases[1] as f64) < 0.5 * chance, "exp3.s: {tracking_phases:?}");
        assert!(tracking_phases[1] < plain_phases[1]);
        // …and sequential elimination is near-perfect against deterministic
        // concepts (one failed session per abandoned hypothesis).
        assert!(seq_phases[1] < 10, "seq: {seq_phases:?}");
    }

    #[test]
    fn ignores_out_of_band_observations() {
        let mut e = Exp3::new(4, 0.2);
        let w = e.distribution();
        e.observe(2, true); // never played arm 2 via choose()
        assert_eq!(e.distribution(), w, "foreign observations must not corrupt weights");
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| Exp3::new(0, 0.1)).is_err());
        assert!(std::panic::catch_unwind(|| Exp3::new(4, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Exp3::new(4, 1.5)).is_err());
        assert!(std::panic::catch_unwind(|| Exp3::with_mixing(4, 0.2, 1.0)).is_err());
        assert!(Exp3::new(4, 0.3).name().contains("0.3"));
    }
}
