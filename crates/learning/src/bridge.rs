//! The bridge: running the on-line learners inside the *actual*
//! goal-oriented-communication simulator.
//!
//! This is the operational half of the Juba–Vempala equivalence: a
//! multi-session **transmission** goal, where each session poses one
//! challenge, the policy commits to a response (by choosing which user
//! strategy to field), the response travels through the real
//! [`PipeServer`], and the *feedback is
//! exactly the world's echo* — `OK` or `GOT:<bytes>` — from which the policy
//! eliminates hypotheses, with no oracle access to the hidden transform.

use crate::class::{HypothesisClass, TransformClass};
use crate::policy::SessionPolicy;
use goc_core::exec::Execution;
use goc_core::msg::{Message, UserIn, UserOut};
use goc_core::rng::GocRng;
use goc_core::strategy::{StepCtx, UserStrategy, WorldStrategy};
use goc_goals::transmission::{parse_broadcast, ChannelWorld, Feedback, PipeServer, Transform};

/// A user that transmits one fixed payload as soon as it sees a challenge,
/// then stays silent — one session's worth of behaviour.
#[derive(Clone, Debug)]
struct OneShotSender {
    payload: Vec<u8>,
    sent: bool,
}

impl UserStrategy for OneShotSender {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.sent || parse_broadcast(input.from_world.as_bytes()).is_none() {
            return UserOut::silence();
        }
        self.sent = true;
        UserOut::to_server(Message::from_bytes(self.payload.clone()))
    }

    fn name(&self) -> String {
        "one-shot-sender".to_string()
    }
}

/// Outcome of a bridged multi-session run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BridgeReport {
    /// Sessions played.
    pub sessions: u64,
    /// Sessions whose challenge was not delivered intact.
    pub mistakes: u64,
    /// Session index of the last mistake, if any.
    pub last_mistake: Option<u64>,
}

impl BridgeReport {
    /// `true` if the learner stopped missing at some point.
    pub fn converged(&self) -> bool {
        match self.last_mistake {
            None => true,
            Some(last) => last + 1 < self.sessions,
        }
    }
}

/// Runs `sessions` one-challenge episodes of the transmission goal with the
/// hidden transform `class.transforms()[concept]`, letting `policy` pick the
/// response each session and updating it from the world's echo alone.
///
/// # Panics
///
/// Panics if `concept` is out of range or `challenge_len == 0`.
pub fn run_bridge(
    class: &TransformClass,
    concept: usize,
    policy: &mut dyn SessionPolicy,
    sessions: u64,
    challenge_len: usize,
    rng: &mut GocRng,
) -> BridgeReport {
    assert!(concept < class.len(), "concept index out of range");
    let hidden: Transform = class.transforms()[concept].clone();
    let mut mistakes = 0;
    let mut last_mistake = None;

    for session in 0..sessions {
        let mut session_rng = rng.fork(session);
        // One fresh world per session (period long enough that the single
        // challenge stands for the whole episode).
        let world = ChannelWorld::new(challenge_len, 1_000, &mut session_rng);
        let challenge = world.state().challenge.clone();

        let responses: Vec<Vec<u8>> =
            (0..class.len()).map(|h| class.respond(h, &challenge)).collect();
        let prediction = policy.predict(&responses);

        let mut exec = Execution::new(
            world,
            Box::new(PipeServer::new(hidden.clone())),
            Box::new(OneShotSender { payload: prediction.clone(), sent: false }),
            session_rng,
        );
        let t = exec.run_for(8);

        // Extract the echo: what did the world actually receive?
        let mut received: Option<Vec<u8>> = None;
        for ev in t.view.iter() {
            match parse_broadcast(ev.received.from_world.as_bytes()) {
                Some((_, Feedback::Ok)) => {
                    received = Some(challenge.clone());
                    break;
                }
                Some((_, Feedback::Got(bytes))) => {
                    received = Some(bytes);
                    break;
                }
                _ => {}
            }
        }

        let success = t.world_states.last().map(|s| s.answered).unwrap_or(false);
        if !success {
            mistakes += 1;
            last_mistake = Some(session);
        }

        // Full-information update from the echo: hypothesis h is consistent
        // iff applying h's transform to what we sent yields what the world
        // reported receiving.
        if let Some(received) = received {
            let correct: Vec<bool> = class
                .transforms()
                .iter()
                .map(|th| th.apply(&prediction) == received)
                .collect();
            policy.update(&responses, &correct);
        }
    }
    BridgeReport { sessions, mistakes, last_mistake }
}

/// The **bandit** bridge: the same multi-session transmission game against a
/// [feedback-poor world](ChannelWorld::without_echo) that never echoes
/// misdeliveries. Policies only learn whether *their own* session succeeded
/// — the information regime of a single in-execution universal user, where
/// full-information learners like halving lose their log2 N edge.
pub fn run_bandit_bridge(
    class: &TransformClass,
    concept: usize,
    policy: &mut dyn crate::bandit::BanditPolicy,
    sessions: u64,
    challenge_len: usize,
    rng: &mut GocRng,
) -> BridgeReport {
    assert!(concept < class.len(), "concept index out of range");
    let hidden: Transform = class.transforms()[concept].clone();
    let mut mistakes = 0;
    let mut last_mistake = None;

    for session in 0..sessions {
        let mut session_rng = rng.fork(session);
        let world = ChannelWorld::without_echo(challenge_len, 1_000, &mut session_rng);
        let challenge = world.state().challenge.clone();

        let played = policy.choose(&mut session_rng);
        let prediction = class.respond(played, &challenge);

        let mut exec = Execution::new(
            world,
            Box::new(PipeServer::new(hidden.clone())),
            Box::new(OneShotSender { payload: prediction, sent: false }),
            session_rng,
        );
        let t = exec.run_for(8);

        let success = t.world_states.last().map(|s| s.answered).unwrap_or(false);
        if !success {
            mistakes += 1;
            last_mistake = Some(session);
        }
        policy.observe(played, success);
    }
    BridgeReport { sessions, mistakes, last_mistake }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::SequentialElimination;
    use crate::policy::{EnumerationPolicy, HalvingPolicy};

    fn table_class(n: usize) -> TransformClass {
        TransformClass::new((0..n).map(|i| Transform::Table(1_000 + i as u64)).collect())
    }

    #[test]
    fn enumeration_in_simulator_pays_linear_mistakes() {
        let class = table_class(10);
        let concept = 7;
        let mut policy = EnumerationPolicy::new(class.len());
        let mut rng = GocRng::seed_from_u64(11);
        let report = run_bridge(&class, concept, &mut policy, 60, 4, &mut rng);
        assert!(report.converged(), "{report:?}");
        assert_eq!(report.mistakes, concept as u64, "{report:?}");
    }

    #[test]
    fn halving_in_simulator_pays_log_mistakes() {
        let class = table_class(32);
        let mut policy = HalvingPolicy::new(class.len());
        let mut rng = GocRng::seed_from_u64(12);
        let report = run_bridge(&class, 31, &mut policy, 60, 4, &mut rng);
        assert!(report.converged(), "{report:?}");
        assert!(report.mistakes <= 6, "expected ≤ log2(32)+1, got {}", report.mistakes);
    }

    #[test]
    fn echo_feedback_never_eliminates_the_true_concept() {
        let class = table_class(8);
        let concept = 5;
        let mut policy = HalvingPolicy::new(class.len());
        let mut rng = GocRng::seed_from_u64(13);
        let _ = run_bridge(&class, concept, &mut policy, 40, 4, &mut rng);
        assert!(policy.version_space() >= 1);
        // The surviving hypothesis must behave like the concept.
        let report = {
            let mut rng2 = GocRng::seed_from_u64(14);
            run_bridge(&class, concept, &mut policy, 10, 4, &mut rng2)
        };
        assert_eq!(report.mistakes, 0, "converged learner keeps delivering");
    }

    #[test]
    fn identity_concept_never_misses() {
        let mut transforms = vec![Transform::Enc(goc_goals::codec::Encoding::Identity)];
        transforms.extend((0..3).map(Transform::Table));
        let class = TransformClass::new(transforms);
        let mut policy = EnumerationPolicy::new(class.len());
        let mut rng = GocRng::seed_from_u64(15);
        let report = run_bridge(&class, 0, &mut policy, 20, 3, &mut rng);
        assert_eq!(report.mistakes, 0);
        assert!(report.converged());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_concept_panics() {
        let class = table_class(2);
        let mut policy = EnumerationPolicy::new(2);
        let mut rng = GocRng::seed_from_u64(16);
        let _ = run_bridge(&class, 2, &mut policy, 5, 2, &mut rng);
    }

    #[test]
    fn bandit_bridge_sequential_elimination_pays_linear() {
        let class = table_class(8);
        let mut policy = SequentialElimination::new(8);
        let mut rng = GocRng::seed_from_u64(21);
        let report = run_bandit_bridge(&class, 7, &mut policy, 60, 4, &mut rng);
        assert!(report.converged(), "{report:?}");
        assert_eq!(report.mistakes, 7);
    }

    #[test]
    fn bandit_bridge_gives_halving_no_edge() {
        // Without echoes there is nothing for a version-space learner to
        // eliminate except the played hypothesis, so sequential elimination
        // is already optimal: assert the mistake count equals the concept
        // index exactly (the bandit lower bound for this ordering).
        let class = table_class(12);
        let mut policy = SequentialElimination::new(12);
        let mut rng = GocRng::seed_from_u64(22);
        let report = run_bandit_bridge(&class, 11, &mut policy, 80, 4, &mut rng);
        assert_eq!(report.mistakes, 11);
    }
}
