//! Hypothesis classes for the multi-session (online-learning) setting.
//!
//! In the Juba–Vempala correspondence, the class of candidate user
//! strategies plays the role of a *hypothesis class*: each hypothesis maps a
//! session's challenge to the response that strategy would produce. The
//! hidden "concept" is the hypothesis matching the actual server.

use goc_goals::transmission::Transform;
use std::fmt::Debug;

/// A finite hypothesis class over byte-string challenges.
pub trait HypothesisClass: Debug {
    /// Number of hypotheses.
    fn len(&self) -> usize;

    /// `true` if the class is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The response hypothesis `h` gives to `challenge`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `h >= len()`.
    fn respond(&self, h: usize, challenge: &[u8]) -> Vec<u8>;

    /// A short human-readable name.
    fn name(&self) -> String {
        "hypothesis-class".to_string()
    }
}

/// The transform class of the transmission goal: hypothesis `h` responds
/// with `T_h⁻¹(challenge)` (the message that, piped through `T_h`, delivers
/// the challenge intact).
#[derive(Debug)]
pub struct TransformClass {
    transforms: Vec<Transform>,
}

impl TransformClass {
    /// A class over the given transforms.
    ///
    /// # Panics
    ///
    /// Panics if `transforms` is empty.
    pub fn new(transforms: Vec<Transform>) -> Self {
        assert!(!transforms.is_empty(), "TransformClass requires at least one transform");
        TransformClass { transforms }
    }

    /// The underlying transforms.
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Applies the *true* transform `t` to a response (what the world would
    /// receive) — used by arenas to judge predictions.
    pub fn apply(&self, t: usize, response: &[u8]) -> Vec<u8> {
        self.transforms[t].apply(response)
    }
}

impl HypothesisClass for TransformClass {
    fn len(&self) -> usize {
        self.transforms.len()
    }

    fn respond(&self, h: usize, challenge: &[u8]) -> Vec<u8> {
        self.transforms[h].invert(challenge)
    }

    fn name(&self) -> String {
        format!("transforms(x{})", self.transforms.len())
    }
}

/// The classic threshold class over single-byte challenges: hypothesis `h`
/// answers `1` iff the challenge byte is at least `h`'s threshold.
///
/// A textbook halving-algorithm example: each mistake bisects the version
/// space, giving exactly ⌈log₂ N⌉ mistakes against the worst sequence.
#[derive(Debug)]
pub struct ThresholdClass {
    thresholds: Vec<u8>,
}

impl ThresholdClass {
    /// A class with one hypothesis per threshold.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty.
    pub fn new(thresholds: Vec<u8>) -> Self {
        assert!(!thresholds.is_empty(), "ThresholdClass requires at least one threshold");
        ThresholdClass { thresholds }
    }

    /// An evenly spaced class of `n` thresholds over `0..=255`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 256`.
    pub fn evenly_spaced(n: usize) -> Self {
        assert!((1..=256).contains(&n), "n must be in 1..=256");
        let thresholds = (0..n).map(|i| ((i * 256) / n) as u8).collect();
        ThresholdClass::new(thresholds)
    }
}

impl HypothesisClass for ThresholdClass {
    fn len(&self) -> usize {
        self.thresholds.len()
    }

    fn respond(&self, h: usize, challenge: &[u8]) -> Vec<u8> {
        let x = challenge.first().copied().unwrap_or(0);
        if x >= self.thresholds[h] {
            vec![1]
        } else {
            vec![0]
        }
    }

    fn name(&self) -> String {
        format!("thresholds(x{})", self.thresholds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_goals::codec::Encoding;

    #[test]
    fn transform_class_responds_with_inverse() {
        let class = TransformClass::new(vec![
            Transform::Enc(Encoding::Identity),
            Transform::Enc(Encoding::Xor(0x0f)),
        ]);
        assert_eq!(class.len(), 2);
        let challenge = b"abc";
        let resp = class.respond(1, challenge);
        assert_eq!(class.apply(1, &resp), challenge.to_vec());
        assert_ne!(resp, challenge.to_vec());
    }

    #[test]
    fn threshold_class_labels() {
        let class = ThresholdClass::new(vec![10, 200]);
        assert_eq!(class.respond(0, &[10]), vec![1]);
        assert_eq!(class.respond(0, &[9]), vec![0]);
        assert_eq!(class.respond(1, &[199]), vec![0]);
        assert_eq!(class.respond(1, &[200]), vec![1]);
    }

    #[test]
    fn evenly_spaced_covers_range() {
        let class = ThresholdClass::evenly_spaced(4);
        assert_eq!(class.len(), 4);
        assert_eq!(class.respond(0, &[0]), vec![1], "threshold 0 accepts everything");
    }

    #[test]
    fn empty_classes_panic() {
        assert!(std::panic::catch_unwind(|| TransformClass::new(vec![])).is_err());
        assert!(std::panic::catch_unwind(|| ThresholdClass::new(vec![])).is_err());
        assert!(std::panic::catch_unwind(|| ThresholdClass::evenly_spaced(0)).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(ThresholdClass::evenly_spaced(8).name(), "thresholds(x8)");
        let c = TransformClass::new(vec![Transform::Enc(Encoding::Identity)]);
        assert_eq!(c.name(), "transforms(x1)");
        assert!(!c.is_empty());
    }
}
