//! Session policies: how a multi-session user picks its next strategy.
//!
//! These are the on-line learners of the Juba–Vempala correspondence \[5\]:
//!
//! - [`EnumerationPolicy`] — what Theorem 1's universal user does, session-
//!   ized: stick with the current hypothesis until it errs, then advance to
//!   the next still-consistent one. Mistake bound **N − 1**.
//! - [`HalvingPolicy`] — predict with the majority of the version space,
//!   eliminate everyone who was wrong. Mistake bound **⌈log₂ N⌉**.
//! - [`WeightedMajorityPolicy`] — multiplicative weights; tolerates
//!   *noisy/inconsistent* feedback that would wipe out the version space.
//!
//! All three consume the same full-information signal: after each session
//! the policy learns, for every hypothesis, whether its response would have
//! succeeded (derived from the world's echo — see [`crate::bridge`]).

use std::collections::HashMap;
use std::fmt::Debug;

/// A strategy-selection policy for multi-session goals.
pub trait SessionPolicy: Debug {
    /// The hypothesis responses for this session's challenge, one per class
    /// member; returns the response the policy commits to.
    fn predict(&mut self, responses: &[Vec<u8>]) -> Vec<u8>;

    /// Full-information update: `correct[h]` says whether hypothesis `h`'s
    /// response would have succeeded this session.
    fn update(&mut self, responses: &[Vec<u8>], correct: &[bool]);

    /// A short human-readable name.
    fn name(&self) -> String;
}

/// The enumeration learner (Theorem 1's construction, per session).
#[derive(Debug)]
pub struct EnumerationPolicy {
    n: usize,
    current: usize,
    eliminated: Vec<bool>,
}

impl EnumerationPolicy {
    /// A policy over a class of `n` hypotheses.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "EnumerationPolicy requires a non-empty class");
        EnumerationPolicy { n, current: 0, eliminated: vec![false; n] }
    }

    /// The hypothesis currently followed.
    pub fn current(&self) -> usize {
        self.current
    }
}

impl SessionPolicy for EnumerationPolicy {
    fn predict(&mut self, responses: &[Vec<u8>]) -> Vec<u8> {
        responses[self.current].clone()
    }

    fn update(&mut self, _responses: &[Vec<u8>], correct: &[bool]) {
        if !correct[self.current] {
            self.eliminated[self.current] = true;
            // Advance to the next non-eliminated hypothesis (wrapping scan;
            // stays put if everyone is eliminated — inconsistent feedback).
            for step in 1..=self.n {
                let cand = (self.current + step) % self.n;
                if !self.eliminated[cand] {
                    self.current = cand;
                    return;
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("enumeration(x{})", self.n)
    }
}

/// The halving learner: majority vote over the version space.
#[derive(Debug)]
pub struct HalvingPolicy {
    alive: Vec<bool>,
}

impl HalvingPolicy {
    /// A policy over a class of `n` hypotheses.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "HalvingPolicy requires a non-empty class");
        HalvingPolicy { alive: vec![true; n] }
    }

    /// Number of hypotheses still in the version space.
    pub fn version_space(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

impl SessionPolicy for HalvingPolicy {
    fn predict(&mut self, responses: &[Vec<u8>]) -> Vec<u8> {
        // Majority response among alive hypotheses (ties broken by first
        // occurrence, deterministically).
        let mut votes: HashMap<&[u8], usize> = HashMap::new();
        for (h, resp) in responses.iter().enumerate() {
            if self.alive[h] {
                *votes.entry(resp.as_slice()).or_insert(0) += 1;
            }
        }
        let mut best: Option<(&[u8], usize)> = None;
        for (h, resp) in responses.iter().enumerate() {
            if !self.alive[h] {
                continue;
            }
            let count = votes[resp.as_slice()];
            match best {
                Some((_, c)) if c >= count => {}
                _ => best = Some((resp.as_slice(), count)),
            }
        }
        best.map(|(r, _)| r.to_vec()).unwrap_or_default()
    }

    fn update(&mut self, _responses: &[Vec<u8>], correct: &[bool]) {
        // Keep at least the consistent hypotheses; if feedback would empty
        // the space (inconsistency), keep it unchanged.
        if correct.iter().zip(&self.alive).any(|(&c, &a)| c && a) {
            for (slot, &c) in self.alive.iter_mut().zip(correct) {
                if !c {
                    *slot = false;
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("halving(|V|={})", self.version_space())
    }
}

/// The weighted-majority learner (Littlestone–Warmuth): multiplies the
/// weight of every erring hypothesis by `beta`.
#[derive(Debug)]
pub struct WeightedMajorityPolicy {
    weights: Vec<f64>,
    beta: f64,
}

impl WeightedMajorityPolicy {
    /// A policy over `n` hypotheses with learning parameter `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `beta` is not in `(0, 1)`.
    pub fn new(n: usize, beta: f64) -> Self {
        assert!(n > 0, "WeightedMajorityPolicy requires a non-empty class");
        assert!(beta > 0.0 && beta < 1.0, "beta must lie in (0, 1)");
        WeightedMajorityPolicy { weights: vec![1.0; n], beta }
    }

    /// The current weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl SessionPolicy for WeightedMajorityPolicy {
    fn predict(&mut self, responses: &[Vec<u8>]) -> Vec<u8> {
        let mut mass: HashMap<&[u8], f64> = HashMap::new();
        for (h, resp) in responses.iter().enumerate() {
            *mass.entry(resp.as_slice()).or_insert(0.0) += self.weights[h];
        }
        let mut best: Option<(&[u8], f64)> = None;
        for resp in responses {
            let m = mass[resp.as_slice()];
            match best {
                Some((_, bm)) if bm >= m => {}
                _ => best = Some((resp.as_slice(), m)),
            }
        }
        best.map(|(r, _)| r.to_vec()).unwrap_or_default()
    }

    fn update(&mut self, _responses: &[Vec<u8>], correct: &[bool]) {
        for (w, &c) in self.weights.iter_mut().zip(correct) {
            if !c {
                *w *= self.beta;
            }
        }
        // Renormalize to dodge underflow on long runs.
        let total: f64 = self.weights.iter().sum();
        if total > 0.0 && total < 1e-100 {
            for w in &mut self.weights {
                *w /= total;
            }
        }
    }

    fn name(&self) -> String {
        format!("weighted-majority(β={})", self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn responses_for(n: usize, x: u8) -> Vec<Vec<u8>> {
        // Threshold-style responses: hypothesis h says 1 iff x >= h * 16.
        (0..n).map(|h| if x as usize >= h * 16 { vec![1] } else { vec![0] }).collect()
    }

    fn correct_for(responses: &[Vec<u8>], truth: &[u8]) -> Vec<bool> {
        responses.iter().map(|r| r.as_slice() == truth).collect()
    }

    #[test]
    fn enumeration_advances_only_on_mistake() {
        let mut p = EnumerationPolicy::new(4);
        let rs = responses_for(4, 40); // truth: hyp 2 (40 >= 32)
        let truth = rs[2].clone();
        let pred = p.predict(&rs);
        let correct = correct_for(&rs, &truth);
        p.update(&rs, &correct);
        if pred == truth {
            assert_eq!(p.current(), 0);
        } else {
            assert_ne!(p.current(), 0);
        }
    }

    #[test]
    fn enumeration_mistake_bound_n_minus_1() {
        // Adversarial full-info game where hypothesis `n-1` is the concept.
        let n = 16;
        let mut p = EnumerationPolicy::new(n);
        let mut mistakes = 0;
        for session in 0..200 {
            let x = (session % 256) as u8;
            let rs: Vec<Vec<u8>> = (0..n).map(|h| vec![h as u8, x]).collect();
            let truth = rs[n - 1].clone();
            let pred = p.predict(&rs);
            if pred != truth {
                mistakes += 1;
            }
            p.update(&rs, &correct_for(&rs, &truth));
        }
        assert_eq!(mistakes, n - 1);
    }

    #[test]
    fn halving_mistake_bound_log_n() {
        let n = 64;
        let mut p = HalvingPolicy::new(n);
        let mut mistakes = 0;
        // Distinct-response game: every hypothesis responds differently, so
        // each mistake eliminates everyone who voted with the majority.
        for session in 0..500 {
            let x = (session * 37 % 256) as u8;
            let rs: Vec<Vec<u8>> = (0..n).map(|h| vec![h as u8, x]).collect();
            let truth = rs[n - 1].clone();
            if p.predict(&rs) != truth {
                mistakes += 1;
            }
            p.update(&rs, &correct_for(&rs, &truth));
        }
        // With all-distinct responses each mistake removes ≥ the majority
        // block; the bound ⌈log₂ n⌉ is loose here but must hold.
        assert!(mistakes <= (n as f64).log2().ceil() as usize + 1, "mistakes = {mistakes}");
        assert_eq!(p.version_space(), 1);
    }

    #[test]
    fn halving_survives_inconsistent_feedback() {
        let mut p = HalvingPolicy::new(4);
        let rs: Vec<Vec<u8>> = (0..4).map(|h| vec![h]).collect();
        p.update(&rs, &[false, false, false, false]);
        assert_eq!(p.version_space(), 4, "version space preserved on inconsistency");
    }

    #[test]
    fn weighted_majority_downweights_errers() {
        let mut p = WeightedMajorityPolicy::new(3, 0.5);
        let rs: Vec<Vec<u8>> = (0..3).map(|h| vec![h]).collect();
        p.update(&rs, &[true, false, true]);
        assert_eq!(p.weights(), &[1.0, 0.5, 1.0]);
    }

    #[test]
    fn weighted_majority_converges_under_noise() {
        // Concept = hyp 0, but 10% of sessions give flipped feedback.
        let n = 8;
        let mut p = WeightedMajorityPolicy::new(n, 0.5);
        let mut late_mistakes = 0;
        for session in 0..400 {
            let x = (session % 256) as u8;
            let rs: Vec<Vec<u8>> = (0..n).map(|h| vec![h as u8 ^ x]).collect();
            let truth = rs[0].clone();
            let noisy = session % 10 == 9;
            let pred = p.predict(&rs);
            if session >= 200 && pred != truth {
                late_mistakes += 1;
            }
            let correct: Vec<bool> =
                rs.iter().map(|r| (r == &truth) != noisy).collect();
            p.update(&rs, &correct);
        }
        assert!(late_mistakes <= 40, "late mistakes = {late_mistakes}");
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| EnumerationPolicy::new(0)).is_err());
        assert!(std::panic::catch_unwind(|| HalvingPolicy::new(0)).is_err());
        assert!(std::panic::catch_unwind(|| WeightedMajorityPolicy::new(4, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| WeightedMajorityPolicy::new(4, 0.0)).is_err());
    }

    #[test]
    fn names() {
        assert!(EnumerationPolicy::new(3).name().contains("enumeration"));
        assert!(HalvingPolicy::new(3).name().contains("halving"));
        assert!(WeightedMajorityPolicy::new(3, 0.5).name().contains("β=0.5"));
    }
}
