//! The abstract multi-session arena: repeated challenges against a hidden
//! concept, with full-information feedback.

use crate::class::HypothesisClass;
use crate::policy::SessionPolicy;
use goc_core::rng::GocRng;

/// The outcome of a multi-session run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaReport {
    /// Sessions played.
    pub sessions: u64,
    /// Sessions the policy's committed response was wrong.
    pub mistakes: u64,
    /// Session index of the last mistake, if any.
    pub last_mistake: Option<u64>,
}

impl ArenaReport {
    /// `true` if the policy stopped erring at some point.
    pub fn converged(&self) -> bool {
        match self.last_mistake {
            None => true,
            Some(last) => last + 1 < self.sessions,
        }
    }
}

/// Runs `sessions` rounds of the on-line game: draw a challenge, let the
/// policy commit to a response, compare with the hidden concept's response,
/// reveal per-hypothesis correctness.
///
/// `challenge_len` bytes are drawn uniformly per session.
///
/// # Panics
///
/// Panics if `concept` is out of range for `class`.
pub fn run_arena(
    class: &dyn HypothesisClass,
    concept: usize,
    policy: &mut dyn SessionPolicy,
    sessions: u64,
    challenge_len: usize,
    rng: &mut GocRng,
) -> ArenaReport {
    assert!(concept < class.len(), "concept index out of range");
    let mut mistakes = 0;
    let mut last_mistake = None;
    for session in 0..sessions {
        let challenge = rng.bytes(challenge_len);
        let responses: Vec<Vec<u8>> =
            (0..class.len()).map(|h| class.respond(h, &challenge)).collect();
        let truth = responses[concept].clone();
        let prediction = policy.predict(&responses);
        if prediction != truth {
            mistakes += 1;
            last_mistake = Some(session);
        }
        let correct: Vec<bool> = responses.iter().map(|r| *r == truth).collect();
        policy.update(&responses, &correct);
    }
    ArenaReport { sessions, mistakes, last_mistake }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ThresholdClass, TransformClass};
    use crate::policy::{EnumerationPolicy, HalvingPolicy, WeightedMajorityPolicy};
    use goc_goals::transmission::Transform;

    fn transform_class(n: usize) -> TransformClass {
        TransformClass::new((0..n).map(|i| Transform::Table(i as u64)).collect())
    }

    #[test]
    fn enumeration_converges_with_linear_mistakes() {
        let class = transform_class(12);
        let concept = 9;
        let mut policy = EnumerationPolicy::new(class.len());
        let mut rng = GocRng::seed_from_u64(1);
        let report = run_arena(&class, concept, &mut policy, 100, 4, &mut rng);
        assert!(report.converged(), "{report:?}");
        // Distinct tables almost surely disagree on random 4-byte
        // challenges, so every hypothesis before the concept errs once.
        assert_eq!(report.mistakes, concept as u64);
    }

    #[test]
    fn halving_converges_with_log_mistakes() {
        let class = transform_class(64);
        let mut policy = HalvingPolicy::new(class.len());
        let mut rng = GocRng::seed_from_u64(2);
        let report = run_arena(&class, 63, &mut policy, 100, 4, &mut rng);
        assert!(report.converged());
        assert!(report.mistakes <= 7, "expected ≤ log2(64)+1, got {}", report.mistakes);
    }

    #[test]
    fn halving_beats_enumeration_on_every_concept() {
        let class = transform_class(16);
        for concept in [3usize, 8, 15] {
            let rng = GocRng::seed_from_u64(3 + concept as u64);
            let mut e = EnumerationPolicy::new(class.len());
            let re = run_arena(&class, concept, &mut e, 80, 4, &mut rng.fork(0));
            let mut h = HalvingPolicy::new(class.len());
            let rh = run_arena(&class, concept, &mut h, 80, 4, &mut rng.fork(1));
            assert!(
                rh.mistakes <= re.mistakes,
                "concept {concept}: halving {} vs enumeration {}",
                rh.mistakes,
                re.mistakes
            );
        }
    }

    #[test]
    fn weighted_majority_matches_halving_on_clean_data() {
        let class = transform_class(32);
        let mut policy = WeightedMajorityPolicy::new(class.len(), 0.5);
        let mut rng = GocRng::seed_from_u64(4);
        let report = run_arena(&class, 20, &mut policy, 100, 4, &mut rng);
        assert!(report.converged());
        assert!(report.mistakes <= 8, "mistakes = {}", report.mistakes);
    }

    #[test]
    fn threshold_class_halving_demo() {
        let class = ThresholdClass::evenly_spaced(128);
        let mut policy = HalvingPolicy::new(class.len());
        let mut rng = GocRng::seed_from_u64(5);
        let report = run_arena(&class, 100, &mut policy, 400, 1, &mut rng);
        assert!(report.converged());
        assert!(report.mistakes <= 8, "mistakes = {}", report.mistakes);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_concept_panics() {
        let class = transform_class(4);
        let mut policy = EnumerationPolicy::new(4);
        let mut rng = GocRng::seed_from_u64(6);
        let _ = run_arena(&class, 4, &mut policy, 10, 2, &mut rng);
    }

    #[test]
    fn report_convergence_logic() {
        let r = ArenaReport { sessions: 10, mistakes: 0, last_mistake: None };
        assert!(r.converged());
        let r = ArenaReport { sessions: 10, mistakes: 1, last_mistake: Some(9) };
        assert!(!r.converged());
        let r = ArenaReport { sessions: 10, mistakes: 1, last_mistake: Some(5) };
        assert!(r.converged());
    }
}
