//! Property tests for goc-core invariants: schedules, messages, randomness,
//! sensing combinators and the execution engine.

use goc_core::enumeration::{LinearSchedule, TriangularSchedule};
use goc_core::msg::Message;
use goc_core::prelude::*;
use goc_core::sensing::{Counted, Deadline, Grace, Indication, Patience, Sensing};
use goc_core::toy;
use goc_core::universal::{LevinSchedule, RoundRobinDoubling};
use goc_core::view::ViewEvent;
use proptest::prelude::*;

proptest! {
    /// Triangular schedules visit every index below the bound infinitely
    /// often: within any window of n(n+1) steps, each index appears.
    #[test]
    fn triangular_revisits_everyone(n in 1usize..12) {
        let window = n * (n + 1);
        let order: Vec<usize> = TriangularSchedule::bounded(n).take(2 * window).collect();
        for idx in 0..n {
            let first_half = order[..window].iter().filter(|&&i| i == idx).count();
            let second_half = order[window..].iter().filter(|&&i| i == idx).count();
            prop_assert!(first_half >= 1, "index {idx} missing from first window");
            prop_assert!(second_half >= 1, "index {idx} missing from second window");
        }
    }

    /// Triangular schedules never yield an out-of-range index.
    #[test]
    fn triangular_stays_in_range(n in 1usize..20, take in 0usize..500) {
        prop_assert!(TriangularSchedule::bounded(n).take(take).all(|i| i < n));
    }

    /// Linear schedules are monotone and saturate at the bound.
    #[test]
    fn linear_is_monotone(n in 1usize..20) {
        let order: Vec<usize> = LinearSchedule::bounded(n).take(3 * n).collect();
        prop_assert!(order.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*order.last().unwrap(), n - 1);
    }

    /// Levin budgets: candidate 0's cumulative budget is within a constant
    /// factor of the total spent, for any prefix of the schedule.
    #[test]
    fn levin_accounting(base in 1u64..32, steps in 1usize..300) {
        let slots: Vec<(usize, u64)> = LevinSchedule::new(base, None).take(steps).collect();
        let total: u64 = slots.iter().map(|(_, b)| *b).sum();
        let c0: u64 = slots.iter().filter(|(i, _)| *i == 0).map(|(_, b)| *b).sum();
        // Candidate 0 receives at least a 1/4 share asymptotically; allow
        // slack for phase boundaries.
        prop_assert!(4 * c0 + 4 * base * 4 >= total, "c0 {c0} vs total {total}");
    }

    /// Round-robin budgets: within one pass, everyone gets the same budget.
    #[test]
    fn round_robin_is_fair(base in 1u64..64, n in 1usize..16) {
        let slots: Vec<(usize, u64)> = RoundRobinDoubling::new(base, n).take(3 * n).collect();
        for pass in 0..3 {
            let budgets: Vec<u64> =
                slots[pass * n..(pass + 1) * n].iter().map(|(_, b)| *b).collect();
            prop_assert!(budgets.iter().all(|&b| b == budgets[0]));
        }
    }

    /// Messages: bytes round-trip through all constructors.
    #[test]
    fn message_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let m = Message::from_bytes(bytes.clone());
        prop_assert_eq!(m.as_bytes(), bytes.as_slice());
        prop_assert_eq!(m.len(), bytes.len());
        prop_assert_eq!(m.is_silence(), bytes.is_empty());
        prop_assert_eq!(m.clone().into_bytes(), bytes);
    }

    /// GocRng: forked streams with distinct ids differ; same ids agree.
    #[test]
    fn rng_fork_contract(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let root = GocRng::seed_from_u64(seed);
        let mut fa = root.fork(a);
        let mut fa2 = root.fork(a);
        prop_assert_eq!(fa.next_u64(), fa2.next_u64());
        if a != b {
            let mut fb = root.fork(b);
            // Not guaranteed distinct on a single draw, but 4 consecutive
            // collisions would be astronomically unlikely.
            let same = (0..4).filter(|_| fa.next_u64() == fb.next_u64()).count();
            prop_assert!(same < 4);
        }
    }

    /// Deadline fires within `timeout` rounds of silence, never sooner.
    #[test]
    fn deadline_fires_exactly_on_schedule(timeout in 1u64..32) {
        let inner = goc_core::sensing::FnSensing::new("never", (), |_s, _e: &ViewEvent| {
            Indication::Silent
        });
        let mut s = Deadline::new(inner, timeout);
        let ev = ViewEvent { round: 0, received: UserIn::default(), sent: UserOut::silence() };
        for i in 1..=3 * timeout {
            let ind = s.observe(&ev);
            if i % timeout == 0 {
                prop_assert_eq!(ind, Indication::Negative, "at round {}", i);
            } else {
                prop_assert_eq!(ind, Indication::Silent, "at round {}", i);
            }
        }
    }

    /// Grace + Patience composition never produces MORE negatives than the
    /// raw sensing.
    #[test]
    fn combinators_only_suppress(timeout in 1u64..8, grace in 0u64..8, patience in 1u64..4) {
        let mk_raw = || Deadline::new(
            goc_core::sensing::FnSensing::new("never", (), |_s, _e: &ViewEvent| Indication::Silent),
            timeout,
        );
        let mut raw = Counted::new(mk_raw());
        let mut wrapped = Counted::new(Patience::new(Grace::new(mk_raw(), grace), patience));
        let ev = ViewEvent { round: 0, received: UserIn::default(), sent: UserOut::silence() };
        for _ in 0..100 {
            let _ = raw.observe(&ev);
            let _ = wrapped.observe(&ev);
        }
        prop_assert!(wrapped.counts().1 <= raw.counts().1);
    }

    /// Execution horizon contract: run_for always executes exactly the
    /// requested number of rounds, regardless of user halting.
    #[test]
    fn run_for_executes_exact_horizon(horizon in 0u64..200, seed in any::<u64>()) {
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::new("hi")), // halts early
            rng,
        );
        let t = exec.run_for(horizon);
        prop_assert_eq!(t.rounds, horizon);
        prop_assert_eq!(t.world_states.len() as u64, horizon + 1);
        prop_assert_eq!(t.view.len() as u64, horizon);
    }

    /// The compact universal user never yields an out-of-class index.
    #[test]
    fn compact_universal_index_in_range(n in 1u8..12, rounds in 1u64..200) {
        let mut user = CompactUniversalUser::new(
            Box::new(toy::caesar_class("hi", n, true)),
            Box::new(goc_core::sensing::AlwaysNegative),
        );
        let mut rng = GocRng::seed_from_u64(0);
        for round in 0..rounds {
            let mut ctx = goc_core::strategy::StepCtx::new(round, &mut rng);
            let _ = goc_core::strategy::UserStrategy::step(&mut user, &mut ctx, &UserIn::default());
            prop_assert!(user.current_index() < n as usize);
        }
    }
}
