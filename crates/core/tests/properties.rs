//! Property tests for goc-core invariants: schedules, messages, randomness,
//! sensing combinators and the execution engine. Checked by the in-tree
//! `goc-testkit` harness — seeded, shrinking, zero external dependencies.

use goc_core::enumeration::{LinearSchedule, TriangularSchedule};
use goc_core::msg::Message;
use goc_core::prelude::*;
use goc_core::sensing::{Counted, Deadline, Grace, Indication, Patience, Sensing};
use goc_core::toy;
use goc_core::universal::{LevinSchedule, RoundRobinDoubling};
use goc_core::view::ViewEvent;
use goc_testkit::{check, gens, prop_assert, prop_assert_eq};

/// Triangular schedules visit every index below the bound infinitely
/// often: within any window of n(n+1) steps, each index appears.
#[test]
fn triangular_revisits_everyone() {
    check("triangular_revisits_everyone", gens::usize_in(1, 12), |&n| {
        let window = n * (n + 1);
        let order: Vec<usize> = TriangularSchedule::bounded(n).take(2 * window).collect();
        for idx in 0..n {
            let first_half = order[..window].iter().filter(|&&i| i == idx).count();
            let second_half = order[window..].iter().filter(|&&i| i == idx).count();
            prop_assert!(first_half >= 1, "index {idx} missing from first window");
            prop_assert!(second_half >= 1, "index {idx} missing from second window");
        }
        Ok(())
    });
}

/// Triangular schedules never yield an out-of-range index.
#[test]
fn triangular_stays_in_range() {
    check(
        "triangular_stays_in_range",
        gens::tuple2(gens::usize_in(1, 20), gens::usize_in(0, 500)),
        |&(n, take)| {
            prop_assert!(TriangularSchedule::bounded(n).take(take).all(|i| i < n));
            Ok(())
        },
    );
}

/// Linear schedules are monotone and saturate at the bound.
#[test]
fn linear_is_monotone() {
    check("linear_is_monotone", gens::usize_in(1, 20), |&n| {
        let order: Vec<usize> = LinearSchedule::bounded(n).take(3 * n).collect();
        prop_assert!(order.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*order.last().unwrap(), n - 1);
        Ok(())
    });
}

/// Levin budgets: candidate 0's cumulative budget is within a constant
/// factor of the total spent, for any prefix of the schedule.
#[test]
fn levin_accounting() {
    check(
        "levin_accounting",
        gens::tuple2(gens::u64_in(1, 32), gens::usize_in(1, 300)),
        |&(base, steps)| {
            let slots: Vec<(usize, u64)> = LevinSchedule::new(base, None).take(steps).collect();
            let total: u64 = slots.iter().map(|(_, b)| *b).sum();
            let c0: u64 = slots.iter().filter(|(i, _)| *i == 0).map(|(_, b)| *b).sum();
            // Candidate 0 receives at least a 1/4 share asymptotically; allow
            // slack for phase boundaries.
            prop_assert!(4 * c0 + 4 * base * 4 >= total, "c0 {c0} vs total {total}");
            Ok(())
        },
    );
}

/// Round-robin budgets: within one pass, everyone gets the same budget.
#[test]
fn round_robin_is_fair() {
    check(
        "round_robin_is_fair",
        gens::tuple2(gens::u64_in(1, 64), gens::usize_in(1, 16)),
        |&(base, n)| {
            let slots: Vec<(usize, u64)> = RoundRobinDoubling::new(base, n).take(3 * n).collect();
            for pass in 0..3 {
                let budgets: Vec<u64> =
                    slots[pass * n..(pass + 1) * n].iter().map(|(_, b)| *b).collect();
                prop_assert!(budgets.iter().all(|&b| b == budgets[0]));
            }
            Ok(())
        },
    );
}

/// Messages: bytes round-trip through all constructors.
#[test]
fn message_roundtrip() {
    check("message_roundtrip", gens::bytes(0, 128), |bytes: &Vec<u8>| {
        let m = Message::from_bytes(bytes.clone());
        prop_assert_eq!(m.as_bytes(), bytes.as_slice());
        prop_assert_eq!(m.len(), bytes.len());
        prop_assert_eq!(m.is_silence(), bytes.is_empty());
        prop_assert_eq!(m.clone().into_bytes(), bytes.clone());
        Ok(())
    });
}

/// GocRng: forked streams with distinct ids differ; same ids agree.
#[test]
fn rng_fork_contract() {
    check(
        "rng_fork_contract",
        gens::tuple3(gens::any_u64(), gens::any_u64(), gens::any_u64()),
        |&(seed, a, b)| {
            let root = GocRng::seed_from_u64(seed);
            let mut fa = root.fork(a);
            let mut fa2 = root.fork(a);
            prop_assert_eq!(fa.next_u64(), fa2.next_u64());
            if a != b {
                let mut fb = root.fork(b);
                // Not guaranteed distinct on a single draw, but 4 consecutive
                // collisions would be astronomically unlikely.
                let same = (0..4).filter(|_| fa.next_u64() == fb.next_u64()).count();
                prop_assert!(same < 4);
            }
            Ok(())
        },
    );
}

/// Deadline fires within `timeout` rounds of silence, never sooner.
#[test]
fn deadline_fires_exactly_on_schedule() {
    check("deadline_fires_exactly_on_schedule", gens::u64_in(1, 32), |&timeout| {
        let inner = goc_core::sensing::FnSensing::new("never", (), |_s, _e: &ViewEvent| {
            Indication::Silent
        });
        let mut s = Deadline::new(inner, timeout);
        let ev = ViewEvent { round: 0, received: UserIn::default(), sent: UserOut::silence() };
        for i in 1..=3 * timeout {
            let ind = s.observe(&ev);
            if i % timeout == 0 {
                prop_assert_eq!(ind, Indication::Negative, "at round {}", i);
            } else {
                prop_assert_eq!(ind, Indication::Silent, "at round {}", i);
            }
        }
        Ok(())
    });
}

/// Grace + Patience composition never produces MORE negatives than the
/// raw sensing.
#[test]
fn combinators_only_suppress() {
    check(
        "combinators_only_suppress",
        gens::tuple3(gens::u64_in(1, 8), gens::u64_in(0, 8), gens::u64_in(1, 4)),
        |&(timeout, grace, patience)| {
            let mk_raw = || {
                Deadline::new(
                    goc_core::sensing::FnSensing::new("never", (), |_s, _e: &ViewEvent| {
                        Indication::Silent
                    }),
                    timeout,
                )
            };
            let mut raw = Counted::new(mk_raw());
            let mut wrapped = Counted::new(Patience::new(Grace::new(mk_raw(), grace), patience));
            let ev = ViewEvent { round: 0, received: UserIn::default(), sent: UserOut::silence() };
            for _ in 0..100 {
                let _ = raw.observe(&ev);
                let _ = wrapped.observe(&ev);
            }
            prop_assert!(wrapped.counts().1 <= raw.counts().1);
            Ok(())
        },
    );
}

/// Execution horizon contract: run_for always executes exactly the
/// requested number of rounds, regardless of user halting.
#[test]
fn run_for_executes_exact_horizon() {
    check(
        "run_for_executes_exact_horizon",
        gens::tuple2(gens::u64_in(0, 200), gens::any_u64()),
        |&(horizon, seed)| {
            let goal = toy::MagicWordGoal::new("hi");
            let mut rng = GocRng::seed_from_u64(seed);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::default()),
                Box::new(toy::SayThrough::new("hi")), // halts early
                rng,
            );
            let t = exec.run_for(horizon);
            prop_assert_eq!(t.rounds, horizon);
            prop_assert_eq!(t.world_states.len() as u64, horizon + 1);
            prop_assert_eq!(t.view.len() as u64, horizon);
            Ok(())
        },
    );
}

/// The compact universal user never yields an out-of-class index.
#[test]
fn compact_universal_index_in_range() {
    check(
        "compact_universal_index_in_range",
        gens::tuple2(gens::u8_in(1, 12), gens::u64_in(1, 200)),
        |&(n, rounds)| {
            let mut user = CompactUniversalUser::new(
                Box::new(toy::caesar_class("hi", n, true)),
                Box::new(goc_core::sensing::AlwaysNegative),
            );
            let mut rng = GocRng::seed_from_u64(0);
            for round in 0..rounds {
                let mut ctx = goc_core::strategy::StepCtx::new(round, &mut rng);
                let _ = goc_core::strategy::UserStrategy::step(
                    &mut user,
                    &mut ctx,
                    &UserIn::default(),
                );
                prop_assert!(user.current_index() < n as usize);
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Zero-copy round loop: resume/replay, copy modes, fork checkpoints
// ---------------------------------------------------------------------------

/// Drives the toy compact system — magic-word goal, caesar class, shift
/// relay, the given fault schedule on both directions of the user↔server
/// link — under a revisit `policy` and a buffer [`CopyMode`], and returns
/// everything the outside can observe: the full user view and the compact
/// verdict.
fn compact_conquest(
    policy: ResumePolicy,
    mode: goc_core::buf::CopyMode,
    shift: u8,
    timeout: u64,
    faults: &FaultSchedule,
    horizon: u64,
) -> (Vec<ViewEvent>, bool, Option<u64>) {
    goc_core::buf::with_copy_mode(mode, || {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let user = CompactUniversalUser::with_policy(
            Box::new(toy::caesar_class("hi", 8, true)),
            Box::new(Deadline::new(toy::ack_sensing(), timeout)),
            policy,
        );
        let mut rng = GocRng::seed_from_u64(77);
        let mut exec = Execution::with_channels(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(shift)),
            Box::new(user),
            rng,
            Box::new(Scheduled::new(faults.clone())),
            Box::new(Scheduled::new(faults.clone())),
        );
        exec.reserve_rounds(horizon);
        for _ in 0..horizon {
            exec.step();
        }
        let t = exec.transcript_view();
        let v = evaluate_compact_view(&goal, t);
        (t.view.events().to_vec(), v.achieved(horizon / 8), v.last_bad_prefix)
    })
}

/// Resume-from-suspension is observationally equivalent to
/// replay-from-scratch for every (server shift × sensing patience × fault
/// schedule): candidates are suspended at whatever rounds the faults and the
/// deadline conspire to produce, and the two policies must still yield
/// byte-identical user views and identical verdicts. The pooled/unpooled
/// axis is folded into the same comparison, so a pool bug that leaked into
/// observable behaviour would also trip this property.
#[test]
fn resume_matches_replay_under_faults() {
    check(
        "resume_matches_replay_under_faults",
        gens::tuple3(
            gens::u8_in(0, 7),
            gens::u64_in(2, 12),
            gens::fault_schedule(200, 4, 64),
        ),
        |(shift, timeout, faults)| {
            let replay = compact_conquest(
                ResumePolicy::Replay,
                goc_core::buf::CopyMode::Unpooled,
                *shift,
                *timeout,
                faults,
                1_200,
            );
            let resume = compact_conquest(
                ResumePolicy::Resume,
                goc_core::buf::CopyMode::Pooled,
                *shift,
                *timeout,
                faults,
                1_200,
            );
            prop_assert_eq!(&replay.0, &resume.0, "user views must be byte-identical");
            prop_assert_eq!(replay.1, resume.1, "achievement must agree");
            prop_assert_eq!(replay.2, resume.2, "settle rounds must agree");
            Ok(())
        },
    );
}

/// All three [`CopyMode`]s — pooled COW, unpooled COW and the eager
/// value-semantics reproduction of the pre-zero-copy engine — are
/// observationally inert: same views, same verdicts.
#[test]
fn copy_modes_are_observationally_inert() {
    use goc_core::buf::CopyMode;
    check(
        "copy_modes_are_observationally_inert",
        gens::tuple2(gens::u8_in(0, 7), gens::bursty_schedule(150, 3, 20)),
        |(shift, faults)| {
            let pooled = compact_conquest(
                ResumePolicy::Resume, CopyMode::Pooled, *shift, 8, faults, 800,
            );
            for mode in [CopyMode::Unpooled, CopyMode::Eager] {
                let other = compact_conquest(
                    ResumePolicy::Resume, mode, *shift, 8, faults, 800,
                );
                prop_assert_eq!(&pooled.0, &other.0, "views differ under {:?}", mode);
                prop_assert_eq!(pooled.1, other.1);
                prop_assert_eq!(pooled.2, other.2);
            }
            Ok(())
        },
    );
}

/// `Execution::fork` is a transparent checkpoint: forking at an arbitrary
/// suspend point and carrying the fork to the horizon yields exactly the
/// run the original would have produced — and actually does produce, when
/// stepped alongside.
#[test]
fn fork_checkpoint_is_transparent() {
    check(
        "fork_checkpoint_is_transparent",
        gens::tuple3(
            gens::u8_in(0, 7),
            gens::u64_in(0, 300),
            gens::bounded_loss_schedule(100, 5),
        ),
        |(shift, suspend_at, faults)| {
            let horizon = 400u64;
            let build = || {
                let goal = toy::CompactMagicWordGoal::new("hi", 16);
                let user = toy::caesar_class("hi", 8, true)
                    .strategy(*shift as usize)
                    .expect("class has 8 strategies");
                let mut rng = GocRng::seed_from_u64(21);
                Execution::with_channels(
                    goal.spawn_world(&mut rng),
                    Box::new(toy::RelayServer::with_shift(*shift)),
                    user,
                    rng,
                    Box::new(Scheduled::new(faults.clone())),
                    Box::new(Scheduled::new(faults.clone())),
                )
            };
            // Arm 1: the uninterrupted reference run.
            let mut straight = build();
            for _ in 0..horizon {
                straight.step();
            }
            // Arm 2: run to the suspend point, fork, finish both sides.
            let mut original = build();
            let at = (*suspend_at).min(horizon);
            for _ in 0..at {
                original.step();
            }
            let mut forked = original.fork().expect("toy strategies are forkable");
            for _ in at..horizon {
                original.step();
                forked.step();
            }
            let reference = straight.transcript_view().view.events().to_vec();
            prop_assert_eq!(&reference, &original.transcript_view().view.events().to_vec());
            prop_assert_eq!(&reference, &forked.transcript_view().view.events().to_vec());
            Ok(())
        },
    );
}

/// Whole [`SuccessReport`]s are bit-identical across revisit policies *and*
/// across `GOC_THREADS` — the report a CI run diffs under
/// `GOC_RESUME=replay` vs `=resume` cannot depend on either knob.
#[test]
fn success_reports_survive_policy_and_thread_count() {
    use goc_core::harness::compact_success;
    use goc_core::par::with_thread_count;
    check(
        "success_reports_survive_policy_and_thread_count",
        gens::tuple2(gens::u64_in(4, 10), gens::u64_in(0, 1 << 20)),
        |&(timeout, seed)| {
            let goal = toy::CompactMagicWordGoal::new("hi", 16);
            let report = |policy: ResumePolicy, threads: usize| {
                with_thread_count(threads, || {
                    compact_success(
                        &goal,
                        &|| Box::new(toy::RelayServer::with_shift(3)),
                        &|| {
                            Box::new(CompactUniversalUser::with_policy(
                                Box::new(toy::caesar_class("hi", 8, true)),
                                Box::new(Deadline::new(toy::ack_sensing(), timeout)),
                                policy,
                            ))
                        },
                        4,
                        1_200,
                        150,
                        seed,
                    )
                })
            };
            let baseline = report(ResumePolicy::Replay, 1);
            for (policy, threads) in [
                (ResumePolicy::Replay, 4),
                (ResumePolicy::Resume, 1),
                (ResumePolicy::Resume, 4),
            ] {
                prop_assert_eq!(
                    &baseline,
                    &report(policy, threads),
                    "report drifted under {:?} at {} threads",
                    policy,
                    threads
                );
            }
            Ok(())
        },
    );
}
