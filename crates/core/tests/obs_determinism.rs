//! Determinism of the observability layer (`goc_core::obs`).
//!
//! Two properties, both required by the trace-export contract:
//!
//! 1. **Thread-count invariance.** With recording on, the record stream
//!    and every deterministic metric total produced by a workload are
//!    bit-identical under `GOC_THREADS=1` and `=4` — `par_map` flushes
//!    per-task buffers in index order, and deterministic metrics depend
//!    only on the workload. (Process-scoped metrics — pool and VM-cache
//!    effectiveness — are exactly the ones allowed to differ, which is
//!    why `obs::flush_metrics` exports only the deterministic scope.)
//! 2. **Inertness when disabled.** With recording off, the workload's
//!    outputs are identical to a recorded run's, and no metric moves.
//!
//! The obs registry and capture counter are process-global, so every test
//! in this binary serializes on one lock: a concurrent capture in another
//! test would enable recording globally and bump shared counters
//! mid-measurement.

use goc_core::harness::{compact_success, finite_success, SuccessReport};
use goc_core::obs::{self, Record, Scope};
use goc_core::par::with_thread_count;
use goc_core::sensing::Deadline;
use goc_core::strategy::{BoxedServer, BoxedUser};
use goc_core::toy;
use goc_core::universal::{CompactUniversalUser, LevinUniversalUser};
use goc_testkit::{check, gens, prop_assert, prop_assert_eq};
use std::sync::{Mutex, PoisonError};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A workload rich enough to touch every instrumented subsystem the core
/// crate owns: parallel trials (task buffers), `exec.run`/`run_for`
/// spans, and universal-user candidate lifecycle events.
fn workload(seed: u64, trials: u32) -> (SuccessReport, SuccessReport) {
    let finite_goal = toy::MagicWordGoal::new("hi");
    let finite_server = || Box::new(toy::RelayServer::with_shift(2)) as BoxedServer;
    let finite_user = || {
        Box::new(LevinUniversalUser::new(
            Box::new(toy::caesar_class("hi", 8, false)),
            Box::new(toy::ack_sensing()),
            8,
        )) as BoxedUser
    };
    let finite = finite_success(&finite_goal, &finite_server, &finite_user, trials, 8_000, seed);

    let compact_goal = toy::CompactMagicWordGoal::new("hi", 16);
    let compact_server = || Box::new(toy::RelayServer::with_shift(3)) as BoxedServer;
    let compact_user = || {
        Box::new(CompactUniversalUser::new(
            Box::new(toy::caesar_class("hi", 8, true)),
            Box::new(Deadline::new(toy::ack_sensing(), 8)),
        )) as BoxedUser
    };
    let compact =
        compact_success(&compact_goal, &compact_server, &compact_user, trials, 2_000, 400, seed);
    (finite, compact)
}

/// Per-name difference `after - before` of two metric snapshots
/// (counters and histogram fields are monotone, so this is well-defined;
/// names absent from `before` count from zero).
fn delta(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    let old: std::collections::BTreeMap<&str, u64> =
        before.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    after
        .iter()
        .map(|(n, v)| (n.clone(), v - old.get(n.as_str()).copied().unwrap_or(0)))
        .collect()
}

#[test]
fn record_stream_and_deterministic_metrics_are_thread_count_invariant() {
    let _g = serial();
    check(
        "obs_stream_thread_count_invariant",
        gens::tuple2(gens::any_u64(), gens::u64_in(2, 5)),
        |&(seed, trials)| {
            let run = |threads: usize| {
                let before = obs::metrics_snapshot(Some(Scope::Deterministic));
                let (reports, records) =
                    obs::capture(|| with_thread_count(threads, || workload(seed, trials as u32)));
                let after = obs::metrics_snapshot(Some(Scope::Deterministic));
                (reports, records, delta(&before, &after))
            };
            let (rep1, rec1, met1) = run(1);
            let (rep4, rec4, met4) = run(4);
            prop_assert_eq!(&rep1, &rep4, "reports differ at seed {seed}");
            prop_assert_eq!(&rec1, &rec4, "record streams differ at seed {seed}");
            prop_assert_eq!(&met1, &met4, "deterministic metric deltas differ at seed {seed}");

            // The stream actually contains the instrumentation: per-trial
            // task markers in index order, spans, and switch events.
            let tasks: Vec<u64> = rec1
                .iter()
                .filter_map(|r| match r {
                    Record::Task { index } => Some(*index),
                    _ => None,
                })
                .collect();
            // Two fan-outs (finite then compact), `trials` tasks each, all
            // of which record spans — so the markers are exactly two
            // index-ordered segments.
            let expected: Vec<u64> =
                (0..trials).chain(0..trials).collect();
            prop_assert_eq!(&tasks, &expected, "task markers not in per-fan-out index order");
            prop_assert!(
                rec1.iter().any(|r| matches!(r, Record::Enter { name: "exec.run", .. })),
                "missing exec.run span"
            );
            prop_assert!(
                rec1.iter().any(|r| matches!(r, Record::Enter { name: "harness.trial", .. })),
                "missing harness.trial span"
            );
            prop_assert!(
                rec1.iter().any(|r| matches!(r, Record::Event { name: "universal.spawn", .. })),
                "missing candidate lifecycle events"
            );

            // Rendered lines (what GOC_TRACE would write) are identical
            // too — the stronger, byte-level form of the same property.
            let lines1: Vec<String> = rec1.iter().map(obs::render_record).collect();
            let lines4: Vec<String> = rec4.iter().map(obs::render_record).collect();
            prop_assert_eq!(&lines1, &lines4);
            Ok(())
        },
    );
}

#[test]
fn disabled_recorder_is_inert() {
    let _g = serial();
    // GOC_TRACE would turn recording on process-wide; this test's premise
    // is the default-off state.
    if std::env::var("GOC_TRACE").is_ok() {
        return;
    }
    check(
        "obs_disabled_is_inert",
        gens::tuple2(gens::any_u64(), gens::u64_in(1, 4)),
        |&(seed, trials)| {
            prop_assert!(!obs::enabled(), "recorder must be off outside captures");
            let before = obs::metrics_snapshot(None);
            let plain = with_thread_count(4, || workload(seed, trials as u32));
            let after = obs::metrics_snapshot(None);
            prop_assert!(
                delta(&before, &after).iter().all(|(_, d)| *d == 0),
                "metrics moved while disabled"
            );
            // Recording changes no observable output: the same workload
            // under capture yields bit-identical reports.
            let (recorded, records) =
                obs::capture(|| with_thread_count(4, || workload(seed, trials as u32)));
            prop_assert_eq!(&plain, &recorded, "recording perturbed the workload at seed {seed}");
            prop_assert!(!records.is_empty(), "capture recorded nothing");
            Ok(())
        },
    );
}
