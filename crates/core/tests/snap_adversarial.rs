//! Adversarial decode totality for `goc_core::snap`.
//!
//! A snapshot file crosses a trust boundary: `goc resume --snap` feeds
//! whatever bytes it finds on disk straight into [`Execution::restore`].
//! These tests subject real snapshots to truncation, bit flips, byte
//! stomps, chunk splices and outright garbage, and assert the one contract
//! that matters: **decoding is total**. Every input either restores cleanly
//! or returns a [`SnapError`] — never a panic, never an abort, never an
//! attacker-chosen allocation. When a corrupted buffer happens to decode
//! (e.g. a flip inside an opaque message payload), the restored execution
//! must still be steppable: corruption may change the session, but it must
//! not produce a value that later violates the engine's invariants.

use goc_core::sensing::Deadline;
use goc_core::toy;
use goc_core::universal::ResumePolicy;
use goc_core::prelude::*;
use goc_testkit::{check, gens, prop_assert};

const WORD: &str = "xyzzy";

/// The two corpus scenarios: one per universal-user flavour, both stepped
/// far enough that schedules, transcripts and candidate state are non-trivial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Corpus {
    Finite,
    Compact,
}

fn build(corpus: Corpus, seed: u64) -> Execution<toy::MagicWorld> {
    let mut rng = GocRng::seed_from_u64(seed);
    match corpus {
        Corpus::Finite => {
            let goal = toy::MagicWordGoal::new(WORD);
            let world = goal.spawn_world(&mut rng);
            let user = LevinUniversalUser::round_robin(
                Box::new(toy::caesar_class(WORD, 16, false)),
                Box::new(toy::ack_sensing()),
                8,
            );
            let server = Box::new(toy::RelayServer::with_shift(5));
            Execution::new(world, server, Box::new(user), rng)
        }
        Corpus::Compact => {
            let goal = toy::CompactMagicWordGoal::new(WORD, 16);
            let world = goal.spawn_world(&mut rng);
            let user = CompactUniversalUser::with_policy(
                Box::new(toy::caesar_class(WORD, 16, true)),
                Box::new(Deadline::new(toy::ack_sensing(), 16)),
                ResumePolicy::Resume,
            );
            let server = Box::new(toy::RelayServer::with_shift(5));
            Execution::new(world, server, Box::new(user), rng)
        }
    }
}

/// A real snapshot taken mid-run: every party block populated.
fn snapshot(corpus: Corpus) -> Vec<u8> {
    let mut exec = build(corpus, 3);
    for _ in 0..48 {
        exec.step();
    }
    exec.save_to_vec().expect("honest snapshot must encode")
}

/// The totality oracle: restoring `bytes` into a fresh skeleton must not
/// panic, and on the rare accidental success the execution must still run.
fn restore_is_total(corpus: Corpus, bytes: &[u8]) -> Result<bool, String> {
    let mut exec = build(corpus, 3);
    match exec.restore(bytes) {
        Err(_) => Ok(false),
        Ok(()) => {
            // Corruption slipped past every check (possible: opaque
            // payload bytes). The restored state must still be a valid
            // execution — step it and re-serialize.
            for _ in 0..4 {
                exec.step();
            }
            exec.save_to_vec().map_err(|e| format!("re-save failed: {e}"))?;
            Ok(true)
        }
    }
}

/// Every strict prefix of a snapshot fails to decode: the format's length
/// prefixes and trailing-byte check leave no truncation undetected.
#[test]
fn truncations_always_err() {
    for corpus in [Corpus::Finite, Corpus::Compact] {
        let full = snapshot(corpus);
        assert!(full.len() > 64, "{corpus:?}: implausibly small snapshot");
        for len in 0..full.len() {
            let mut exec = build(corpus, 3);
            assert!(
                exec.restore(&full[..len]).is_err(),
                "{corpus:?}: {len}-byte prefix of a {}-byte snapshot decoded",
                full.len()
            );
        }
    }
}

/// Stomping any single byte to `0xFF` is survivable. This deterministic
/// sweep hits every length prefix, count, tag and enum discriminant in the
/// format — the places where a hostile value once meant an unbounded
/// allocation or an overflowing shift.
#[test]
fn byte_stomps_decode_totally() {
    for corpus in [Corpus::Finite, Corpus::Compact] {
        let full = snapshot(corpus);
        for i in 0..full.len() {
            if full[i] == 0xFF {
                continue;
            }
            let mut hostile = full.clone();
            hostile[i] = 0xFF;
            restore_is_total(corpus, &hostile)
                .unwrap_or_else(|e| panic!("{corpus:?}: stomp at byte {i}: {e}"));
        }
    }
}

/// Random single-bit flips are survivable (property-tested with shrinking:
/// a failure reports the minimal flip position).
#[test]
fn bit_flips_decode_totally() {
    let finite = snapshot(Corpus::Finite);
    let compact = snapshot(Corpus::Compact);
    check(
        "snap_bit_flip_totality",
        gens::tuple3(
            gens::usize_in(0, 1),
            gens::usize_in(0, finite.len().max(compact.len()) - 1),
            gens::u8_in(0, 7),
        ),
        |&(which, byte, bit): &(usize, usize, u8)| {
            let (corpus, base) = match which {
                0 => (Corpus::Finite, &finite),
                _ => (Corpus::Compact, &compact),
            };
            let byte = byte % base.len();
            let mut hostile = base.clone();
            hostile[byte] ^= 1 << bit;
            restore_is_total(corpus, &hostile)
                .map_err(goc_testkit::CaseError::fail)?;
            Ok(())
        },
    );
}

/// Overwriting a random window with random bytes (a torn write, a bad
/// sector) is survivable.
#[test]
fn garbled_windows_decode_totally() {
    let base = snapshot(Corpus::Finite);
    let len = base.len();
    check(
        "snap_garble_totality",
        gens::tuple3(
            gens::usize_in(0, len - 1),
            gens::bytes(1, 64),
            gens::usize_in(0, 1),
        ),
        |&(start, ref junk, _): &(usize, Vec<u8>, usize)| {
            let mut hostile = base.clone();
            for (o, &b) in junk.iter().enumerate() {
                if start + o < hostile.len() {
                    hostile[start + o] = b;
                }
            }
            restore_is_total(Corpus::Finite, &hostile)
                .map_err(goc_testkit::CaseError::fail)?;
            Ok(())
        },
    );
}

/// Splicing two chunks of a valid snapshot (a corrupted copy, a bad merge)
/// is survivable.
#[test]
fn chunk_splices_decode_totally() {
    let base = snapshot(Corpus::Compact);
    let len = base.len();
    check(
        "snap_splice_totality",
        gens::tuple3(
            gens::usize_in(0, len - 1),
            gens::usize_in(0, len - 1),
            gens::usize_in(1, 48),
        ),
        |&(a, b, span): &(usize, usize, usize)| {
            let mut hostile = base.clone();
            for o in 0..span {
                let (x, y) = (a + o, b + o);
                if x < hostile.len() && y < hostile.len() {
                    hostile.swap(x, y);
                }
            }
            restore_is_total(Corpus::Compact, &hostile)
                .map_err(goc_testkit::CaseError::fail)?;
            Ok(())
        },
    );
}

/// Pure random garbage never decodes (the magic and party-name integrity
/// tags see to it) and never panics.
#[test]
fn random_garbage_always_errs() {
    check(
        "snap_garbage_totality",
        gens::bytes(0, 512),
        |junk: &Vec<u8>| {
            let mut exec = build(Corpus::Finite, 3);
            prop_assert!(
                exec.restore(junk).is_err(),
                "{}-byte random buffer decoded as a snapshot",
                junk.len()
            );
            Ok(())
        },
    );
}

/// A valid header followed by garbage still fails: structural validation
/// does not stop at the magic number.
#[test]
fn valid_header_with_garbage_body_errs() {
    let real = snapshot(Corpus::Finite);
    check(
        "snap_header_garbage_totality",
        gens::bytes(0, 256),
        |junk: &Vec<u8>| {
            let mut hostile = real[..6].to_vec(); // magic + version
            hostile.extend_from_slice(junk);
            let mut exec = build(Corpus::Finite, 3);
            prop_assert!(
                exec.restore(&hostile).is_err(),
                "header + {}-byte garbage body decoded",
                junk.len()
            );
            Ok(())
        },
    );
}

/// Restoring a snapshot into a skeleton of the *other* scenario fails with
/// an integrity error, not a scrambled session.
#[test]
fn cross_scenario_restore_errs() {
    let finite = snapshot(Corpus::Finite);
    let compact = snapshot(Corpus::Compact);
    let mut as_compact = build(Corpus::Compact, 3);
    assert!(as_compact.restore(&finite).is_err(), "finite snapshot restored into compact skeleton");
    let mut as_finite = build(Corpus::Finite, 3);
    assert!(as_finite.restore(&compact).is_err(), "compact snapshot restored into finite skeleton");
}

/// A declared length far past the end of the buffer is rejected up front —
/// the reader never allocates what the attacker declares.
#[test]
fn hostile_declared_lengths_are_gated() {
    let real = snapshot(Corpus::Finite);
    // Stamp a maximal little-endian u64 over every 8-byte window in the
    // first 256 bytes; whichever of those windows are length or count
    // prefixes now declare ~2^64 elements.
    for start in 0..real.len().min(256) {
        let mut hostile = real.clone();
        let end = (start + 8).min(hostile.len());
        for b in &mut hostile[start..end] {
            *b = 0xFF;
        }
        let mut exec = build(Corpus::Finite, 3);
        let _ = exec.restore(&hostile); // must return, not OOM
    }
}
