//! Visitation schedules for the universal constructions.

use crate::enumeration::{LinearSchedule, TriangularSchedule};
use crate::snap::{SnapError, SnapReader, SnapState, SnapWriter};

/// The strategy-visitation schedule of the compact universal user.
///
/// [`Schedule::Triangular`] is the correct construction (every strategy
/// recurs infinitely often). [`Schedule::Linear`] is the naive one-pass
/// order kept for ablation E8: it can permanently strand the user if a
/// viable strategy was abandoned on a spurious negative indication.
#[derive(Clone, Debug)]
pub enum Schedule {
    /// 0; 0, 1; 0, 1, 2; … — every index recurs infinitely often.
    Triangular(TriangularSchedule),
    /// 0, 1, 2, … — each index visited once (saturating for finite classes).
    Linear(LinearSchedule),
}

impl Schedule {
    /// The default (correct) schedule for a class of `len` strategies
    /// (`None` = infinite class).
    ///
    /// # Panics
    ///
    /// Panics if `len == Some(0)`.
    pub fn triangular(len: Option<usize>) -> Self {
        match len {
            Some(n) => Schedule::Triangular(TriangularSchedule::bounded(n)),
            None => Schedule::Triangular(TriangularSchedule::unbounded()),
        }
    }

    /// The naive one-pass schedule (ablation E8).
    ///
    /// # Panics
    ///
    /// Panics if `len == Some(0)`.
    pub fn linear(len: Option<usize>) -> Self {
        match len {
            Some(n) => Schedule::Linear(LinearSchedule::bounded(n)),
            None => Schedule::Linear(LinearSchedule::unbounded()),
        }
    }
}

impl Iterator for Schedule {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Schedule::Triangular(s) => s.next(),
            Schedule::Linear(s) => s.next(),
        }
    }
}

impl SnapState for Schedule {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        match self {
            Schedule::Triangular(s) => {
                w.u8(0);
                s.encode(w);
            }
            Schedule::Linear(s) => {
                w.u8(1);
                s.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("schedule tag")? {
            0 => Ok(Schedule::Triangular(TriangularSchedule::decode(r)?)),
            1 => Ok(Schedule::Linear(LinearSchedule::decode(r)?)),
            found => Err(SnapError::BadTag { context: "schedule tag", found }),
        }
    }
}

/// Levin's dovetailing schedule of `(candidate index, round budget)` slots.
///
/// In phase *k* (k = 0, 1, 2, …) candidate *i* ∈ {0, …, k} receives a budget
/// of `base × 2^(k − i)` rounds, so the total work spent on candidate *i*
/// before phase *k* completes is within a constant factor of the work spent
/// on candidate 0 — the classic "universal search" accounting that makes the
/// slowdown for the (unknown) right candidate a constant factor per index.
///
/// # Examples
///
/// ```
/// use goc_core::universal::LevinSchedule;
///
/// let slots: Vec<(usize, u64)> = LevinSchedule::new(1, None).take(6).collect();
/// assert_eq!(slots, vec![(0, 1), (0, 2), (1, 1), (0, 4), (1, 2), (2, 1)]);
/// ```
#[derive(Clone, Debug)]
pub struct LevinSchedule {
    base: u64,
    phase: u32,
    pos: u32,
    bound: Option<usize>,
}

impl LevinSchedule {
    /// A schedule with budget unit `base` over a class of `bound` strategies
    /// (`None` = infinite).
    ///
    /// # Panics
    ///
    /// Panics if `base == 0` or `bound == Some(0)`.
    pub fn new(base: u64, bound: Option<usize>) -> Self {
        assert!(base > 0, "LevinSchedule requires a positive base budget");
        assert!(bound != Some(0), "LevinSchedule requires a non-empty class");
        LevinSchedule { base, phase: 0, pos: 0, bound }
    }

    /// Budget for candidate `i` in phase `k` (saturating).
    fn budget(&self, k: u32, i: u32) -> u64 {
        let exp = (k - i).min(62);
        self.base.saturating_mul(1u64 << exp)
    }
}

impl Iterator for LevinSchedule {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        loop {
            if self.pos > self.phase {
                self.phase = self.phase.saturating_add(1);
                self.pos = 0;
            }
            let i = self.pos;
            self.pos = self.pos.saturating_add(1);
            if let Some(n) = self.bound {
                if (i as usize) >= n {
                    // Finite class: every remaining slot of this phase names
                    // a non-existent candidate too, so advance the phase
                    // directly — the budgets of the real candidates still
                    // grow, and the cursor stays total even for decoded
                    // cursors with absurd phase values.
                    self.phase = self.phase.saturating_add(1);
                    self.pos = 0;
                    continue;
                }
            }
            return Some((i as usize, self.budget(self.phase, i)));
        }
    }
}

impl SnapState for LevinSchedule {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u64(self.base);
        w.u32(self.phase);
        w.u32(self.pos);
        self.bound.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let base = r.u64("levin base")?;
        let phase = r.u32("levin phase")?;
        let pos = r.u32("levin pos")?;
        let bound = Option::<usize>::decode(r)?;
        if base == 0 || bound == Some(0) {
            // The constructor's invariants: base 0 degenerates every budget,
            // an empty bound makes `next` spin forever.
            return Err(SnapError::Malformed { context: "levin schedule" });
        }
        // A live cursor keeps `pos ≤ phase + 1` (the wrap fires as soon as
        // the position passes the phase) and, when bounded, `pos ≤ n`
        // (every yield has `i < n`; the skip resets to 0).
        let honest = u64::from(pos) <= u64::from(phase) + 1
            && bound.map_or(true, |n| pos as usize <= n);
        if !honest {
            return Err(SnapError::Malformed { context: "levin cursor" });
        }
        Ok(LevinSchedule { base, phase, pos, bound })
    }
}

/// Round-robin with doubling budgets: pass *p* gives **every** candidate a
/// budget of `base × 2^p` rounds.
///
/// For a **finite** class of n strategies this improves on the classic
/// Levin weighting: if candidate *i* succeeds within *b* rounds, the total
/// cost is O(n · b) instead of O(2^i · b) — linear in the class size and
/// independent of where the candidate sits in the enumeration. (For infinite
/// classes a pass never ends, so this schedule requires `Some(n)`.)
///
/// # Examples
///
/// ```
/// use goc_core::universal::RoundRobinDoubling;
///
/// let slots: Vec<(usize, u64)> = RoundRobinDoubling::new(2, 3).take(7).collect();
/// assert_eq!(slots, vec![(0, 2), (1, 2), (2, 2), (0, 4), (1, 4), (2, 4), (0, 8)]);
/// ```
#[derive(Clone, Debug)]
pub struct RoundRobinDoubling {
    base: u64,
    n: usize,
    pos: usize,
    pass: u32,
}

impl RoundRobinDoubling {
    /// A round-robin schedule over `n` candidates with starting budget
    /// `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0` or `n == 0`.
    pub fn new(base: u64, n: usize) -> Self {
        assert!(base > 0, "RoundRobinDoubling requires a positive base budget");
        assert!(n > 0, "RoundRobinDoubling requires a non-empty class");
        RoundRobinDoubling { base, n, pos: 0, pass: 0 }
    }
}

impl Iterator for RoundRobinDoubling {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        if self.pos == self.n {
            self.pos = 0;
            self.pass = self.pass.saturating_add(1).min(62);
        }
        let i = self.pos;
        self.pos = self.pos.saturating_add(1);
        Some((i, self.base.saturating_mul(1u64 << self.pass)))
    }
}

impl SnapState for RoundRobinDoubling {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u64(self.base);
        w.usize(self.n);
        w.usize(self.pos);
        w.u32(self.pass);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let base = r.u64("round-robin base")?;
        let n = r.usize("round-robin n")?;
        let pos = r.usize("round-robin pos")?;
        let pass = r.u32("round-robin pass")?;
        // `pass > 62` can never be reached (the doubling saturates there),
        // and `1u64 << pass` would panic on it — a hostile snapshot must
        // not pick the shift amount.
        if base == 0 || n == 0 || pos > n || pass > 62 {
            return Err(SnapError::Malformed { context: "round-robin schedule" });
        }
        Ok(RoundRobinDoubling { base, n, pos, pass })
    }
}

/// The budget schedule driving the finite-goal universal user.
#[derive(Clone, Debug)]
pub enum BudgetSchedule {
    /// Classic Levin weighting (works for infinite classes; overhead 2^i for
    /// candidate i).
    Levin(LevinSchedule),
    /// Round-robin doubling (finite classes; overhead linear in class size).
    RoundRobin(RoundRobinDoubling),
}

impl BudgetSchedule {
    /// Classic Levin weighting.
    pub fn levin(base: u64, bound: Option<usize>) -> Self {
        BudgetSchedule::Levin(LevinSchedule::new(base, bound))
    }

    /// Round-robin doubling over a finite class of `n` strategies.
    pub fn round_robin(base: u64, n: usize) -> Self {
        BudgetSchedule::RoundRobin(RoundRobinDoubling::new(base, n))
    }
}

impl SnapState for BudgetSchedule {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        match self {
            BudgetSchedule::Levin(s) => {
                w.u8(0);
                s.encode(w);
            }
            BudgetSchedule::RoundRobin(s) => {
                w.u8(1);
                s.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("budget schedule tag")? {
            0 => Ok(BudgetSchedule::Levin(LevinSchedule::decode(r)?)),
            1 => Ok(BudgetSchedule::RoundRobin(RoundRobinDoubling::decode(r)?)),
            found => Err(SnapError::BadTag { context: "budget schedule tag", found }),
        }
    }
}

impl Iterator for BudgetSchedule {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        match self {
            BudgetSchedule::Levin(s) => s.next(),
            BudgetSchedule::RoundRobin(s) => s.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_budgets_double_per_pass() {
        let slots: Vec<(usize, u64)> = RoundRobinDoubling::new(5, 2).take(6).collect();
        assert_eq!(slots, vec![(0, 5), (1, 5), (0, 10), (1, 10), (0, 20), (1, 20)]);
    }

    #[test]
    fn round_robin_total_cost_linear_in_class() {
        // Cost to give candidate i its first slot is (i + 1) · base — linear,
        // versus the Levin schedule's ~2^i · base.
        let n = 100;
        let mut cost = 0u64;
        for (idx, budget) in RoundRobinDoubling::new(4, n) {
            if idx == n - 1 {
                break;
            }
            cost += budget;
        }
        assert_eq!(cost, 4 * (n as u64 - 1));
    }

    #[test]
    #[should_panic(expected = "non-empty class")]
    fn round_robin_empty_panics() {
        let _ = RoundRobinDoubling::new(1, 0);
    }

    #[test]
    fn budget_schedule_dispatches() {
        let mut l = BudgetSchedule::levin(1, None);
        assert_eq!(l.next(), Some((0, 1)));
        let mut r = BudgetSchedule::round_robin(1, 3);
        assert_eq!(r.next(), Some((0, 1)));
        assert_eq!(r.next(), Some((1, 1)));
    }

    #[test]
    fn triangular_schedule_wraps() {
        let s = Schedule::triangular(Some(2));
        let order: Vec<usize> = s.take(7).collect();
        assert_eq!(order, vec![0, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn linear_schedule_saturates() {
        let s = Schedule::linear(Some(2));
        let order: Vec<usize> = s.take(5).collect();
        assert_eq!(order, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn unbounded_schedules() {
        let t: Vec<usize> = Schedule::triangular(None).take(6).collect();
        assert_eq!(t, vec![0, 0, 1, 0, 1, 2]);
        let l: Vec<usize> = Schedule::linear(None).take(4).collect();
        assert_eq!(l, vec![0, 1, 2, 3]);
    }

    #[test]
    fn levin_budgets_double_per_phase() {
        let slots: Vec<(usize, u64)> = LevinSchedule::new(10, None).take(10).collect();
        assert_eq!(
            slots,
            vec![
                (0, 10),
                (0, 20),
                (1, 10),
                (0, 40),
                (1, 20),
                (2, 10),
                (0, 80),
                (1, 40),
                (2, 20),
                (3, 10)
            ]
        );
    }

    #[test]
    fn levin_bounded_skips_missing_candidates() {
        let slots: Vec<(usize, u64)> = LevinSchedule::new(1, Some(2)).take(7).collect();
        assert_eq!(
            slots,
            vec![(0, 1), (0, 2), (1, 1), (0, 4), (1, 2), (0, 8), (1, 4)]
        );
    }

    #[test]
    fn levin_total_work_for_early_candidate_dominates() {
        // Across the first phases, candidate 0 receives at least as much
        // budget as any other candidate — Levin's accounting invariant.
        let slots: Vec<(usize, u64)> = LevinSchedule::new(1, None).take(100).collect();
        let total = |c: usize| -> u64 {
            slots.iter().filter(|(i, _)| *i == c).map(|(_, b)| *b).sum()
        };
        assert!(total(0) >= total(1));
        assert!(total(1) >= total(2));
    }

    #[test]
    #[should_panic(expected = "positive base")]
    fn levin_zero_base_panics() {
        let _ = LevinSchedule::new(0, None);
    }

    #[test]
    fn levin_budget_saturates_at_large_phase() {
        let s = LevinSchedule::new(u64::MAX / 2, None);
        // budget() must not overflow even for huge phase gaps.
        assert_eq!(s.budget(80, 0), u64::MAX);
    }
}
