//! The finite-goal universal user: Levin-style parallel enumeration.

use super::schedule::BudgetSchedule;
use super::SwitchRecord;
use crate::enumeration::StrategyEnumerator;
use crate::msg::{UserIn, UserOut};
use crate::sensing::{BoxedSensing, Sensing};
use crate::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use crate::strategy::{BoxedUser, Halt, StepCtx, UserStrategy};
use crate::view::ViewEvent;
use std::collections::VecDeque;
use std::fmt;

/// Default number of schedule slots the universal users pre-materialise per
/// batch (see [`lookahead_width`]).
pub(super) const DEFAULT_LOOKAHEAD: usize = 8;

/// How many schedule slots the universal users pre-materialise per batch.
///
/// Candidate construction is pure, so building the next few scheduled
/// candidates ahead of time is unobservable; it lets enumerators with a
/// parallel (or lockstep-batched, see `goc_vm::batch`)
/// [`StrategyEnumerator::batch`] override do so off the critical path.
/// Results are always adopted in schedule order, so the width only moves
/// work between refills — the interaction is identical for every setting.
///
/// Tunable via `GOC_BATCH_WIDTH` (default 8, clamped to 1..=64; read once
/// and latched).
pub(super) fn lookahead_width() -> usize {
    static WIDTH: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WIDTH.get_or_init(|| {
        std::env::var("GOC_BATCH_WIDTH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_LOOKAHEAD)
            .clamp(1, 64)
    })
}

/// The universal user strategy for **finite** goals (Theorem 1, finite
/// case).
///
/// Candidate strategies are enumerated "in parallel" as in Levin's universal
/// search: the run is divided into slots, and in phase *k* candidate *i*
/// receives a budget of `base × 2^(k−i)` rounds (see
/// [`LevinSchedule`](super::LevinSchedule)). Safe sensing decides when to stop: the user halts the
/// first time an indication is **positive**, adopting the current candidate's
/// output.
///
/// Correctness under the paper's hypotheses:
///
/// - *Safety* (finite flavor): positive indications arise only on acceptable
///   histories — halting on a positive is sound.
/// - *Viability*: with any helpful server, some candidate leads to a positive
///   indication; budget doubling eventually grants that candidate enough
///   consecutive rounds, because the goal is *forgiving* (any finite prefix
///   produced by the other candidates can still be extended to success).
///
/// The per-candidate overhead is the classic Levin factor: if candidate *i*
/// succeeds within *b* rounds, the universal user halts within
/// O(2^i · b) rounds — the "essentially necessary" overhead of §3.
///
/// # Behaviour under faulted channels
///
/// When the user↔server link carries a [`Channel`](crate::channel::Channel)
/// fault, the argument degrades gracefully rather than breaking. Safety is
/// untouched: it is a property of the *sensing* over the user's view, so no
/// amount of link garbage can make a safe sensing emit an unsound positive —
/// the user may be slowed, never fooled into a false halt. Viability
/// survives any fault burst that is *finite* (a bounded-loss
/// [`FaultSchedule`](crate::channel::FaultSchedule)): after the schedule
/// goes quiet the faulted pairing is indistinguishable from a helpful one
/// started late, and budget doubling re-grants the winning candidate enough
/// clean consecutive rounds. Unbounded random loss keeps conquest
/// almost-surely (each retry is an independent trial); only a channel
/// faulty *forever at full strength* de-helpfulises the pairing. The
/// conformance sweep in `goc-testkit` checks both halves mechanically.
///
/// # Examples
///
/// ```
/// use goc_core::prelude::*;
/// use goc_core::toy;
///
/// let goal = toy::MagicWordGoal::new("hi");
/// let universal = LevinUniversalUser::new(
///     Box::new(toy::caesar_class("hi", 8, false)),
///     Box::new(toy::ack_sensing()),
///     8,
/// );
/// let mut rng = GocRng::seed_from_u64(3);
/// let mut exec = Execution::new(
///     goal.spawn_world(&mut rng),
///     Box::new(toy::RelayServer::with_shift(6)),
///     Box::new(universal),
///     rng,
/// );
/// let t = exec.run(5_000);
/// assert!(evaluate_finite(&goal, &t).achieved);
/// ```
pub struct LevinUniversalUser {
    enumerator: Box<dyn StrategyEnumerator>,
    sensing: BoxedSensing,
    schedule: BudgetSchedule,
    current: BoxedUser,
    current_index: usize,
    budget_left: u64,
    halt: Option<Halt>,
    switches: Vec<SwitchRecord>,
    slots_used: u64,
    /// Speculatively pre-built `(index, budget, candidate)` slots, consumed
    /// strictly in schedule order (see [`lookahead_width`]).
    lookahead: VecDeque<(usize, u64, BoxedUser)>,
    /// The *following* lookahead window, pre-drawn from the schedule at the
    /// last refill so its indices could be handed to
    /// [`StrategyEnumerator::prefetch`] (background candidate construction
    /// on idle pool workers). Drawing early is unobservable — the schedule
    /// is a pure iterator — and the slots are adopted in the same order at
    /// the next refill.
    prefetched_slots: Option<Vec<(usize, u64)>>,
}

impl fmt::Debug for LevinUniversalUser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LevinUniversalUser")
            .field("enumerator", &self.enumerator.name())
            .field("sensing", &self.sensing.name())
            .field("current_index", &self.current_index)
            .field("budget_left", &self.budget_left)
            .field("slots_used", &self.slots_used)
            .finish()
    }
}

impl LevinUniversalUser {
    /// Builds the Levin universal user over `enumerator` with `sensing` and a
    /// per-slot base budget of `base` rounds.
    ///
    /// `base` should be at least the message round-trip latency of the system
    /// (in this library: 3 rounds user → server → world → user), otherwise
    /// the earliest phases are pure overhead.
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty or `base == 0`.
    pub fn new(
        enumerator: Box<dyn StrategyEnumerator>,
        sensing: BoxedSensing,
        base: u64,
    ) -> Self {
        let schedule = BudgetSchedule::levin(base, enumerator.len());
        Self::with_schedule(enumerator, sensing, schedule)
    }

    /// Builds the universal user with the round-robin-doubling schedule:
    /// for finite classes this replaces the classic 2^i-per-candidate
    /// overhead with an O(n)-per-pass overhead (see
    /// [`RoundRobinDoubling`](super::RoundRobinDoubling)).
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty or infinite, or `base == 0`.
    pub fn round_robin(
        enumerator: Box<dyn StrategyEnumerator>,
        sensing: BoxedSensing,
        base: u64,
    ) -> Self {
        let n = enumerator.len().expect("round_robin requires a finite class");
        let schedule = BudgetSchedule::round_robin(base, n);
        Self::with_schedule(enumerator, sensing, schedule)
    }

    /// Builds the universal user with an explicit budget schedule.
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty.
    pub fn with_schedule(
        enumerator: Box<dyn StrategyEnumerator>,
        sensing: BoxedSensing,
        schedule: BudgetSchedule,
    ) -> Self {
        assert!(!enumerator.is_empty(), "universal user needs a non-empty strategy class");
        let mut user = LevinUniversalUser {
            enumerator,
            sensing,
            schedule,
            current: Box::new(crate::strategy::SilentUser),
            current_index: 0,
            budget_left: 0,
            halt: None,
            switches: Vec::new(),
            slots_used: 0,
            lookahead: VecDeque::new(),
            prefetched_slots: None,
        };
        let (first, budget, candidate) = user.next_candidate();
        user.current = candidate;
        user.current_index = first;
        user.budget_left = budget;
        user
    }

    /// Index (in the enumeration) of the candidate currently running.
    pub fn current_index(&self) -> usize {
        self.current_index
    }

    /// Number of candidate switches (slot boundaries crossed).
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The full switch log (for the overhead experiments).
    pub fn switch_log(&self) -> &[SwitchRecord] {
        &self.switches
    }

    /// Number of schedule slots fully consumed.
    pub fn slots_used(&self) -> u64 {
        self.slots_used
    }

    /// Pops the next scheduled `(index, budget, candidate)`, refilling the
    /// speculative lookahead in one [`StrategyEnumerator::batch`] call when
    /// it runs dry. Construction is pure and results are consumed strictly
    /// in schedule order, so this is indistinguishable from building each
    /// candidate at its switch round.
    fn next_candidate(&mut self) -> (usize, u64, BoxedUser) {
        if self.lookahead.is_empty() {
            crate::obs_count!("universal.lookahead.refills", 1u64);
            let slots: Vec<(usize, u64)> = match self.prefetched_slots.take() {
                Some(slots) => slots,
                None => (0..lookahead_width())
                    .map(|_| self.schedule.next().expect("budget schedules are infinite"))
                    .collect(),
            };
            let indices: Vec<usize> = slots.iter().map(|&(i, _)| i).collect();
            for ((index, budget), candidate) in
                slots.into_iter().zip(self.enumerator.batch(&indices))
            {
                let candidate =
                    candidate.expect("schedule yielded an index outside the enumeration");
                self.lookahead.push_back((index, budget, candidate));
            }
            if crate::par::prewarm_enabled() {
                // Pipeline: pre-draw the *next* window and hand its indices
                // to the enumerator, so idle pool workers can prepare those
                // candidates while this window's candidates run live.
                let next: Vec<(usize, u64)> = (0..lookahead_width())
                    .map(|_| self.schedule.next().expect("budget schedules are infinite"))
                    .collect();
                let next_indices: Vec<usize> = next.iter().map(|&(i, _)| i).collect();
                self.enumerator.prefetch(&next_indices);
                self.prefetched_slots = Some(next);
            }
        }
        self.lookahead.pop_front().expect("lookahead was just refilled")
    }

    fn switch(&mut self, round: u64) {
        let (next, budget, fresh) = self.next_candidate();
        crate::obs_event!("universal.eliminate", self.current_index);
        crate::obs_event!("universal.spawn", next);
        crate::obs_count!("universal.switches", 1u64);
        self.switches.push(SwitchRecord {
            round,
            from_index: self.current_index,
            to_index: next,
        });
        self.current = fresh;
        self.current_index = next;
        self.budget_left = budget;
        self.slots_used += 1;
        self.sensing.reset();
    }
}

impl UserStrategy for LevinUniversalUser {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if self.budget_left == 0 {
            self.switch(ctx.round);
        }
        let out = self.current.step(ctx, input);
        let event = ViewEvent { round: ctx.round, received: input.clone(), sent: out.clone() };
        let indication = self.sensing.observe(&event);
        self.budget_left = self.budget_left.saturating_sub(1);

        if indication.is_positive() {
            // Safe sensing says the history is acceptable: stop, adopting the
            // candidate's own verdict if it produced one.
            self.halt = Some(self.current.halted().unwrap_or_else(Halt::empty));
        } else if self.current.halted().is_some() {
            // The candidate gave up (halted) without confirmation; burn the
            // rest of its slot.
            self.budget_left = 0;
        }
        out
    }

    fn halted(&self) -> Option<Halt> {
        self.halt.clone()
    }

    fn name(&self) -> String {
        format!("levin-universal({})", self.enumerator.name())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        self.schedule.encode(w);
        w.usize(self.current_index);
        w.str(&self.current.name());
        w.block(|w| self.current.save_snap(w))?;
        w.u64(self.budget_left);
        self.halt.encode(w);
        self.switches.encode(w);
        w.u64(self.slots_used);
        // Lookahead candidates are freshly built and never stepped, so
        // `(index, budget)` pairs suffice: restore rebuilds them through the
        // same pure `batch` call that built them originally.
        let slots: Vec<(usize, u64)> = self.lookahead.iter().map(|&(i, b, _)| (i, b)).collect();
        slots.encode(w);
        self.prefetched_slots.encode(w);
        w.block(|w| self.sensing.save_snap(w))
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.schedule = BudgetSchedule::decode(r)?;
        self.current_index = r.usize("levin current index")?;
        let saved_name = r.str("levin current name")?.to_string();
        let mut current = self
            .enumerator
            .strategy(self.current_index)
            .ok_or(SnapError::Malformed { context: "levin current index" })?;
        if current.name() != saved_name {
            return Err(SnapError::Mismatch {
                context: "levin current candidate",
                expected: current.name(),
                found: saved_name,
            });
        }
        let mut block = r.block("levin current block")?;
        current.restore_snap(&mut block)?;
        block.finish()?;
        self.current = current;
        self.budget_left = r.u64("levin budget")?;
        self.halt = Option::<Halt>::decode(r)?;
        self.switches = Vec::<SwitchRecord>::decode(r)?;
        self.slots_used = r.u64("levin slots used")?;
        let slots = Vec::<(usize, u64)>::decode(r)?;
        let indices: Vec<usize> = slots.iter().map(|&(i, _)| i).collect();
        self.lookahead.clear();
        for ((index, budget), candidate) in
            slots.into_iter().zip(self.enumerator.batch(&indices))
        {
            let candidate =
                candidate.ok_or(SnapError::Malformed { context: "levin lookahead index" })?;
            self.lookahead.push_back((index, budget, candidate));
        }
        self.prefetched_slots = Option::<Vec<(usize, u64)>>::decode(r)?;
        if let Some(next) = &self.prefetched_slots {
            // Re-issue the (advisory, observably inert) construction hint the
            // saved run had outstanding.
            let next_indices: Vec<usize> = next.iter().map(|&(i, _)| i).collect();
            self.enumerator.prefetch(&next_indices);
        }
        let mut block = r.block("levin sensing block")?;
        self.sensing.restore_snap(&mut block)?;
        block.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;
    use crate::goal::{evaluate_finite, Goal};
    use crate::rng::GocRng;
    use crate::strategy::SilentServer;
    use crate::toy;

    fn universal(shifts: u8, base: u64) -> LevinUniversalUser {
        LevinUniversalUser::new(
            Box::new(toy::caesar_class("hi", shifts, false)),
            Box::new(toy::ack_sensing()),
            base,
        )
    }

    fn run_against(shift: u8, user: LevinUniversalUser, horizon: u64, seed: u64) -> crate::goal::FiniteVerdict {
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(shift)),
            Box::new(user),
            rng,
        );
        let t = exec.run(horizon);
        evaluate_finite(&goal, &t)
    }

    #[test]
    fn achieves_goal_with_every_server_in_class() {
        for shift in 0..8u8 {
            let v = run_against(shift, universal(8, 8), 20_000, 50 + shift as u64);
            assert!(v.achieved, "failed against shift {shift}: {v:?}");
        }
    }

    #[test]
    fn never_halts_with_unhelpful_server() {
        // SilentServer never relays, so the (safe) ack sensing never turns
        // positive: the Levin user must not halt — a false halt would break
        // safety of the construction.
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(9);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(SilentServer),
            Box::new(universal(8, 8)),
            rng,
        );
        let t = exec.run(10_000);
        let v = evaluate_finite(&goal, &t);
        assert!(!v.halted);
        assert!(!v.achieved);
    }

    #[test]
    fn later_candidates_cost_exponentially_more() {
        // Rounds to success should grow roughly like 2^index of the correct
        // candidate: compare candidate 0 vs candidate 6.
        let fast = run_against(0, universal(8, 8), 40_000, 1);
        let slow = run_against(6, universal(8, 8), 40_000, 1);
        assert!(fast.achieved && slow.achieved);
        assert!(
            slow.rounds >= fast.rounds.saturating_mul(4),
            "expected Levin overhead: fast={} slow={}",
            fast.rounds,
            slow.rounds
        );
    }

    #[test]
    fn adopts_candidate_output_on_halt() {
        let v = run_against(2, universal(8, 8), 20_000, 3);
        assert!(v.achieved);
        // SayThrough halts with output "heard"; the universal user adopts it.
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(3);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(2)),
            Box::new(universal(8, 8)),
            rng,
        );
        let t = exec.run(20_000);
        assert_eq!(t.halt().unwrap().output, crate::msg::Message::from("heard"));
    }

    #[test]
    fn slots_and_switches_are_recorded() {
        let mut u = universal(4, 2);
        let mut rng = GocRng::seed_from_u64(4);
        for round in 0..50 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = u.step(&mut ctx, &UserIn::default());
        }
        assert!(u.slots_used() > 0);
        assert_eq!(u.switch_count() as u64, u.slots_used());
        assert!(UserStrategy::halted(&u).is_none());
    }

    #[test]
    fn halts_immediately_on_instant_positive() {
        let mut u = LevinUniversalUser::new(
            Box::new(toy::caesar_class("hi", 2, false)),
            Box::new(crate::sensing::AlwaysPositive),
            4,
        );
        let mut rng = GocRng::seed_from_u64(5);
        let mut ctx = StepCtx::new(0, &mut rng);
        let _ = u.step(&mut ctx, &UserIn::default());
        assert!(UserStrategy::halted(&u).is_some());
        // Further steps are silent.
        let mut ctx = StepCtx::new(1, &mut rng);
        assert_eq!(u.step(&mut ctx, &UserIn::default()), UserOut::silence());
    }

    #[test]
    #[should_panic(expected = "non-empty class")]
    fn empty_class_panics() {
        let _ = LevinUniversalUser::new(
            Box::new(crate::enumeration::SliceEnumerator::new("empty")),
            Box::new(toy::ack_sensing()),
            4,
        );
    }

    #[test]
    fn debug_and_name() {
        let u = universal(4, 4);
        assert!(format!("{u:?}").contains("LevinUniversalUser"));
        assert!(u.name().contains("levin-universal"));
    }

    #[test]
    fn snapshot_resumes_bit_identically() {
        let mut live = universal(8, 4);
        let mut rng = GocRng::seed_from_u64(21);
        for round in 0..57 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = live.step(&mut ctx, &UserIn::default());
        }
        let mut bytes = Vec::new();
        live.save_snap(&mut crate::snap::SnapWriter::new(&mut bytes)).unwrap();

        let mut restored = universal(8, 4);
        let mut r = crate::snap::SnapReader::new(&bytes);
        restored.restore_snap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.current_index(), live.current_index());
        assert_eq!(restored.slots_used(), live.slots_used());

        let mut rng2 = rng.clone();
        for round in 57..250 {
            let mut c1 = StepCtx::new(round, &mut rng);
            let mut c2 = StepCtx::new(round, &mut rng2);
            assert_eq!(
                live.step(&mut c1, &UserIn::default()),
                restored.step(&mut c2, &UserIn::default()),
                "diverged at round {round}"
            );
        }
        assert_eq!(live.switch_log(), restored.switch_log());
    }

    #[test]
    fn snapshot_restore_rejects_wrong_class() {
        let mut live = universal(8, 4);
        let mut rng = GocRng::seed_from_u64(22);
        for round in 0..20 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = live.step(&mut ctx, &UserIn::default());
        }
        let mut bytes = Vec::new();
        live.save_snap(&mut crate::snap::SnapWriter::new(&mut bytes)).unwrap();
        // A skeleton over a different phrase has different candidate names.
        let mut wrong = LevinUniversalUser::new(
            Box::new(toy::caesar_class("yo", 8, false)),
            Box::new(toy::ack_sensing()),
            4,
        );
        let mut r = crate::snap::SnapReader::new(&bytes);
        assert!(matches!(
            wrong.restore_snap(&mut r),
            Err(crate::snap::SnapError::Mismatch { .. })
        ));
    }
}
