//! The compact-goal universal user: enumerate and switch on negatives.

use super::schedule::Schedule;
use super::SwitchRecord;
use crate::enumeration::StrategyEnumerator;
use crate::msg::{UserIn, UserOut};
use crate::rng::GocRng;
use crate::sensing::{BoxedSensing, Sensing};
use crate::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use crate::strategy::{BoxedUser, Halt, StepCtx, UserStrategy};
use crate::view::ViewEvent;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// How the universal user treats a candidate when the triangular schedule
/// revisits it.
///
/// The paper's construction is defined extensionally — by what the candidate
/// *would* output given its inputs — so any policy that reproduces those
/// outputs is faithful. The three policies trade work for memory:
///
/// - [`Restart`](ResumePolicy::Restart): every visit starts a **fresh**
///   candidate (the seed behaviour, and the default). Cheapest memory,
///   but a revisited candidate has forgotten everything.
/// - [`Replay`](ResumePolicy::Replay): every visit starts a fresh candidate
///   and **re-feeds it the full recorded input history** of its previous
///   visits before going live — the reference semantics for resumption, at
///   O(history) cost per revisit (O(i²) total for candidate *i*).
/// - [`Resume`](ResumePolicy::Resume): a candidate abandoned on a negative
///   indication is **suspended** (its live state and private rng stream are
///   parked in a slot) and taken back on revisit — O(1) per revisit.
///
/// `Replay` and `Resume` are observationally equivalent: a candidate's
/// behaviour is a deterministic function of its private rng stream (forked
/// position-independently from the user's stream, so the re-fork on replay
/// reproduces it exactly) and the sequence of `(round, input)` pairs it is
/// fed. The `resume_matches_replay` property test asserts the equivalence
/// bit-for-bit; CI diffs whole `goc-report` runs under both policies.
///
/// `Restart` differs from both by design (a fresh candidate may e.g. re-send
/// a greeting a replayed one would not repeat); it remains the default so
/// seeded experiment outputs predating this type are unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ResumePolicy {
    /// Fresh candidate on every visit (seed behaviour).
    #[default]
    Restart,
    /// Fresh candidate re-fed its recorded history on every revisit.
    Replay,
    /// Suspend on abandonment, take the live state back on revisit.
    Resume,
}

impl ResumePolicy {
    /// Reads `GOC_RESUME` (`restart` | `replay` | `resume`; default
    /// `restart`).
    pub fn from_env() -> Self {
        match std::env::var("GOC_RESUME").as_deref() {
            Ok("replay") => ResumePolicy::Replay,
            Ok("resume") => ResumePolicy::Resume,
            _ => ResumePolicy::Restart,
        }
    }
}

/// Fork-stream namespace for per-candidate rng streams (see
/// [`ResumePolicy`]): candidate `i` draws from
/// `user_rng.fork(SLOT_STREAM_BASE + i)`. Forking is position-independent,
/// so re-deriving the stream at replay time reproduces it exactly.
const SLOT_STREAM_BASE: u64 = 0x5245_5355_4d45; // "RESUME"

/// Per-candidate suspension state (policies other than `Restart`).
#[derive(Debug, Default)]
struct Slot {
    /// The suspended live candidate (`Resume` only).
    user: Option<BoxedUser>,
    /// The suspended candidate's rng stream (`Resume` only).
    rng: Option<GocRng>,
    /// Every `(round, input)` fed to this candidate so far (`Replay` only).
    history: Vec<(u64, UserIn)>,
}

/// The universal user strategy for **compact** goals (Theorem 1, compact
/// case).
///
/// Runs the currently enumerated strategy and, whenever the sensing function
/// produces a **negative** indication, abandons it for the next strategy in
/// the schedule (default: triangular, so every strategy recurs infinitely
/// often). Sensing is reset at every switch so that one strategy's failures
/// are not held against its successor.
///
/// Correctness under the paper's hypotheses:
///
/// - *Safety* ensures a pairing that fails the goal generates infinitely many
///   negatives, so a failing strategy is always eventually abandoned.
/// - *Viability* ensures the viable strategy suffers only finitely many
///   negatives; since it recurs infinitely often in the schedule, the user
///   eventually adopts it after its last spurious negative and never leaves.
///
/// # Behaviour under faulted channels
///
/// A faulted user↔server link (see [`crate::channel`]) can at worst inject
/// spurious **negatives** — e.g. a dropped reply trips a
/// [`Deadline`](crate::sensing::Deadline) — which cost extra switches but
/// are harmless: the triangular schedule revisits every strategy infinitely
/// often, so a finite fault schedule adds only finitely many spurious
/// negatives and the settling argument goes through with a delayed "last
/// negative". Safety needs no caveat at all: compact acceptability is judged
/// by the referee on world states, and a safe sensing stays safe under any
/// view the channel can manufacture. This is exercised mechanically by the
/// `goc-testkit` conformance sweep.
///
/// # Examples
///
/// ```
/// use goc_core::prelude::*;
/// use goc_core::sensing::Deadline;
/// use goc_core::toy;
///
/// let goal = toy::CompactMagicWordGoal::new("hi", 16);
/// let class = toy::caesar_class("hi", 8, true);
/// let universal = CompactUniversalUser::new(
///     Box::new(class),
///     Box::new(Deadline::new(toy::ack_sensing(), 8)),
/// );
///
/// let mut rng = GocRng::seed_from_u64(5);
/// let mut exec = Execution::new(
///     goal.spawn_world(&mut rng),
///     Box::new(toy::RelayServer::with_shift(5)),
///     Box::new(universal),
///     rng,
/// );
/// let t = exec.run(2000);
/// assert!(evaluate_compact(&goal, &t).achieved(200));
/// ```
pub struct CompactUniversalUser {
    enumerator: Box<dyn StrategyEnumerator>,
    sensing: BoxedSensing,
    schedule: Schedule,
    current: BoxedUser,
    current_index: usize,
    switches: Vec<SwitchRecord>,
    pending_switch: bool,
    /// Speculatively pre-built `(index, candidate)` slots, consumed strictly
    /// in schedule order (see [`super::finite::lookahead_width`]). Only used under
    /// [`ResumePolicy::Restart`]; the other policies draw from the schedule
    /// one index at a time because a revisit may not build a candidate at
    /// all.
    lookahead: VecDeque<(usize, BoxedUser)>,
    /// The *following* lookahead window's indices, pre-drawn at the last
    /// refill so they could be handed to [`StrategyEnumerator::prefetch`]
    /// (background construction on idle pool workers). Restart-policy only,
    /// like the lookahead itself.
    prefetched_indices: Option<Vec<usize>>,
    policy: ResumePolicy,
    /// Suspension slots, keyed by enumeration index (non-`Restart` only).
    slots: BTreeMap<usize, Slot>,
    /// The live candidate's private rng stream (non-`Restart` only);
    /// `None` until the first step derives it from the step context.
    slot_rng: Option<GocRng>,
    /// Rounds re-fed to fresh candidates under [`ResumePolicy::Replay`].
    replayed_rounds: u64,
    /// Switches that took a suspended candidate back instead of building a
    /// fresh one ([`ResumePolicy::Resume`] only).
    resumed_switches: u64,
}

impl fmt::Debug for CompactUniversalUser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompactUniversalUser")
            .field("enumerator", &self.enumerator.name())
            .field("sensing", &self.sensing.name())
            .field("current_index", &self.current_index)
            .field("switches", &self.switches.len())
            .finish()
    }
}

impl CompactUniversalUser {
    /// Builds the universal user over `enumerator` with the given `sensing`,
    /// using the (correct) triangular schedule and the revisit policy named
    /// by the `GOC_RESUME` environment variable (default
    /// [`Restart`](ResumePolicy::Restart), the seed behaviour). Setting
    /// `GOC_RESUME=replay` or `=resume` must not change any experiment's
    /// *outcome* — CI diffs whole report runs under both to enforce it.
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty.
    pub fn new(enumerator: Box<dyn StrategyEnumerator>, sensing: BoxedSensing) -> Self {
        Self::with_policy(enumerator, sensing, ResumePolicy::from_env())
    }

    /// [`CompactUniversalUser::new`] with an explicit [`ResumePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty.
    pub fn with_policy(
        enumerator: Box<dyn StrategyEnumerator>,
        sensing: BoxedSensing,
        policy: ResumePolicy,
    ) -> Self {
        assert!(!enumerator.is_empty(), "universal user needs a non-empty strategy class");
        let schedule = Schedule::triangular(enumerator.len());
        Self::with_schedule_and_policy(enumerator, sensing, schedule, policy)
    }

    /// Builds the universal user with an explicit schedule (ablation E8 uses
    /// [`Schedule::linear`]) and the `GOC_RESUME` revisit policy, as in
    /// [`new`](Self::new).
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty or the schedule yields an index the
    /// enumeration cannot instantiate.
    pub fn with_schedule(
        enumerator: Box<dyn StrategyEnumerator>,
        sensing: BoxedSensing,
        schedule: Schedule,
    ) -> Self {
        Self::with_schedule_and_policy(enumerator, sensing, schedule, ResumePolicy::from_env())
    }

    /// Builds the universal user with an explicit schedule *and* an explicit
    /// [`ResumePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty or the schedule yields an index the
    /// enumeration cannot instantiate.
    pub fn with_schedule_and_policy(
        enumerator: Box<dyn StrategyEnumerator>,
        sensing: BoxedSensing,
        schedule: Schedule,
        policy: ResumePolicy,
    ) -> Self {
        assert!(!enumerator.is_empty(), "universal user needs a non-empty strategy class");
        let mut user = CompactUniversalUser {
            enumerator,
            sensing,
            schedule,
            current: Box::new(crate::strategy::SilentUser),
            current_index: 0,
            switches: Vec::new(),
            pending_switch: false,
            lookahead: VecDeque::new(),
            prefetched_indices: None,
            policy,
            slots: BTreeMap::new(),
            slot_rng: None,
            replayed_rounds: 0,
            resumed_switches: 0,
        };
        let (first, candidate) = match policy {
            ResumePolicy::Restart => user.next_candidate(),
            _ => {
                let first = user.schedule.next().expect("schedules are infinite");
                let candidate = user
                    .enumerator
                    .strategy(first)
                    .expect("schedule yielded an index outside the enumeration");
                (first, candidate)
            }
        };
        user.current = candidate;
        user.current_index = first;
        user
    }

    /// Index (in the enumeration) of the strategy currently running.
    pub fn current_index(&self) -> usize {
        self.current_index
    }

    /// Number of strategy switches performed so far.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The full switch log (for the overhead experiments).
    pub fn switch_log(&self) -> &[SwitchRecord] {
        &self.switches
    }

    /// The revisit policy this user was built with.
    pub fn policy(&self) -> ResumePolicy {
        self.policy
    }

    /// Rounds re-fed to fresh candidates so far ([`ResumePolicy::Replay`]
    /// only; zero otherwise). This is the quadratic work the `Resume` policy
    /// eliminates.
    pub fn replayed_rounds(&self) -> u64 {
        self.replayed_rounds
    }

    /// Switches that took a suspended candidate back instead of building a
    /// fresh one ([`ResumePolicy::Resume`] only; zero otherwise).
    pub fn resumed_switches(&self) -> u64 {
        self.resumed_switches
    }

    /// Pops the next scheduled `(index, candidate)`, refilling the
    /// speculative lookahead in one [`StrategyEnumerator::batch`] call when
    /// it runs dry (same reasoning as the Levin user's lookahead:
    /// construction is pure and adoption order is unchanged).
    fn next_candidate(&mut self) -> (usize, BoxedUser) {
        if self.lookahead.is_empty() {
            crate::obs_count!("universal.lookahead.refills", 1u64);
            let indices: Vec<usize> = match self.prefetched_indices.take() {
                Some(indices) => indices,
                None => (0..super::finite::lookahead_width())
                    .map(|_| self.schedule.next().expect("schedules are infinite"))
                    .collect(),
            };
            for (&index, candidate) in indices.iter().zip(self.enumerator.batch(&indices)) {
                let candidate =
                    candidate.expect("schedule yielded an index outside the enumeration");
                self.lookahead.push_back((index, candidate));
            }
            if crate::par::prewarm_enabled() {
                // Pipeline (same as the Levin user): pre-draw the next
                // window and let idle pool workers prepare it in the
                // background while this window's candidates run.
                let next: Vec<usize> = (0..super::finite::lookahead_width())
                    .map(|_| self.schedule.next().expect("schedules are infinite"))
                    .collect();
                self.enumerator.prefetch(&next);
                self.prefetched_indices = Some(next);
            }
        }
        self.lookahead.pop_front().expect("lookahead was just refilled")
    }

    fn switch(&mut self, ctx: &mut StepCtx<'_>) {
        let round = ctx.round;
        crate::obs_event!("universal.eliminate", self.current_index);
        let next = match self.policy {
            ResumePolicy::Restart => {
                let (next, fresh) = self.next_candidate();
                crate::obs_event!("universal.spawn", next);
                self.current = fresh;
                next
            }
            ResumePolicy::Replay => {
                let next = self.schedule.next().expect("schedules are infinite");
                crate::obs_event!("universal.spawn", next);
                self.current = self
                    .enumerator
                    .strategy(next)
                    .expect("schedule yielded an index outside the enumeration");
                // Re-derive the candidate's private stream from scratch and
                // re-feed its recorded history: position-independent forking
                // guarantees this reconstructs the abandoned state exactly.
                let mut rng = ctx.rng.fork(SLOT_STREAM_BASE + next as u64);
                if let Some(slot) = self.slots.get(&next) {
                    for (r, input) in &slot.history {
                        let mut replay_ctx = StepCtx::new(*r, &mut rng);
                        let _ = self.current.step(&mut replay_ctx, input);
                    }
                    self.replayed_rounds += slot.history.len() as u64;
                }
                self.slot_rng = Some(rng);
                next
            }
            ResumePolicy::Resume => {
                let next = self.schedule.next().expect("schedules are infinite");
                // Suspend the abandoned candidate together with its rng
                // position.
                crate::obs_event!("universal.suspend", self.current_index);
                let old =
                    std::mem::replace(&mut self.current, Box::new(crate::strategy::SilentUser));
                let slot = self.slots.entry(self.current_index).or_default();
                slot.user = Some(old);
                slot.rng = self.slot_rng.take();
                // Take the revisited candidate back, or build it fresh on a
                // first visit.
                match self.slots.get_mut(&next).and_then(|s| s.user.take()) {
                    Some(user) => {
                        crate::obs_event!("universal.resume", next);
                        self.current = user;
                        self.slot_rng = self.slots.get_mut(&next).and_then(|s| s.rng.take());
                        self.resumed_switches += 1;
                    }
                    None => {
                        crate::obs_event!("universal.spawn", next);
                        self.current = self
                            .enumerator
                            .strategy(next)
                            .expect("schedule yielded an index outside the enumeration");
                        self.slot_rng = Some(ctx.rng.fork(SLOT_STREAM_BASE + next as u64));
                    }
                }
                next
            }
        };
        crate::obs_count!("universal.switches", 1u64);
        self.switches.push(SwitchRecord {
            round,
            from_index: self.current_index,
            to_index: next,
        });
        self.current_index = next;
        self.sensing.reset();
        self.pending_switch = false;
    }
}

impl UserStrategy for CompactUniversalUser {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.pending_switch {
            self.switch(ctx);
        }
        let out = if self.policy == ResumePolicy::Restart {
            self.current.step(ctx, input)
        } else {
            // Candidates under Replay/Resume draw from a private,
            // position-independently forked stream so that replaying or
            // resuming reconstructs exactly the same randomness.
            if self.slot_rng.is_none() {
                self.slot_rng = Some(ctx.rng.fork(SLOT_STREAM_BASE + self.current_index as u64));
            }
            let rng = self.slot_rng.as_mut().expect("initialized above");
            let mut slot_ctx = StepCtx::new(ctx.round, rng);
            self.current.step(&mut slot_ctx, input)
        };
        let event = ViewEvent { round: ctx.round, received: input.clone(), sent: out.clone() };
        let indication = self.sensing.observe(&event);
        if self.policy == ResumePolicy::Replay {
            // Reuse the event's clone of the inbox for the replay history
            // instead of cloning a second time. Recording after the step is
            // equivalent: the history is only read at a switch, which is
            // always deferred to the start of the next round.
            self.slots
                .entry(self.current_index)
                .or_default()
                .history
                .push((ctx.round, event.received));
        }
        if indication.is_negative() {
            // Switch at the *start* of the next round so this round's output
            // (already computed) stays consistent with the strategy that
            // produced it.
            self.pending_switch = true;
        }
        if self.current.halted().is_some() {
            // A halted inner strategy is silent forever: for a compact goal
            // that is abandonment, so move on.
            self.pending_switch = true;
        }
        out
    }

    fn halted(&self) -> Option<Halt> {
        None // compact-goal users run forever
    }

    fn name(&self) -> String {
        format!("compact-universal({})", self.enumerator.name())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.u8(match self.policy {
            ResumePolicy::Restart => 0,
            ResumePolicy::Replay => 1,
            ResumePolicy::Resume => 2,
        });
        self.schedule.encode(w);
        w.usize(self.current_index);
        w.str(&self.current.name());
        w.block(|w| self.current.save_snap(w))?;
        self.switches.encode(w);
        w.bool(self.pending_switch);
        // Lookahead candidates are freshly built and never stepped (Restart
        // policy only), so indices suffice: restore rebuilds them through the
        // same pure `batch` call.
        let indices: Vec<usize> = self.lookahead.iter().map(|&(i, _)| i).collect();
        indices.encode(w);
        self.prefetched_indices.encode(w);
        self.slot_rng.encode(w);
        w.u64(self.replayed_rounds);
        w.u64(self.resumed_switches);
        w.u64(self.slots.len() as u64);
        for (&index, slot) in &self.slots {
            w.usize(index);
            match &slot.user {
                None => w.u8(0),
                Some(user) => {
                    w.u8(1);
                    w.str(&user.name());
                    w.block(|w| user.save_snap(w))?;
                }
            }
            slot.rng.encode(w);
            slot.history.encode(w);
        }
        w.block(|w| self.sensing.save_snap(w))
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let policy = match r.u8("resume policy tag")? {
            0 => ResumePolicy::Restart,
            1 => ResumePolicy::Replay,
            2 => ResumePolicy::Resume,
            found => return Err(SnapError::BadTag { context: "resume policy tag", found }),
        };
        if policy != self.policy {
            // The policy is configuration (chosen at construction, often via
            // GOC_RESUME), not mutable state: a skeleton built under a
            // different policy cannot continue this run bit-identically.
            return Err(SnapError::Mismatch {
                context: "resume policy",
                expected: format!("{:?}", self.policy),
                found: format!("{policy:?}"),
            });
        }
        self.schedule = Schedule::decode(r)?;
        self.current_index = r.usize("compact current index")?;
        let saved_name = r.str("compact current name")?.to_string();
        let mut current = self
            .enumerator
            .strategy(self.current_index)
            .ok_or(SnapError::Malformed { context: "compact current index" })?;
        if current.name() != saved_name {
            return Err(SnapError::Mismatch {
                context: "compact current candidate",
                expected: current.name(),
                found: saved_name,
            });
        }
        let mut block = r.block("compact current block")?;
        current.restore_snap(&mut block)?;
        block.finish()?;
        self.current = current;
        self.switches = Vec::<SwitchRecord>::decode(r)?;
        self.pending_switch = r.bool("compact pending switch")?;
        let indices = Vec::<usize>::decode(r)?;
        self.lookahead.clear();
        for (&index, candidate) in indices.iter().zip(self.enumerator.batch(&indices)) {
            let candidate =
                candidate.ok_or(SnapError::Malformed { context: "compact lookahead index" })?;
            self.lookahead.push_back((index, candidate));
        }
        self.prefetched_indices = Option::<Vec<usize>>::decode(r)?;
        if let Some(next) = &self.prefetched_indices {
            // Re-issue the (advisory, observably inert) construction hint the
            // saved run had outstanding.
            self.enumerator.prefetch(next);
        }
        self.slot_rng = Option::<GocRng>::decode(r)?;
        self.replayed_rounds = r.u64("compact replayed rounds")?;
        self.resumed_switches = r.u64("compact resumed switches")?;
        let n = r.count("slot count")?;
        self.slots.clear();
        for _ in 0..n {
            let index = r.usize("slot index")?;
            let user = match r.u8("slot user tag")? {
                0 => None,
                1 => {
                    let saved_name = r.str("slot user name")?.to_string();
                    let mut user = self
                        .enumerator
                        .strategy(index)
                        .ok_or(SnapError::Malformed { context: "slot index" })?;
                    if user.name() != saved_name {
                        return Err(SnapError::Mismatch {
                            context: "slot candidate",
                            expected: user.name(),
                            found: saved_name,
                        });
                    }
                    let mut block = r.block("slot user block")?;
                    user.restore_snap(&mut block)?;
                    block.finish()?;
                    Some(user)
                }
                found => return Err(SnapError::BadTag { context: "slot user tag", found }),
            };
            let rng = Option::<GocRng>::decode(r)?;
            let history = Vec::<(u64, UserIn)>::decode(r)?;
            self.slots.insert(index, Slot { user, rng, history });
        }
        let mut block = r.block("compact sensing block")?;
        self.sensing.restore_snap(&mut block)?;
        block.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;
    use crate::goal::{evaluate_compact, Goal};
    use crate::rng::GocRng;
    use crate::sensing::Deadline;
    use crate::toy;

    fn universal(shifts: u8, timeout: u64) -> CompactUniversalUser {
        CompactUniversalUser::new(
            Box::new(toy::caesar_class("hi", shifts, true)),
            Box::new(Deadline::new(toy::ack_sensing(), timeout)),
        )
    }

    fn run_against(shift: u8, user: CompactUniversalUser, horizon: u64, seed: u64) -> bool {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(shift)),
            Box::new(user),
            rng,
        );
        let t = exec.run(horizon);
        evaluate_compact(&goal, &t).achieved(horizon / 8)
    }

    #[test]
    fn finds_the_compatible_strategy_for_every_server() {
        for shift in 0..8u8 {
            assert!(
                run_against(shift, universal(8, 8), 4000, 100 + shift as u64),
                "failed against shift {shift}"
            );
        }
    }

    #[test]
    fn settles_and_stops_switching() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let mut rng = GocRng::seed_from_u64(7);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(3)),
            Box::new(universal(8, 8)),
            rng,
        );
        exec.run(4000);
        // Downcast via Debug: we can't retrieve the user from the execution
        // generically, so instead run the universal user manually below.
        // (Settling is asserted by the flawless tail of the verdict.)
        let t = exec.into_transcript();
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(500), "verdict: {v:?}");
    }

    #[test]
    fn switch_log_counts_abandonments() {
        // Drive the universal user by hand against nothing: ack never comes,
        // so Deadline fires every `timeout` rounds and the user cycles.
        let mut u = universal(4, 5);
        let mut rng = GocRng::seed_from_u64(1);
        assert_eq!(u.current_index(), 0);
        for round in 0..100 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = u.step(&mut ctx, &UserIn::default());
        }
        assert!(u.switch_count() >= 10, "switches: {}", u.switch_count());
        // Triangular over 4: indices cycle 0,0,1,0,1,2,...
        let first: Vec<usize> = u.switch_log().iter().take(3).map(|s| s.to_index).collect();
        assert_eq!(first, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty strategy class")]
    fn empty_class_panics() {
        let _ = CompactUniversalUser::new(
            Box::new(crate::enumeration::SliceEnumerator::new("empty")),
            Box::new(toy::ack_sensing()),
        );
    }

    #[test]
    fn linear_schedule_ablation_can_strand() {
        // With a *linear* schedule and sensing so impatient it produces a
        // spurious negative before the correct strategy can earn its ack,
        // the naive user abandons every strategy once and strands on the
        // last one. The triangular user recovers because strategies recur.
        //
        // Deadline timeout 2 < 3 rounds needed for the first ack round-trip.
        let mk = |schedule: Schedule| {
            CompactUniversalUser::with_schedule(
                Box::new(toy::caesar_class("hi", 4, true)),
                Box::new(Deadline::new(toy::ack_sensing(), 2)),
                schedule,
            )
        };
        let goal = toy::CompactMagicWordGoal::new("hi", 16);

        let run = |user: CompactUniversalUser| {
            let mut rng = GocRng::seed_from_u64(11);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::with_shift(1)),
                Box::new(user),
                rng,
            );
            let t = exec.run(3000);
            evaluate_compact(&goal, &t)
        };

        let linear = run(mk(Schedule::linear(Some(4))));
        let triangular = run(mk(Schedule::triangular(Some(4))));
        // The linear user strands on index 3 (wrong shift): goal not achieved.
        assert!(!linear.achieved(300), "linear: {linear:?}");
        // Even the triangular user cannot *settle* (negatives keep firing
        // with timeout 2), but it keeps revisiting the right strategy, so it
        // outperforms linear on successes; assert it at least heard acks.
        assert!(triangular.bad_prefixes <= linear.bad_prefixes);
    }

    #[test]
    fn halted_inner_strategy_triggers_switch() {
        // A class of finite (halting) users inside a compact universal user:
        // each halts immediately, so the universal user must keep switching.
        let class = crate::enumeration::SliceEnumerator::new("halters").with(|| {
            Box::new(crate::strategy::FnUser::new("halter", |_ctx, _in| {
                crate::strategy::UserAction::HaltWith(UserOut::silence(), Halt::empty())
            })) as BoxedUser
        });
        let mut u = CompactUniversalUser::new(
            Box::new(class),
            Box::new(toy::ack_sensing()),
        );
        let mut rng = GocRng::seed_from_u64(2);
        for round in 0..10 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = u.step(&mut ctx, &UserIn::default());
        }
        assert!(u.switch_count() >= 9);
    }

    #[test]
    fn debug_and_name() {
        let u = universal(4, 5);
        assert!(format!("{u:?}").contains("CompactUniversalUser"));
        assert!(u.name().contains("compact-universal"));
        assert!(UserStrategy::halted(&u).is_none());
    }

    #[test]
    fn resume_policy_default_is_restart() {
        assert_eq!(ResumePolicy::default(), ResumePolicy::Restart);
        assert_eq!(universal(4, 5).policy(), ResumePolicy::Restart);
    }

    /// A stateful candidate: emits its own step count, so whether a revisit
    /// remembers previous visits is directly observable in the output.
    #[derive(Clone, Debug, Default)]
    struct CounterUser {
        n: u64,
    }

    impl UserStrategy for CounterUser {
        fn step(&mut self, _ctx: &mut StepCtx<'_>, _input: &UserIn) -> UserOut {
            let out = UserOut {
                to_server: crate::msg::Message::from(format!("{}", self.n)),
                to_world: crate::msg::Message::silence(),
            };
            self.n += 1;
            out
        }

        fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
            w.u64(self.n);
            Ok(())
        }

        fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.n = r.u64("counter")?;
            Ok(())
        }
    }

    /// Builds a universal user over two stateful counters whose sensing
    /// (Deadline with timeout 1 and no acks) fires a negative every round,
    /// forcing a switch per round.
    fn counting_universal(policy: ResumePolicy) -> CompactUniversalUser {
        let class = crate::enumeration::SliceEnumerator::new("counters")
            .with(|| Box::new(CounterUser::default()) as BoxedUser)
            .with(|| Box::new(CounterUser::default()) as BoxedUser);
        CompactUniversalUser::with_policy(
            Box::new(class),
            Box::new(Deadline::new(toy::ack_sensing(), 1)),
            policy,
        )
    }

    fn drive(mut u: CompactUniversalUser, rounds: u64) -> (Vec<UserOut>, CompactUniversalUser) {
        let mut rng = GocRng::seed_from_u64(9);
        let mut outs = Vec::new();
        for round in 0..rounds {
            let mut ctx = StepCtx::new(round, &mut rng);
            outs.push(u.step(&mut ctx, &UserIn::default()));
        }
        (outs, u)
    }

    #[test]
    fn resume_matches_replay_bit_for_bit() {
        let (replay_out, replay) = drive(counting_universal(ResumePolicy::Replay), 60);
        let (resume_out, resume) = drive(counting_universal(ResumePolicy::Resume), 60);
        assert_eq!(replay_out, resume_out);
        assert_eq!(replay.switch_log(), resume.switch_log());
        assert_eq!(resume.replayed_rounds(), 0);
        assert!(resume.resumed_switches() > 0, "revisits should resume");
        assert!(replay.replayed_rounds() > 0, "revisits should replay");
        assert_eq!(replay.resumed_switches(), 0);
    }

    #[test]
    fn resume_remembers_state_restart_forgets() {
        let (restart_out, _) = drive(counting_universal(ResumePolicy::Restart), 20);
        let (resume_out, _) = drive(counting_universal(ResumePolicy::Resume), 20);
        // Fresh candidates always emit "0"; a resumed candidate keeps
        // counting across revisits.
        assert!(restart_out
            .iter()
            .all(|o| o.to_server == crate::msg::Message::from("0")));
        assert!(resume_out
            .iter()
            .any(|o| o.to_server != crate::msg::Message::from("0")));
        // With two slots sharing 20 rounds, the busier counter must have
        // advanced well past 0 by the end.
        let max_count: u64 = resume_out
            .iter()
            .map(|o| {
                std::str::from_utf8(o.to_server.as_bytes()).unwrap().parse::<u64>().unwrap()
            })
            .max()
            .unwrap();
        assert!(max_count >= 10, "resumed counters should advance well past 0, got {max_count}");
    }

    #[test]
    fn snapshot_resumes_bit_identically_under_every_policy() {
        for policy in [ResumePolicy::Restart, ResumePolicy::Replay, ResumePolicy::Resume] {
            let mut live = counting_universal(policy);
            let mut rng = GocRng::seed_from_u64(31);
            for round in 0..37 {
                let mut ctx = StepCtx::new(round, &mut rng);
                let _ = live.step(&mut ctx, &UserIn::default());
            }
            let mut bytes = Vec::new();
            live.save_snap(&mut SnapWriter::new(&mut bytes)).unwrap();

            let mut restored = counting_universal(policy);
            let mut r = SnapReader::new(&bytes);
            restored.restore_snap(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(restored.current_index(), live.current_index());

            let mut rng2 = rng.clone();
            for round in 37..120 {
                let mut c1 = StepCtx::new(round, &mut rng);
                let mut c2 = StepCtx::new(round, &mut rng2);
                assert_eq!(
                    live.step(&mut c1, &UserIn::default()),
                    restored.step(&mut c2, &UserIn::default()),
                    "policy {policy:?} diverged at round {round}"
                );
            }
            assert_eq!(live.switch_log(), restored.switch_log());
            assert_eq!(live.replayed_rounds(), restored.replayed_rounds());
            assert_eq!(live.resumed_switches(), restored.resumed_switches());
        }
    }

    #[test]
    fn snapshot_restore_rejects_policy_mismatch() {
        let mut live = counting_universal(ResumePolicy::Resume);
        let mut rng = GocRng::seed_from_u64(32);
        for round in 0..10 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = live.step(&mut ctx, &UserIn::default());
        }
        let mut bytes = Vec::new();
        live.save_snap(&mut SnapWriter::new(&mut bytes)).unwrap();
        let mut wrong = counting_universal(ResumePolicy::Restart);
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            wrong.restore_snap(&mut r),
            Err(SnapError::Mismatch { context: "resume policy", .. })
        ));
    }

    #[test]
    fn replay_policy_still_achieves_the_goal() {
        for policy in [ResumePolicy::Replay, ResumePolicy::Resume] {
            let goal = toy::CompactMagicWordGoal::new("hi", 16);
            let user = CompactUniversalUser::with_policy(
                Box::new(toy::caesar_class("hi", 8, true)),
                Box::new(Deadline::new(toy::ack_sensing(), 8)),
                policy,
            );
            let mut rng = GocRng::seed_from_u64(42);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::with_shift(5)),
                Box::new(user),
                rng,
            );
            let t = exec.run(4000);
            assert!(
                evaluate_compact(&goal, &t).achieved(500),
                "policy {policy:?} failed to settle"
            );
        }
    }
}
