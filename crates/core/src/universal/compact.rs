//! The compact-goal universal user: enumerate and switch on negatives.

use super::schedule::Schedule;
use super::SwitchRecord;
use crate::enumeration::StrategyEnumerator;
use crate::msg::{UserIn, UserOut};
use crate::sensing::{BoxedSensing, Sensing};
use crate::strategy::{BoxedUser, Halt, StepCtx, UserStrategy};
use crate::view::ViewEvent;
use std::collections::VecDeque;
use std::fmt;

/// The universal user strategy for **compact** goals (Theorem 1, compact
/// case).
///
/// Runs the currently enumerated strategy and, whenever the sensing function
/// produces a **negative** indication, abandons it for the next strategy in
/// the schedule (default: triangular, so every strategy recurs infinitely
/// often). Sensing is reset at every switch so that one strategy's failures
/// are not held against its successor.
///
/// Correctness under the paper's hypotheses:
///
/// - *Safety* ensures a pairing that fails the goal generates infinitely many
///   negatives, so a failing strategy is always eventually abandoned.
/// - *Viability* ensures the viable strategy suffers only finitely many
///   negatives; since it recurs infinitely often in the schedule, the user
///   eventually adopts it after its last spurious negative and never leaves.
///
/// # Behaviour under faulted channels
///
/// A faulted user↔server link (see [`crate::channel`]) can at worst inject
/// spurious **negatives** — e.g. a dropped reply trips a
/// [`Deadline`](crate::sensing::Deadline) — which cost extra switches but
/// are harmless: the triangular schedule revisits every strategy infinitely
/// often, so a finite fault schedule adds only finitely many spurious
/// negatives and the settling argument goes through with a delayed "last
/// negative". Safety needs no caveat at all: compact acceptability is judged
/// by the referee on world states, and a safe sensing stays safe under any
/// view the channel can manufacture. This is exercised mechanically by the
/// `goc-testkit` conformance sweep.
///
/// # Examples
///
/// ```
/// use goc_core::prelude::*;
/// use goc_core::sensing::Deadline;
/// use goc_core::toy;
///
/// let goal = toy::CompactMagicWordGoal::new("hi", 16);
/// let class = toy::caesar_class("hi", 8, true);
/// let universal = CompactUniversalUser::new(
///     Box::new(class),
///     Box::new(Deadline::new(toy::ack_sensing(), 8)),
/// );
///
/// let mut rng = GocRng::seed_from_u64(5);
/// let mut exec = Execution::new(
///     goal.spawn_world(&mut rng),
///     Box::new(toy::RelayServer::with_shift(5)),
///     Box::new(universal),
///     rng,
/// );
/// let t = exec.run(2000);
/// assert!(evaluate_compact(&goal, &t).achieved(200));
/// ```
pub struct CompactUniversalUser {
    enumerator: Box<dyn StrategyEnumerator>,
    sensing: BoxedSensing,
    schedule: Schedule,
    current: BoxedUser,
    current_index: usize,
    switches: Vec<SwitchRecord>,
    pending_switch: bool,
    /// Speculatively pre-built `(index, candidate)` slots, consumed strictly
    /// in schedule order (see [`super::finite::LOOKAHEAD`]).
    lookahead: VecDeque<(usize, BoxedUser)>,
}

impl fmt::Debug for CompactUniversalUser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompactUniversalUser")
            .field("enumerator", &self.enumerator.name())
            .field("sensing", &self.sensing.name())
            .field("current_index", &self.current_index)
            .field("switches", &self.switches.len())
            .finish()
    }
}

impl CompactUniversalUser {
    /// Builds the universal user over `enumerator` with the given `sensing`,
    /// using the (correct) triangular schedule.
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty.
    pub fn new(enumerator: Box<dyn StrategyEnumerator>, sensing: BoxedSensing) -> Self {
        assert!(!enumerator.is_empty(), "universal user needs a non-empty strategy class");
        let schedule = Schedule::triangular(enumerator.len());
        Self::with_schedule(enumerator, sensing, schedule)
    }

    /// Builds the universal user with an explicit schedule (ablation E8 uses
    /// [`Schedule::linear`]).
    ///
    /// # Panics
    ///
    /// Panics if the enumeration is empty or the schedule yields an index the
    /// enumeration cannot instantiate.
    pub fn with_schedule(
        enumerator: Box<dyn StrategyEnumerator>,
        sensing: BoxedSensing,
        schedule: Schedule,
    ) -> Self {
        assert!(!enumerator.is_empty(), "universal user needs a non-empty strategy class");
        let mut user = CompactUniversalUser {
            enumerator,
            sensing,
            schedule,
            current: Box::new(crate::strategy::SilentUser),
            current_index: 0,
            switches: Vec::new(),
            pending_switch: false,
            lookahead: VecDeque::new(),
        };
        let (first, candidate) = user.next_candidate();
        user.current = candidate;
        user.current_index = first;
        user
    }

    /// Index (in the enumeration) of the strategy currently running.
    pub fn current_index(&self) -> usize {
        self.current_index
    }

    /// Number of strategy switches performed so far.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The full switch log (for the overhead experiments).
    pub fn switch_log(&self) -> &[SwitchRecord] {
        &self.switches
    }

    /// Pops the next scheduled `(index, candidate)`, refilling the
    /// speculative lookahead in one [`StrategyEnumerator::batch`] call when
    /// it runs dry (same reasoning as the Levin user's lookahead:
    /// construction is pure and adoption order is unchanged).
    fn next_candidate(&mut self) -> (usize, BoxedUser) {
        if self.lookahead.is_empty() {
            let indices: Vec<usize> = (0..super::finite::LOOKAHEAD)
                .map(|_| self.schedule.next().expect("schedules are infinite"))
                .collect();
            for (&index, candidate) in indices.iter().zip(self.enumerator.batch(&indices)) {
                let candidate =
                    candidate.expect("schedule yielded an index outside the enumeration");
                self.lookahead.push_back((index, candidate));
            }
        }
        self.lookahead.pop_front().expect("lookahead was just refilled")
    }

    fn switch(&mut self, round: u64) {
        let (next, fresh) = self.next_candidate();
        self.switches.push(SwitchRecord {
            round,
            from_index: self.current_index,
            to_index: next,
        });
        self.current = fresh;
        self.current_index = next;
        self.sensing.reset();
        self.pending_switch = false;
    }
}

impl UserStrategy for CompactUniversalUser {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.pending_switch {
            self.switch(ctx.round);
        }
        let out = self.current.step(ctx, input);
        let event = ViewEvent { round: ctx.round, received: input.clone(), sent: out.clone() };
        let indication = self.sensing.observe(&event);
        if indication.is_negative() {
            // Switch at the *start* of the next round so this round's output
            // (already computed) stays consistent with the strategy that
            // produced it.
            self.pending_switch = true;
        }
        if self.current.halted().is_some() {
            // A halted inner strategy is silent forever: for a compact goal
            // that is abandonment, so move on.
            self.pending_switch = true;
        }
        out
    }

    fn halted(&self) -> Option<Halt> {
        None // compact-goal users run forever
    }

    fn name(&self) -> String {
        format!("compact-universal({})", self.enumerator.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;
    use crate::goal::{evaluate_compact, Goal};
    use crate::rng::GocRng;
    use crate::sensing::Deadline;
    use crate::toy;

    fn universal(shifts: u8, timeout: u64) -> CompactUniversalUser {
        CompactUniversalUser::new(
            Box::new(toy::caesar_class("hi", shifts, true)),
            Box::new(Deadline::new(toy::ack_sensing(), timeout)),
        )
    }

    fn run_against(shift: u8, user: CompactUniversalUser, horizon: u64, seed: u64) -> bool {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(shift)),
            Box::new(user),
            rng,
        );
        let t = exec.run(horizon);
        evaluate_compact(&goal, &t).achieved(horizon / 8)
    }

    #[test]
    fn finds_the_compatible_strategy_for_every_server() {
        for shift in 0..8u8 {
            assert!(
                run_against(shift, universal(8, 8), 4000, 100 + shift as u64),
                "failed against shift {shift}"
            );
        }
    }

    #[test]
    fn settles_and_stops_switching() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let mut rng = GocRng::seed_from_u64(7);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(3)),
            Box::new(universal(8, 8)),
            rng,
        );
        exec.run(4000);
        // Downcast via Debug: we can't retrieve the user from the execution
        // generically, so instead run the universal user manually below.
        // (Settling is asserted by the flawless tail of the verdict.)
        let t = exec.into_transcript();
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(500), "verdict: {v:?}");
    }

    #[test]
    fn switch_log_counts_abandonments() {
        // Drive the universal user by hand against nothing: ack never comes,
        // so Deadline fires every `timeout` rounds and the user cycles.
        let mut u = universal(4, 5);
        let mut rng = GocRng::seed_from_u64(1);
        assert_eq!(u.current_index(), 0);
        for round in 0..100 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = u.step(&mut ctx, &UserIn::default());
        }
        assert!(u.switch_count() >= 10, "switches: {}", u.switch_count());
        // Triangular over 4: indices cycle 0,0,1,0,1,2,...
        let first: Vec<usize> = u.switch_log().iter().take(3).map(|s| s.to_index).collect();
        assert_eq!(first, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty strategy class")]
    fn empty_class_panics() {
        let _ = CompactUniversalUser::new(
            Box::new(crate::enumeration::SliceEnumerator::new("empty")),
            Box::new(toy::ack_sensing()),
        );
    }

    #[test]
    fn linear_schedule_ablation_can_strand() {
        // With a *linear* schedule and sensing so impatient it produces a
        // spurious negative before the correct strategy can earn its ack,
        // the naive user abandons every strategy once and strands on the
        // last one. The triangular user recovers because strategies recur.
        //
        // Deadline timeout 2 < 3 rounds needed for the first ack round-trip.
        let mk = |schedule: Schedule| {
            CompactUniversalUser::with_schedule(
                Box::new(toy::caesar_class("hi", 4, true)),
                Box::new(Deadline::new(toy::ack_sensing(), 2)),
                schedule,
            )
        };
        let goal = toy::CompactMagicWordGoal::new("hi", 16);

        let run = |user: CompactUniversalUser| {
            let mut rng = GocRng::seed_from_u64(11);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::with_shift(1)),
                Box::new(user),
                rng,
            );
            let t = exec.run(3000);
            evaluate_compact(&goal, &t)
        };

        let linear = run(mk(Schedule::linear(Some(4))));
        let triangular = run(mk(Schedule::triangular(Some(4))));
        // The linear user strands on index 3 (wrong shift): goal not achieved.
        assert!(!linear.achieved(300), "linear: {linear:?}");
        // Even the triangular user cannot *settle* (negatives keep firing
        // with timeout 2), but it keeps revisiting the right strategy, so it
        // outperforms linear on successes; assert it at least heard acks.
        assert!(triangular.bad_prefixes <= linear.bad_prefixes);
    }

    #[test]
    fn halted_inner_strategy_triggers_switch() {
        // A class of finite (halting) users inside a compact universal user:
        // each halts immediately, so the universal user must keep switching.
        let class = crate::enumeration::SliceEnumerator::new("halters").with(|| {
            Box::new(crate::strategy::FnUser::new("halter", |_ctx, _in| {
                crate::strategy::UserAction::HaltWith(UserOut::silence(), Halt::empty())
            })) as BoxedUser
        });
        let mut u = CompactUniversalUser::new(
            Box::new(class),
            Box::new(toy::ack_sensing()),
        );
        let mut rng = GocRng::seed_from_u64(2);
        for round in 0..10 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = u.step(&mut ctx, &UserIn::default());
        }
        assert!(u.switch_count() >= 9);
    }

    #[test]
    fn debug_and_name() {
        let u = universal(4, 5);
        assert!(format!("{u:?}").contains("CompactUniversalUser"));
        assert!(u.name().contains("compact-universal"));
        assert!(UserStrategy::halted(&u).is_none());
    }
}
