//! Universal user strategies — Theorem 1 as code.
//!
//! > *For any (compact or finite) goal and any class of server strategies for
//! > which there exists safe and viable sensing, there exists a universal
//! > user strategy.*
//!
//! The two constructions in the paper's proof sketch are:
//!
//! - **Compact goals** ([`CompactUniversalUser`]): enumerate the relevant
//!   user strategies and *switch from the current strategy to the next when a
//!   negative indication is obtained* from sensing. The enumeration must let
//!   every strategy recur infinitely often (see
//!   [`TriangularSchedule`](crate::enumeration::TriangularSchedule)), because
//!   viability only bounds the number of negatives for a viable strategy.
//!
//! - **Finite goals** ([`LevinUniversalUser`]): enumerate strategies "in
//!   parallel" à la Levin's universal search — candidate *i* runs with a
//!   budget proportional to 2^(k−i) in phase *k* — and *use sensing to decide
//!   when to stop*. Safety of sensing makes halting on a positive indication
//!   sound; viability guarantees a positive eventually arrives with any
//!   helpful server.

mod compact;
mod finite;
mod schedule;

pub use compact::{CompactUniversalUser, ResumePolicy};
pub use finite::LevinUniversalUser;
pub use schedule::{BudgetSchedule, LevinSchedule, RoundRobinDoubling, Schedule};

/// One strategy switch made by a universal user, for diagnostics and the
/// overhead experiments (E3, E4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Round at which the switch happened.
    pub round: u64,
    /// Index of the strategy abandoned.
    pub from_index: usize,
    /// Index of the strategy adopted.
    pub to_index: usize,
}

impl crate::snap::SnapState for SwitchRecord {
    fn encode(&self, w: &mut crate::snap::SnapWriter<'_>) {
        w.u64(self.round);
        w.usize(self.from_index);
        w.usize(self.to_index);
    }
    fn decode(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(SwitchRecord {
            round: r.u64("switch round")?,
            from_index: r.usize("switch from")?,
            to_index: r.usize("switch to")?,
        })
    }
}
