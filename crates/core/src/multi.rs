//! The multi-party setting, by reduction to two parties.
//!
//! The paper focuses on one user and one server, remarking (footnote 1) that
//! the full version treats settings with more than two parties "primarily
//! \[by\] a reduction to the two-party setting". This module implements that
//! reduction:
//!
//! - [`CompositeServer`] bundles several servers into one. The user
//!   addresses individual members by prefixing messages with a server index
//!   byte; replies come back tagged with the sender's index.
//! - [`Addressed`] lifts any single-server user strategy to talk to member
//!   `i` of a composite.
//! - [`addressed_class`] builds the product class {server index} × {inner
//!   strategies}; running a universal user over it *is* the multi-party
//!   universal user: it discovers both **which** server can help and **how**
//!   to talk to it.

use crate::enumeration::StrategyEnumerator;
use crate::msg::{Message, ServerIn, ServerOut, UserIn, UserOut};
use crate::strategy::{BoxedServer, BoxedUser, Halt, ServerStrategy, StepCtx, UserStrategy};
use std::fmt;

/// Frames a payload for member `index` of a composite server.
pub fn address(index: u8, payload: &[u8]) -> Message {
    let mut bytes = Vec::with_capacity(payload.len() + 1);
    bytes.push(index);
    bytes.extend_from_slice(payload);
    Message::from_bytes(bytes)
}

/// Splits an addressed message into `(index, payload)`.
pub fn unaddress(message: &Message) -> Option<(u8, &[u8])> {
    let bytes = message.as_bytes();
    let (&index, payload) = bytes.split_first()?;
    Some((index, payload))
}

/// Several servers behind one channel.
///
/// Routing semantics (fixed by the reduction, documented for users):
///
/// - user → composite: `[i][payload]` delivers `payload` to member `i`;
///   unaddressed or out-of-range messages are dropped.
/// - composite → user: a member's reply `r` is delivered as `[i][r]`. If
///   several members reply in one round, the lowest index wins and the rest
///   are dropped (one channel, one message per round — the user can poll).
/// - world ↔ members: the world's message is broadcast to every member;
///   the lowest-indexed non-silent member message reaches the world.
///
/// # Examples
///
/// ```
/// use goc_core::multi::CompositeServer;
/// use goc_core::strategy::{EchoServer, SilentServer};
///
/// let composite = CompositeServer::new(vec![
///     Box::new(SilentServer),
///     Box::new(EchoServer),
/// ]);
/// assert_eq!(composite.len(), 2);
/// ```
pub struct CompositeServer {
    members: Vec<BoxedServer>,
}

impl fmt::Debug for CompositeServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompositeServer").field("members", &self.members.len()).finish()
    }
}

impl CompositeServer {
    /// Bundles `members` (at most 256) into one server.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or has more than 256 members.
    pub fn new(members: Vec<BoxedServer>) -> Self {
        assert!(!members.is_empty(), "CompositeServer requires at least one member");
        assert!(members.len() <= 256, "CompositeServer supports at most 256 members");
        CompositeServer { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `false` (construction forbids empty composites); kept for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl ServerStrategy for CompositeServer {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        let target = unaddress(&input.from_user)
            .filter(|(i, _)| (*i as usize) < self.members.len());
        let mut to_user = Message::silence();
        let mut to_world = Message::silence();
        for (i, member) in self.members.iter_mut().enumerate() {
            let member_in = ServerIn {
                from_user: match target {
                    Some((t, payload)) if t as usize == i => {
                        Message::from_bytes(payload.to_vec())
                    }
                    _ => Message::silence(),
                },
                from_world: input.from_world.clone(),
            };
            let out = member.step(ctx, &member_in);
            if to_user.is_silence() && !out.to_user.is_silence() {
                to_user = address(i as u8, out.to_user.as_bytes());
            }
            if to_world.is_silence() && !out.to_world.is_silence() {
                to_world = out.to_world;
            }
        }
        ServerOut { to_user, to_world }
    }

    fn name(&self) -> String {
        format!("composite(x{})", self.members.len())
    }
}

/// Lifts a single-server user strategy to talk to member `index` of a
/// composite: outgoing server messages are addressed, incoming replies from
/// other members are filtered out and the tag stripped.
#[derive(Debug)]
pub struct Addressed {
    index: u8,
    inner: BoxedUser,
}

impl Addressed {
    /// Wraps `inner` to converse with member `index`.
    pub fn new(index: u8, inner: BoxedUser) -> Self {
        Addressed { index, inner }
    }
}

impl UserStrategy for Addressed {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        let from_server = match unaddress(&input.from_server) {
            Some((i, payload)) if i == self.index => Message::from_bytes(payload.to_vec()),
            _ => Message::silence(),
        };
        let inner_in = UserIn { from_server, from_world: input.from_world.clone() };
        let mut out = self.inner.step(ctx, &inner_in);
        if !out.to_server.is_silence() {
            out.to_server = address(self.index, out.to_server.as_bytes());
        }
        out
    }

    fn halted(&self) -> Option<Halt> {
        self.inner.halted()
    }

    fn name(&self) -> String {
        format!("addressed({}, {})", self.index, self.inner.name())
    }
}

/// The product class {0, …, servers−1} × `inner`: strategy `k` of the result
/// is `Addressed::new(k / |inner|, inner[k % |inner|])`.
///
/// Feeding this class to a universal user yields the **multi-party universal
/// user** of the reduction.
pub struct AddressedClass {
    inner: Box<dyn StrategyEnumerator>,
    servers: usize,
}

impl fmt::Debug for AddressedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressedClass")
            .field("inner", &self.inner.name())
            .field("servers", &self.servers)
            .finish()
    }
}

/// Builds the product class (see [`AddressedClass`]).
///
/// # Panics
///
/// Panics if `servers` is 0 or exceeds 256, or if `inner` is infinite (the
/// product of an infinite class is re-ordered; address explicitly instead).
pub fn addressed_class(inner: Box<dyn StrategyEnumerator>, servers: usize) -> AddressedClass {
    assert!((1..=256).contains(&servers), "servers must be in 1..=256");
    assert!(inner.len().is_some(), "addressed_class requires a finite inner class");
    AddressedClass { inner, servers }
}

impl StrategyEnumerator for AddressedClass {
    fn len(&self) -> Option<usize> {
        self.inner.len().map(|n| n * self.servers)
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        let n = self.inner.len()?;
        if n == 0 {
            return None;
        }
        let server = index / n;
        if server >= self.servers {
            return None;
        }
        let inner = self.inner.strategy(index % n)?;
        Some(Box::new(Addressed::new(server as u8, inner)))
    }

    fn name(&self) -> String {
        format!("{} @ {} servers", self.inner.name(), self.servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;
    use crate::goal::{evaluate_finite, Goal};
    use crate::rng::GocRng;
    use crate::strategy::{EchoServer, SilentServer};
    use crate::toy;

    #[test]
    fn address_roundtrip() {
        let m = address(3, b"hello");
        assert_eq!(unaddress(&m), Some((3u8, b"hello".as_slice())));
        assert_eq!(unaddress(&Message::silence()), None);
    }

    #[test]
    fn composite_routes_to_the_addressed_member() {
        let mut composite = CompositeServer::new(vec![
            Box::new(SilentServer),
            Box::new(EchoServer),
        ]);
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        // Address member 1 (the echo server).
        let out = composite.step(
            &mut ctx,
            &ServerIn { from_user: address(1, b"ping"), from_world: Message::silence() },
        );
        assert_eq!(unaddress(&out.to_user), Some((1u8, b"ping".as_slice())));
        // Address member 0 (silent): no reply.
        let mut ctx = StepCtx::new(1, &mut rng);
        let out = composite.step(
            &mut ctx,
            &ServerIn { from_user: address(0, b"ping"), from_world: Message::silence() },
        );
        assert!(out.to_user.is_silence());
    }

    #[test]
    fn composite_drops_out_of_range_and_unaddressed() {
        let mut composite = CompositeServer::new(vec![Box::new(EchoServer)]);
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = composite.step(
            &mut ctx,
            &ServerIn { from_user: address(5, b"ping"), from_world: Message::silence() },
        );
        assert!(out.to_user.is_silence());
        let mut ctx = StepCtx::new(1, &mut rng);
        let out = composite.step(
            &mut ctx,
            &ServerIn { from_user: Message::silence(), from_world: Message::silence() },
        );
        assert!(out.to_user.is_silence());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_composite_panics() {
        let _ = CompositeServer::new(vec![]);
    }

    #[test]
    fn addressed_class_is_the_product() {
        let class = addressed_class(Box::new(toy::caesar_class("hi", 4, false)), 3);
        assert_eq!(class.len(), Some(12));
        assert!(class.strategy(11).is_some());
        assert!(class.strategy(12).is_none());
        // Strategy 4*1 + 2 targets server 1 with inner strategy 2.
        let s = class.strategy(6).unwrap();
        assert!(s.name().starts_with("addressed(1,"));
    }

    #[test]
    fn multi_party_universal_user_finds_the_helpful_member() {
        // Three servers behind one channel: a silent one, a wrong-shift
        // relay, and a relay with shift 2. Only members that can deliver
        // the magic word to the world matter; the universal user must find
        // (member, strategy) jointly.
        let goal = toy::MagicWordGoal::new("hi");
        let composite = || {
            Box::new(CompositeServer::new(vec![
                Box::new(SilentServer),
                Box::new(EchoServer),
                Box::new(toy::RelayServer::with_shift(2)),
            ])) as BoxedServer
        };
        let class = addressed_class(Box::new(toy::caesar_class("hi", 4, false)), 3);
        let universal = crate::universal::LevinUniversalUser::round_robin(
            Box::new(class),
            Box::new(toy::ack_sensing()),
            8,
        );
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec =
            Execution::new(goal.spawn_world(&mut rng), composite(), Box::new(universal), rng);
        let t = exec.run(50_000);
        let v = evaluate_finite(&goal, &t);
        assert!(v.achieved, "multi-party reduction failed: {v:?}");
    }

    #[test]
    fn multi_party_safety_with_no_helpful_member() {
        let goal = toy::MagicWordGoal::new("hi");
        let composite = CompositeServer::new(vec![
            Box::new(SilentServer),
            Box::new(EchoServer),
        ]);
        let class = addressed_class(Box::new(toy::caesar_class("hi", 4, false)), 2);
        let universal = crate::universal::LevinUniversalUser::round_robin(
            Box::new(class),
            Box::new(toy::ack_sensing()),
            8,
        );
        let mut rng = GocRng::seed_from_u64(2);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(composite),
            Box::new(universal),
            rng,
        );
        let t = exec.run(20_000);
        let v = evaluate_finite(&goal, &t);
        assert!(!v.halted);
        assert!(!v.achieved);
    }

    #[test]
    fn addressed_halt_passes_through() {
        let inner: BoxedUser = Box::new(toy::SayThrough::new("hi"));
        let mut a = Addressed::new(0, inner);
        let mut rng = GocRng::seed_from_u64(3);
        let mut ctx = StepCtx::new(0, &mut rng);
        // World ACK reaches the inner user unchanged (world channel is not
        // addressed).
        let input = UserIn {
            from_server: Message::silence(),
            from_world: Message::from(toy::ACK),
        };
        let _ = a.step(&mut ctx, &input);
        assert!(UserStrategy::halted(&a).is_some());
    }

    #[test]
    fn addressed_tags_outgoing_and_strips_incoming() {
        let inner: BoxedUser = Box::new(toy::SayThrough::new("hi"));
        let mut a = Addressed::new(7, inner);
        let mut rng = GocRng::seed_from_u64(4);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = a.step(&mut ctx, &UserIn::default());
        let (idx, payload) = unaddress(&out.to_server).unwrap();
        assert_eq!(idx, 7);
        assert_eq!(payload, b"hi");
    }
}
