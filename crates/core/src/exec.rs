//! The synchronous execution engine.
//!
//! An *execution* (paper §2) is the evolution of the system formed by a user,
//! a server and a world. Rounds are synchronous: at round *t* every party
//! consumes the messages sent to it at round *t − 1* and emits the messages
//! to be delivered at round *t + 1*. The engine records
//!
//! - the sequence of world states (the referee's input), and
//! - the user's view (the sensing functions' input),
//!
//! into a [`Transcript`].
//!
//! Each direction of the user↔server link carries a
//! [`Channel`](crate::channel::Channel); [`Execution::new`] installs
//! [`Perfect`] channels (the exact identity), while
//! [`Execution::with_channels`] runs the link through adversarial fault
//! models from [`crate::channel`].

use crate::channel::{BoxedChannel, Perfect};
use crate::msg::{Message, ServerIn, UserIn, WorldIn};
use crate::rng::GocRng;
use crate::snap::{ForkError, SnapError, SnapReader, SnapState, SnapWriter};
use crate::strategy::{Halt, ServerStrategy, StepCtx, UserStrategy, WorldStrategy};
use crate::view::{UserView, ViewEvent};

/// Why an execution run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The user halted (finite goals) with the contained verdict.
    UserHalted(Halt),
    /// The round horizon was exhausted.
    HorizonExhausted,
}

impl SnapState for StopReason {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        match self {
            StopReason::HorizonExhausted => w.u8(0),
            StopReason::UserHalted(h) => {
                w.u8(1);
                h.encode(w);
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8("stop reason tag")? {
            0 => StopReason::HorizonExhausted,
            1 => StopReason::UserHalted(Halt::decode(r)?),
            found => return Err(SnapError::BadTag { context: "stop reason tag", found }),
        })
    }
}

/// The recorded outcome of a run: world-state history plus user view.
#[derive(Clone, Debug)]
pub struct Transcript<S> {
    /// World states; `world_states[0]` is the initial state (before round 0)
    /// and `world_states[t + 1]` the state after round `t`.
    pub world_states: Vec<S>,
    /// The user's per-round view.
    pub view: UserView,
    /// Number of rounds executed.
    pub rounds: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

impl<S> Transcript<S> {
    /// The user's halting verdict, if it halted.
    pub fn halt(&self) -> Option<&Halt> {
        match &self.stop {
            StopReason::UserHalted(h) => Some(h),
            StopReason::HorizonExhausted => None,
        }
    }

    /// A borrowing view of this transcript (no cloning).
    pub fn as_view(&self) -> TranscriptView<'_, S> {
        TranscriptView {
            world_states: &self.world_states,
            view: &self.view,
            rounds: self.rounds,
            stop: &self.stop,
        }
    }
}

/// A borrowing view of an execution's recorded history: same shape as
/// [`Transcript`], zero copies.
///
/// Produced by [`Execution::transcript_view`] (over the live history) and
/// [`Transcript::as_view`]. Sensing probes and referees that only *read* the
/// history should consume this instead of a cloned [`Transcript`], so each
/// probe costs O(new events) rather than O(history) — the clone-the-world
/// snapshot is reserved for callers that genuinely need ownership.
#[derive(Debug)]
pub struct TranscriptView<'a, S> {
    /// World states; `world_states[0]` is the initial state.
    pub world_states: &'a [S],
    /// The user's per-round view.
    pub view: &'a UserView,
    /// Number of rounds executed.
    pub rounds: u64,
    /// Why (or whether) the run stopped.
    pub stop: &'a StopReason,
}

// Manual impls: the view only holds references, so it is `Copy` regardless
// of whether `S` itself is (a derive would demand `S: Copy`).
impl<S> Clone for TranscriptView<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for TranscriptView<'_, S> {}

impl<'a, S> TranscriptView<'a, S> {
    /// The user's halting verdict, if it halted.
    pub fn halt(&self) -> Option<&'a Halt> {
        match self.stop {
            StopReason::UserHalted(h) => Some(h),
            StopReason::HorizonExhausted => None,
        }
    }

    /// An owned transcript, cloning the borrowed history.
    pub fn to_transcript(&self) -> Transcript<S>
    where
        S: Clone,
    {
        Transcript {
            world_states: self.world_states.to_vec(),
            view: self.view.clone(),
            rounds: self.rounds,
            stop: self.stop.clone(),
        }
    }
}

/// A running (user, server, world) system.
///
/// The engine is generic over the world (whose state type the referee needs)
/// and takes the user and server as trait objects, mirroring the theory: the
/// goal fixes the world, while user and server vary over classes.
///
/// # Examples
///
/// ```
/// use goc_core::exec::Execution;
/// use goc_core::msg::{WorldIn, WorldOut};
/// use goc_core::rng::GocRng;
/// use goc_core::strategy::{EchoServer, SilentUser, StepCtx, WorldStrategy};
///
/// /// A world that counts rounds.
/// #[derive(Debug, Default)]
/// struct Clock {
///     ticks: u64,
/// }
///
/// impl WorldStrategy for Clock {
///     type State = u64;
///     fn step(&mut self, _: &mut StepCtx<'_>, _: &WorldIn) -> WorldOut {
///         self.ticks += 1;
///         WorldOut::silence()
///     }
///     fn state(&self) -> u64 {
///         self.ticks
///     }
/// }
///
/// let mut exec = Execution::new(
///     Clock::default(),
///     Box::new(EchoServer),
///     Box::new(SilentUser),
///     GocRng::seed_from_u64(7),
/// );
/// let t = exec.run(10);
/// assert_eq!(t.rounds, 10);
/// assert_eq!(t.world_states, (0..=10).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct Execution<W: WorldStrategy> {
    world: W,
    server: Box<dyn ServerStrategy>,
    user: Box<dyn UserStrategy>,
    user_rng: GocRng,
    server_rng: GocRng,
    world_rng: GocRng,
    // Channels on the user↔server link (the adversarial surface of the
    // theory). The world links stay direct: the referee judges world states,
    // so tampering there would change the goal, not the communication.
    up_channel: BoxedChannel,
    down_channel: BoxedChannel,
    up_rng: GocRng,
    down_rng: GocRng,
    round: u64,
    // In-flight messages (sent last round, delivered next round).
    user_to_server: Message,
    user_to_world: Message,
    server_to_user: Message,
    server_to_world: Message,
    world_to_user: Message,
    world_to_server: Message,
    world_states: Vec<W::State>,
    view: UserView,
    // Owned StopReason backing the most recent `transcript_view` borrow.
    stop_cache: StopReason,
}

impl<W: WorldStrategy> Execution<W> {
    /// Creates an execution with [`Perfect`] channels on both directions of
    /// the user↔server link. `rng` seeds independent party streams.
    pub fn new(
        world: W,
        server: Box<dyn ServerStrategy>,
        user: Box<dyn UserStrategy>,
        rng: GocRng,
    ) -> Self {
        Execution::with_channels(world, server, user, rng, Box::new(Perfect), Box::new(Perfect))
    }

    /// Creates an execution with explicit channels: `up` carries user→server
    /// traffic, `down` carries server→user traffic. Each channel draws from
    /// its own rng fork (streams 4 and 5), so faulty channels never perturb
    /// the party streams — with two [`Perfect`] channels this is
    /// byte-for-byte [`Execution::new`].
    pub fn with_channels(
        world: W,
        server: Box<dyn ServerStrategy>,
        user: Box<dyn UserStrategy>,
        rng: GocRng,
        up: BoxedChannel,
        down: BoxedChannel,
    ) -> Self {
        let initial = world.state();
        Execution {
            world,
            server,
            user,
            user_rng: rng.fork(1),
            server_rng: rng.fork(2),
            world_rng: rng.fork(3),
            up_channel: up,
            down_channel: down,
            up_rng: rng.fork(4),
            down_rng: rng.fork(5),
            round: 0,
            user_to_server: Message::silence(),
            user_to_world: Message::silence(),
            server_to_user: Message::silence(),
            server_to_world: Message::silence(),
            world_to_user: Message::silence(),
            world_to_server: Message::silence(),
            world_states: vec![initial],
            view: UserView::new(),
            stop_cache: StopReason::HorizonExhausted,
        }
    }

    /// The current round index (number of completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The world-state history so far (initial state first).
    pub fn world_states(&self) -> &[W::State] {
        &self.world_states
    }

    /// The user's view so far.
    pub fn view(&self) -> &UserView {
        &self.view
    }

    /// A reference to the (running) user strategy.
    pub fn user(&self) -> &dyn UserStrategy {
        &*self.user
    }

    /// Replaces the user strategy mid-execution (used by experiments that
    /// model strategy hand-off; the universal users instead switch
    /// internally). In-flight messages are preserved: the world and server
    /// cannot observe the swap except through subsequent behaviour.
    pub fn swap_user(&mut self, user: Box<dyn UserStrategy>) -> Box<dyn UserStrategy> {
        std::mem::replace(&mut self.user, user)
    }

    /// Replaces the server strategy mid-execution. Used by forgivingness
    /// checks, which extend an arbitrary partial history with a known-good
    /// (user, server) pair.
    pub fn swap_server(&mut self, server: Box<dyn ServerStrategy>) -> Box<dyn ServerStrategy> {
        std::mem::replace(&mut self.server, server)
    }

    /// Executes a single synchronous round.
    pub fn step(&mut self) {
        let user_in = UserIn {
            from_server: self.server_to_user.clone(),
            from_world: self.world_to_user.clone(),
        };
        let server_in = ServerIn {
            from_user: self.user_to_server.clone(),
            from_world: self.world_to_server.clone(),
        };
        let world_in = WorldIn {
            from_user: self.user_to_world.clone(),
            from_server: self.server_to_world.clone(),
        };

        let user_out = {
            let mut ctx = StepCtx::new(self.round, &mut self.user_rng);
            self.user.step(&mut ctx, &user_in)
        };
        let server_out = {
            let mut ctx = StepCtx::new(self.round, &mut self.server_rng);
            self.server.step(&mut ctx, &server_in)
        };
        let world_out = {
            let mut ctx = StepCtx::new(self.round, &mut self.world_rng);
            self.world.step(&mut ctx, &world_in)
        };

        self.view.push(ViewEvent { round: self.round, received: user_in, sent: user_out.clone() });
        self.world_states.push(self.world.state());

        // The user↔server link runs through the channels; a Perfect channel
        // is the identity and consumes no randomness.
        self.user_to_server = {
            let mut ctx = StepCtx::new(self.round, &mut self.up_rng);
            self.up_channel.transmit(&mut ctx, user_out.to_server)
        };
        self.user_to_world = user_out.to_world;
        self.server_to_user = {
            let mut ctx = StepCtx::new(self.round, &mut self.down_rng);
            self.down_channel.transmit(&mut ctx, server_out.to_user)
        };
        self.server_to_world = server_out.to_world;
        self.world_to_user = world_out.to_user;
        self.world_to_server = world_out.to_server;

        self.round += 1;
    }

    /// Runs until the user halts or `horizon` **additional** rounds have
    /// elapsed, then returns the transcript of the whole execution so far.
    ///
    /// The halting check runs after each round, so a user that halts in its
    /// `step` stops the run at the end of that round.
    pub fn run(&mut self, horizon: u64) -> Transcript<W::State> {
        let start = self.round;
        let mut span = crate::obs::span("exec.run", horizon);
        let mut stop = StopReason::HorizonExhausted;
        if let Some(h) = self.user.halted() {
            stop = StopReason::UserHalted(h);
        } else {
            for _ in 0..horizon {
                self.step();
                if let Some(h) = self.user.halted() {
                    stop = StopReason::UserHalted(h);
                    break;
                }
            }
        }
        let executed = self.round - start;
        span.set_exit(executed);
        crate::obs_count!("exec.rounds", executed);
        crate::obs_hist!("exec.run.rounds", executed);
        if matches!(stop, StopReason::UserHalted(_)) {
            crate::obs_count!("exec.halts", 1u64);
        }
        self.snapshot(stop)
    }

    /// Runs exactly `horizon` additional rounds, **ignoring** user halting:
    /// a halted user stays silent while the server and world keep evolving.
    ///
    /// This is the right driver for *compact* goals, where the system runs
    /// forever regardless of what the user does; [`run`](Self::run) is the
    /// driver for finite goals.
    pub fn run_for(&mut self, horizon: u64) -> Transcript<W::State> {
        let mut span = crate::obs::span("exec.run_for", horizon);
        for _ in 0..horizon {
            self.step();
        }
        span.set_exit(horizon);
        crate::obs_count!("exec.rounds", horizon);
        crate::obs_hist!("exec.run.rounds", horizon);
        self.snapshot(self.stop_reason())
    }

    /// The stop reason the execution would report right now.
    fn stop_reason(&self) -> StopReason {
        match self.user.halted() {
            Some(h) => StopReason::UserHalted(h),
            None => StopReason::HorizonExhausted,
        }
    }

    /// The single owned-snapshot site: clones the recorded history into a
    /// [`Transcript`]. `run` and `run_for` both funnel through here;
    /// read-only consumers should prefer
    /// [`transcript_view`](Self::transcript_view).
    fn snapshot(&self, stop: StopReason) -> Transcript<W::State> {
        Transcript {
            world_states: self.world_states.clone(),
            view: self.view.clone(),
            rounds: self.round,
            stop,
        }
    }

    /// A borrowing view of the history so far — no cloning. The view's stop
    /// reason reflects the user's current halt status.
    pub fn transcript_view(&mut self) -> TranscriptView<'_, W::State> {
        self.stop_cache = self.stop_reason();
        TranscriptView {
            world_states: &self.world_states,
            view: &self.view,
            rounds: self.round,
            stop: &self.stop_cache,
        }
    }

    /// Pre-reserves history capacity for `rounds` further rounds, so the
    /// recording `Vec`s never reallocate inside the round loop. Benches use
    /// this to make the steady-state loop allocation-free.
    pub fn reserve_rounds(&mut self, rounds: u64) {
        let rounds = usize::try_from(rounds).unwrap_or(usize::MAX);
        self.world_states.reserve(rounds);
        self.view.reserve(rounds);
    }

    /// Discards the recorded history (keeping its capacity) and re-records
    /// the current world state as the new "initial" state. The round
    /// counter, party states and in-flight messages are untouched.
    ///
    /// This is for long-running perf harnesses that would otherwise grow the
    /// history without bound; referees judging the execution should be fed
    /// the history *before* it is forgotten.
    pub fn reset_history(&mut self) {
        self.world_states.clear();
        self.world_states.push(self.world.state());
        self.view.clear();
    }

    /// Consumes the execution and returns its final transcript without
    /// running further rounds.
    pub fn into_transcript(self) -> Transcript<W::State> {
        let stop = self.stop_reason();
        Transcript {
            world_states: self.world_states,
            view: self.view,
            rounds: self.round,
            stop,
        }
    }
}

impl<W: WorldStrategy> Execution<W> {
    /// Serializes the entire execution — round counter, rng streams,
    /// channel stacks (including pending fault-schedule positions),
    /// in-flight messages, party states, and the recorded history — into
    /// `out` in the versioned [`crate::snap`] format.
    ///
    /// On failure the error names the party that blocked the checkpoint
    /// ([`SnapError::Unsupported`]); `out` may then hold a partial prefix
    /// and should be discarded.
    pub fn save(&self, out: &mut Vec<u8>) -> Result<(), SnapError> {
        let mut w = SnapWriter::new(out);
        crate::snap::write_header(&mut w);
        w.u64(self.round);
        self.user_rng.encode(&mut w);
        self.server_rng.encode(&mut w);
        self.world_rng.encode(&mut w);
        self.up_rng.encode(&mut w);
        self.down_rng.encode(&mut w);
        self.user_to_server.encode(&mut w);
        self.user_to_world.encode(&mut w);
        self.server_to_user.encode(&mut w);
        self.server_to_world.encode(&mut w);
        self.world_to_user.encode(&mut w);
        self.world_to_server.encode(&mut w);
        self.stop_cache.encode(&mut w);
        w.u64(self.world_states.len() as u64);
        for state in &self.world_states {
            W::snap_state(state, &mut w)?;
        }
        self.view.encode(&mut w);
        // Each party block is preceded by the party's name, verified on
        // restore: a snapshot only loads into a same-config skeleton.
        w.str(std::any::type_name::<W>());
        w.block(|w| self.world.save_snap(w))?;
        w.str(&self.user.name());
        w.block(|w| self.user.save_snap(w))?;
        w.str(&self.server.name());
        w.block(|w| self.server.save_snap(w))?;
        w.str(&self.up_channel.name());
        w.block(|w| self.up_channel.save_snap(w))?;
        w.str(&self.down_channel.name());
        w.block(|w| self.down_channel.save_snap(w))?;
        Ok(())
    }

    /// [`save`](Self::save) into a fresh buffer.
    pub fn save_to_vec(&self) -> Result<Vec<u8>, SnapError> {
        let mut out = Vec::new();
        self.save(&mut out)?;
        Ok(out)
    }

    /// Restores a snapshot produced by [`save`](Self::save) into this
    /// execution, which must be a fresh skeleton built with the **same
    /// configuration** (same constructors, channels, and seed) as the saved
    /// run. Party names recorded in the snapshot are checked against the
    /// skeleton's; any mismatch is a [`SnapError::Mismatch`].
    ///
    /// After a successful restore the execution is bit-identical going
    /// forward to the one that was saved: same settle round, same
    /// `GOC_TRACE` output, same `SuccessReport`. Decoding is total — on any
    /// error (malformed, truncated, or adversarial bytes) this returns
    /// `Err` without panicking, but `self` may be partially overwritten and
    /// should be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        crate::snap::read_header(&mut r)?;
        self.round = r.u64("round")?;
        self.user_rng = GocRng::decode(&mut r)?;
        self.server_rng = GocRng::decode(&mut r)?;
        self.world_rng = GocRng::decode(&mut r)?;
        self.up_rng = GocRng::decode(&mut r)?;
        self.down_rng = GocRng::decode(&mut r)?;
        self.user_to_server = Message::decode(&mut r)?;
        self.user_to_world = Message::decode(&mut r)?;
        self.server_to_user = Message::decode(&mut r)?;
        self.server_to_world = Message::decode(&mut r)?;
        self.world_to_user = Message::decode(&mut r)?;
        self.world_to_server = Message::decode(&mut r)?;
        self.stop_cache = StopReason::decode(&mut r)?;
        let n = r.count("world states")?;
        let mut world_states = Vec::new();
        for _ in 0..n {
            world_states.push(W::restore_state(&mut r)?);
        }
        self.world_states = world_states;
        self.view = UserView::decode(&mut r)?;
        Self::party_block(&mut r, "world", std::any::type_name::<W>(), |b| {
            self.world.restore_snap(b)
        })?;
        Self::party_block(&mut r, "user", &self.user.name(), |b| self.user.restore_snap(b))?;
        Self::party_block(&mut r, "server", &self.server.name(), |b| {
            self.server.restore_snap(b)
        })?;
        Self::party_block(&mut r, "up channel", &self.up_channel.name(), |b| {
            self.up_channel.restore_snap(b)
        })?;
        Self::party_block(&mut r, "down channel", &self.down_channel.name(), |b| {
            self.down_channel.restore_snap(b)
        })?;
        r.finish()
    }

    /// Reads one name-tagged party block, verifying the name against the
    /// skeleton and that the party consumed its block exactly.
    fn party_block(
        r: &mut SnapReader<'_>,
        context: &'static str,
        expected: &str,
        restore: impl FnOnce(&mut SnapReader<'_>) -> Result<(), SnapError>,
    ) -> Result<(), SnapError> {
        let found = r.str("party name")?;
        if found != expected {
            return Err(SnapError::Mismatch {
                context,
                expected: expected.to_string(),
                found: found.to_string(),
            });
        }
        let mut block = r.block("party state")?;
        restore(&mut block)?;
        block.finish()
    }
}

impl<W: WorldStrategy + Clone> Execution<W> {
    /// A deterministic checkpoint of the entire execution: world, parties,
    /// channels, rng streams, in-flight messages and recorded history.
    ///
    /// Returns `None` if the user, server or either channel cannot be
    /// checkpointed; [`try_fork`](Self::try_fork) reports *which* party
    /// blocked instead of swallowing it.
    pub fn fork(&self) -> Option<Self> {
        self.try_fork().ok()
    }

    /// A deterministic checkpoint of the entire execution: world, parties,
    /// channels, rng streams, in-flight messages and recorded history.
    ///
    /// Fails with a [`ForkError`] naming the blocking party if the user,
    /// server or either channel cannot be checkpointed (see
    /// [`UserStrategy::fork`](crate::strategy::UserStrategy::fork)). The
    /// fork and the original evolve identically under identical stepping —
    /// the recorded history is cloned, but each message buffer is shared
    /// copy-on-write, so the clone is O(history length), not
    /// O(history bytes).
    pub fn try_fork(&self) -> Result<Self, ForkError> {
        let server =
            self.server.fork().ok_or_else(|| ForkError::new("server", self.server.name()))?;
        let user = self.user.fork().ok_or_else(|| ForkError::new("user", self.user.name()))?;
        let up_channel = self
            .up_channel
            .fork()
            .ok_or_else(|| ForkError::new("up-channel", self.up_channel.name()))?;
        let down_channel = self
            .down_channel
            .fork()
            .ok_or_else(|| ForkError::new("down-channel", self.down_channel.name()))?;
        Ok(Execution {
            world: self.world.clone(),
            server,
            user,
            user_rng: self.user_rng.clone(),
            server_rng: self.server_rng.clone(),
            world_rng: self.world_rng.clone(),
            up_channel,
            down_channel,
            up_rng: self.up_rng.clone(),
            down_rng: self.down_rng.clone(),
            round: self.round,
            user_to_server: self.user_to_server.clone(),
            user_to_world: self.user_to_world.clone(),
            server_to_user: self.server_to_user.clone(),
            server_to_world: self.server_to_world.clone(),
            world_to_user: self.world_to_user.clone(),
            world_to_server: self.world_to_server.clone(),
            world_states: self.world_states.clone(),
            view: self.view.clone(),
            stop_cache: self.stop_cache.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{UserOut, WorldOut};
    use crate::strategy::{EchoServer, FnUser, SilentServer, SilentUser, UserAction};

    /// A world that records every message the user sent it.
    #[derive(Debug, Default)]
    struct Recorder {
        heard: Vec<Message>,
    }

    impl WorldStrategy for Recorder {
        type State = Vec<Message>;

        fn step(&mut self, _: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
            if !input.from_user.is_silence() {
                self.heard.push(input.from_user.clone());
            }
            WorldOut::silence()
        }

        fn state(&self) -> Vec<Message> {
            self.heard.clone()
        }
    }

    #[test]
    fn messages_take_one_round_to_arrive() {
        // User sends "hi" to the world at round 0; the world consumes it at
        // round 1 (synchronous delivery delay of one round).
        let user = FnUser::new("hi-once", |ctx: &mut StepCtx<'_>, _in: &UserIn| {
            if ctx.round == 0 {
                UserAction::Send(UserOut::to_world("hi"))
            } else {
                UserAction::Send(UserOut::silence())
            }
        });
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(SilentServer),
            Box::new(user),
            GocRng::seed_from_u64(1),
        );
        exec.step();
        assert!(exec.world_states().last().unwrap().is_empty(), "not yet delivered");
        exec.step();
        assert_eq!(exec.world_states().last().unwrap().as_slice(), &[Message::from("hi")]);
    }

    #[test]
    fn echo_roundtrip_takes_two_rounds() {
        // Round 0: user sends "ping" to server. Round 1: server consumes it
        // and replies. Round 2: user consumes "ping" back.
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let user = FnUser::new("pinger", move |ctx: &mut StepCtx<'_>, input: &UserIn| {
            if !input.from_server.is_silence() {
                seen2.borrow_mut().push((ctx.round, input.from_server.clone()));
            }
            if ctx.round == 0 {
                UserAction::Send(UserOut::to_server("ping"))
            } else {
                UserAction::Send(UserOut::silence())
            }
        });
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(EchoServer),
            Box::new(user),
            GocRng::seed_from_u64(2),
        );
        exec.run(4);
        assert_eq!(seen.borrow().as_slice(), &[(2u64, Message::from("ping"))]);
    }

    #[test]
    fn run_stops_on_halt() {
        let user = FnUser::new("halts-at-3", |ctx: &mut StepCtx<'_>, _in: &UserIn| {
            if ctx.round == 3 {
                UserAction::HaltWith(UserOut::silence(), Halt::with_output("done"))
            } else {
                UserAction::Send(UserOut::silence())
            }
        });
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(SilentServer),
            Box::new(user),
            GocRng::seed_from_u64(3),
        );
        let t = exec.run(100);
        assert_eq!(t.rounds, 4); // rounds 0..=3 executed
        assert_eq!(t.stop, StopReason::UserHalted(Halt::with_output("done")));
        assert_eq!(t.halt().unwrap().output, Message::from("done"));
    }

    #[test]
    fn run_exhausts_horizon_for_non_halting_user() {
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(SilentServer),
            Box::new(SilentUser),
            GocRng::seed_from_u64(4),
        );
        let t = exec.run(25);
        assert_eq!(t.rounds, 25);
        assert_eq!(t.stop, StopReason::HorizonExhausted);
        assert!(t.halt().is_none());
        // Initial state + one state per round.
        assert_eq!(t.world_states.len(), 26);
        assert_eq!(t.view.len(), 25);
    }

    #[test]
    fn run_is_resumable() {
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(SilentServer),
            Box::new(SilentUser),
            GocRng::seed_from_u64(5),
        );
        exec.run(10);
        let t = exec.run(10);
        assert_eq!(t.rounds, 20);
    }

    #[test]
    fn halted_user_does_not_rerun() {
        let user = FnUser::new("halts-immediately", |_ctx: &mut StepCtx<'_>, _in: &UserIn| {
            UserAction::HaltWith(UserOut::silence(), Halt::empty())
        });
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(SilentServer),
            Box::new(user),
            GocRng::seed_from_u64(6),
        );
        let t1 = exec.run(10);
        assert_eq!(t1.rounds, 1);
        let t2 = exec.run(10);
        assert_eq!(t2.rounds, 1, "a halted user must not execute further rounds");
    }

    #[test]
    fn swap_user_preserves_round_count() {
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(SilentServer),
            Box::new(SilentUser),
            GocRng::seed_from_u64(7),
        );
        exec.run(5);
        let old = exec.swap_user(Box::new(SilentUser));
        assert_eq!(old.name(), "silent-user");
        let t = exec.run(5);
        assert_eq!(t.rounds, 10);
    }

    #[test]
    fn determinism_same_seed_same_transcript() {
        let build = || {
            Execution::new(
                Recorder::default(),
                Box::new(EchoServer),
                Box::new(SilentUser),
                GocRng::seed_from_u64(42),
            )
        };
        let t1 = build().run(30);
        let t2 = build().run(30);
        assert_eq!(t1.view, t2.view);
        assert_eq!(t1.world_states, t2.world_states);
    }

    #[test]
    fn perfect_channels_match_default_construction() {
        let plain = Execution::new(
            Recorder::default(),
            Box::new(EchoServer),
            Box::new(SilentUser),
            GocRng::seed_from_u64(42),
        )
        .run(30);
        let chan = Execution::with_channels(
            Recorder::default(),
            Box::new(EchoServer),
            Box::new(SilentUser),
            GocRng::seed_from_u64(42),
            Box::new(Perfect),
            Box::new(Perfect),
        )
        .run(30);
        assert_eq!(plain.view, chan.view);
        assert_eq!(plain.world_states, chan.world_states);
        assert_eq!(plain.stop, chan.stop);
    }

    #[test]
    fn dropped_up_message_never_reaches_the_server() {
        use crate::channel::{Fault, FaultSchedule, Scheduled};

        // The user pings at round 0; with a Drop scheduled on the up link at
        // round 0, the echo never happens.
        let pinger = || {
            FnUser::new("pinger", |ctx: &mut StepCtx<'_>, _in: &UserIn| {
                if ctx.round == 0 {
                    UserAction::Send(UserOut::to_server("ping"))
                } else {
                    UserAction::Send(UserOut::silence())
                }
            })
        };
        let t = Execution::with_channels(
            Recorder::default(),
            Box::new(EchoServer),
            Box::new(pinger()),
            GocRng::seed_from_u64(9),
            Box::new(Scheduled::new(FaultSchedule::single(0, Fault::Drop))),
            Box::new(Perfect),
        )
        .run(6);
        assert!(t.view.events().iter().all(|ev| ev.received.from_server.is_silence()));

        let t = Execution::with_channels(
            Recorder::default(),
            Box::new(EchoServer),
            Box::new(pinger()),
            GocRng::seed_from_u64(9),
            Box::new(Perfect),
            Box::new(Perfect),
        )
        .run(6);
        assert!(t.view.events().iter().any(|ev| !ev.received.from_server.is_silence()));
    }

    #[test]
    fn try_fork_names_the_blocking_party() {
        // FnUser closes over a closure, so it is deliberately unforkable —
        // exactly the silent-`None` gap ForkError closes.
        let user = FnUser::new("closure-user", |_ctx: &mut StepCtx<'_>, _in: &UserIn| {
            UserAction::Send(UserOut::silence())
        });
        let exec = Execution::new(
            crate::toy::MagicWorld::new("xyzzy"),
            Box::new(SilentServer),
            Box::new(user),
            GocRng::seed_from_u64(1),
        );
        let err = exec.try_fork().unwrap_err();
        assert_eq!(err.party, "user");
        assert_eq!(err.name, "closure-user");
        assert!(exec.fork().is_none(), "fork() mirrors try_fork()");

        // The same party blocks save(), surfaced through SnapError.
        let err = exec.save_to_vec().unwrap_err();
        assert_eq!(
            err,
            SnapError::Unsupported { party: "user", name: "closure-user".to_string() }
        );

        // An unforkable server is reported as the server.
        let exec = Execution::new(
            crate::toy::MagicWorld::new("xyzzy"),
            Box::new(crate::strategy::FnServer::new("closure-server", |_ctx, _in| {
                crate::msg::ServerOut::silence()
            })),
            Box::new(SilentUser),
            GocRng::seed_from_u64(1),
        );
        let err = exec.try_fork().unwrap_err();
        assert_eq!((err.party, err.name.as_str()), ("server", "closure-server"));
    }

    #[test]
    fn save_restore_roundtrips_mid_run() {
        use crate::toy::{MagicWorld, RelayServer, SayThrough};

        let build = || {
            Execution::new(
                MagicWorld::new("xyzzy"),
                Box::new(RelayServer::with_shift(3)),
                Box::new(SayThrough::compensating("xyzzy", 3)),
                GocRng::seed_from_u64(11),
            )
        };
        let mut original = build();
        for _ in 0..2 {
            original.step();
        }
        let bytes = original.save_to_vec().unwrap();

        let mut restored = build();
        restored.restore(&bytes).unwrap();
        assert_eq!(restored.round(), original.round());

        // Bit-identical going forward: same transcript from here on.
        let t1 = original.run(50);
        let t2 = restored.run(50);
        assert_eq!(t1.rounds, t2.rounds);
        assert_eq!(t1.stop, t2.stop);
        assert_eq!(t1.view, t2.view);
        assert_eq!(t1.world_states, t2.world_states);
    }

    #[test]
    fn restore_rejects_mismatched_skeleton() {
        use crate::toy::{MagicWorld, RelayServer, SayThrough};

        let exec = Execution::new(
            MagicWorld::new("xyzzy"),
            Box::new(RelayServer::with_shift(3)),
            Box::new(SayThrough::new("xyzzy")),
            GocRng::seed_from_u64(11),
        );
        let bytes = exec.save_to_vec().unwrap();

        // Same types, different config: the server name tag catches it.
        let mut wrong = Execution::new(
            MagicWorld::new("xyzzy"),
            Box::new(RelayServer::with_shift(7)),
            Box::new(SayThrough::new("xyzzy")),
            GocRng::seed_from_u64(11),
        );
        assert!(matches!(
            wrong.restore(&bytes),
            Err(SnapError::Mismatch { context: "server", .. })
        ));
    }

    #[test]
    fn into_transcript_reports_state() {
        let mut exec = Execution::new(
            Recorder::default(),
            Box::new(SilentServer),
            Box::new(SilentUser),
            GocRng::seed_from_u64(8),
        );
        exec.run(3);
        let t = exec.into_transcript();
        assert_eq!(t.rounds, 3);
        assert_eq!(t.stop, StopReason::HorizonExhausted);
    }
}
