//! Adversarial channels on the user↔server link.
//!
//! The theory's guarantees are statements about *executions*, and an
//! execution is only as trustworthy as the link it runs over. This module
//! makes the link a first-class, deterministic object: a [`Channel`] sits on
//! each direction of the user↔server connection inside
//! [`Execution`](crate::exec::Execution) and may drop, duplicate, reorder,
//! corrupt, delay or burst-erase the messages crossing it.
//!
//! Two design rules keep every theorem-experiment reproducible:
//!
//! - **Determinism.** All channel randomness flows through the channel's own
//!   [`GocRng`](crate::rng::GocRng) fork (streams 4 and 5 of the execution
//!   seed), so a `(seed, schedule)` pair replays the exact same run forever.
//! - **The default is exact.** [`Perfect`] is the identity: it consumes no
//!   randomness and delivers every message untouched, so executions built
//!   with [`Execution::new`](crate::exec::Execution::new) are byte-for-byte
//!   identical to the engine without a channel layer (property-tested in
//!   `tests/channel_props.rs`).
//!
//! Deterministic fault injection is driven by replayable [`FaultSchedule`]
//! values — finite lists of `(round, Fault)` entries interpreted by the
//! [`Scheduled`] channel. A finite schedule is *bounded-loss*: after its last
//! entry drains, the channel is perfect again, so a helpful server remains
//! helpful for any forgiving goal and Theorem 1 still applies — the
//! metamorphic invariant `goc_testkit::conformance` sweeps. Probabilistic
//! impairments ([`Noisy`], [`Garbler`]) and fixed latency ([`Latency`])
//! cover the noise-sweep experiments, and [`Chained`] composes any stack of
//! channels into one.

use crate::msg::Message;
use crate::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use crate::strategy::StepCtx;
use std::collections::VecDeque;
use std::fmt::Debug;

/// A directed, possibly adversarial channel carrying one message per round.
///
/// `transmit` is called exactly once per round per direction by the
/// execution engine: it receives the message sent this round and returns the
/// message that will be delivered next round (possibly silence, possibly a
/// message held over from an earlier round).
///
/// Implementations must be deterministic functions of their own state and
/// the [`StepCtx`] (round number plus the channel's private rng stream);
/// they never see world traffic — the paper's referee judges world states,
/// and a channel that could tamper with the world channel would trivialize
/// the safety question.
pub trait Channel: Debug {
    /// Transforms the message sent this round into the message delivered
    /// next round.
    fn transmit(&mut self, ctx: &mut StepCtx<'_>, msg: Message) -> Message;

    /// A deterministic checkpoint: an independent copy of this channel in
    /// its current state (including any in-flight messages), or `None` if
    /// the channel cannot be checkpointed. See
    /// [`UserStrategy::fork`](crate::strategy::UserStrategy::fork).
    fn fork(&self) -> Option<BoxedChannel> {
        None
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> String {
        "channel".to_string()
    }

    /// Serializes this channel's mutable state — in-flight messages, fault
    /// positions (see [`crate::snap`]). The default refuses, naming the
    /// channel. See
    /// [`UserStrategy::save_snap`](crate::strategy::UserStrategy::save_snap).
    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::unsupported("channel", self.name()))
    }

    /// Restores state written by [`save_snap`](Self::save_snap) into this
    /// channel, which must have been built with the same configuration.
    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::unsupported("channel", self.name()))
    }
}

/// Boxed channel, the form [`Execution`](crate::exec::Execution) stores.
pub type BoxedChannel = Box<dyn Channel>;

impl Channel for BoxedChannel {
    fn transmit(&mut self, ctx: &mut StepCtx<'_>, msg: Message) -> Message {
        (**self).transmit(ctx, msg)
    }

    fn fork(&self) -> Option<BoxedChannel> {
        (**self).fork()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        (**self).save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        (**self).restore_snap(r)
    }
}

/// The identity channel: every message is delivered untouched, one round
/// later, and **no randomness is consumed**. This is the exact pre-channel
/// behaviour of the execution engine.
#[derive(Clone, Debug, Default)]
pub struct Perfect;

impl Channel for Perfect {
    fn transmit(&mut self, _ctx: &mut StepCtx<'_>, msg: Message) -> Message {
        msg
    }

    fn fork(&self) -> Option<BoxedChannel> {
        Some(Box::new(Perfect))
    }

    fn name(&self) -> String {
        "perfect".to_string()
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // stateless
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// One composable channel fault, applied to the message of a single round.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The round's message is silently discarded.
    Drop,
    /// The message is delivered normally **and** a copy is re-delivered on
    /// the following round (ahead of that round's natural arrival).
    Duplicate,
    /// The message arrives `rounds` rounds late, delivered *before* the
    /// natural arrival of its release round.
    Delay {
        /// Extra rounds of latency (≥ 1 to be observable).
        rounds: u64,
    },
    /// The message is held `depth` rounds and delivered *after* the natural
    /// arrival of its release round — it swaps order with later traffic.
    Reorder {
        /// Rounds to hold the message back.
        depth: u64,
    },
    /// Every payload byte is XORed with `mask`. Silence stays silence: a
    /// channel can destroy information but cannot conjure a message out of
    /// nothing (see [`Garbler`] for byzantine injection).
    Corrupt {
        /// XOR mask; `0` is the identity corruption.
        mask: u8,
    },
    /// This round's message and everything sent in the next `len - 1`
    /// rounds are discarded — a loss burst.
    Burst {
        /// Number of consecutive sending rounds erased (≥ 1).
        len: u64,
    },
}

/// A replayable, finite description of channel faults: at most one
/// [`Fault`] per round, applied by [`Scheduled`] on the round the message is
/// *sent*. Rounds without an entry deliver perfectly.
///
/// Because a schedule is finite it is automatically **bounded-loss**: only
/// finitely many messages can be affected, after which the channel is
/// perfect again. The conformance harness's viability sweep relies on this —
/// any finite schedule preserves a server's helpfulness for forgiving goals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    entries: Vec<(u64, Fault)>,
}

impl FaultSchedule {
    /// The empty schedule (equivalent to [`Perfect`]).
    pub fn empty() -> Self {
        FaultSchedule { entries: Vec::new() }
    }

    /// A schedule with a single fault.
    pub fn single(round: u64, fault: Fault) -> Self {
        FaultSchedule { entries: vec![(round, fault)] }
    }

    /// Normalizes `(round, fault)` pairs into a schedule: entries are sorted
    /// by round and, when several target the same round, the first listed
    /// wins.
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, Fault)>) -> Self {
        let mut entries: Vec<(u64, Fault)> = entries.into_iter().collect();
        entries.sort_by_key(|&(round, _)| round);
        entries.dedup_by_key(|&mut (round, _)| round);
        FaultSchedule { entries }
    }

    /// The normalized `(round, fault)` entries, sorted by round.
    pub fn entries(&self) -> &[(u64, Fault)] {
        &self.entries
    }

    /// `true` if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The fault scheduled for `round`, if any.
    pub fn fault_at(&self, round: u64) -> Option<&Fault> {
        self.entries
            .binary_search_by_key(&round, |&(r, _)| r)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The first round from which the schedule can no longer influence
    /// traffic: every entry has fired and every held message has drained.
    /// From this round on a [`Scheduled`] channel behaves like [`Perfect`]
    /// (apart from a possibly non-empty queue order, which also drains).
    pub fn quiet_after(&self) -> u64 {
        self.entries
            .iter()
            .map(|(round, fault)| match fault {
                Fault::Delay { rounds } => round.saturating_add(*rounds).saturating_add(1),
                Fault::Reorder { depth } => round.saturating_add(*depth).saturating_add(1),
                Fault::Burst { len } => round.saturating_add(*len),
                Fault::Duplicate => round.saturating_add(2),
                Fault::Drop | Fault::Corrupt { .. } => round.saturating_add(1),
            })
            .max()
            .unwrap_or(0)
    }
}

impl SnapState for Fault {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        match self {
            Fault::Drop => w.u8(0),
            Fault::Duplicate => w.u8(1),
            Fault::Delay { rounds } => {
                w.u8(2);
                w.u64(*rounds);
            }
            Fault::Reorder { depth } => {
                w.u8(3);
                w.u64(*depth);
            }
            Fault::Corrupt { mask } => {
                w.u8(4);
                w.u8(*mask);
            }
            Fault::Burst { len } => {
                w.u8(5);
                w.u64(*len);
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8("fault tag")? {
            0 => Fault::Drop,
            1 => Fault::Duplicate,
            2 => Fault::Delay { rounds: r.u64("fault delay")? },
            3 => Fault::Reorder { depth: r.u64("fault reorder")? },
            4 => Fault::Corrupt { mask: r.u8("fault mask")? },
            5 => Fault::Burst { len: r.u64("fault burst")? },
            found => return Err(SnapError::BadTag { context: "fault tag", found }),
        })
    }
}

impl SnapState for FaultSchedule {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        self.entries.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        // Re-normalizing keeps the sorted/deduped invariant even for
        // adversarial bytes.
        Ok(FaultSchedule::from_entries(Vec::<(u64, Fault)>::decode(r)?))
    }
}

/// XORs every payload byte with `mask`; silence is preserved.
pub fn corrupt_message(msg: &Message, mask: u8) -> Message {
    if msg.is_silence() {
        return Message::silence();
    }
    Message::from_bytes(msg.as_bytes().iter().map(|b| b ^ mask).collect::<Vec<u8>>())
}

/// The deterministic fault-injection channel: applies a [`FaultSchedule`]
/// entry to the message of each scheduled round; everything else passes
/// through untouched. Consumes **no randomness**, so an empty schedule is
/// observably identical to [`Perfect`].
///
/// Held messages (delay/reorder/duplicate copies) live in an internal queue;
/// one message is delivered per round, earliest due first (delayed messages
/// beat, reordered messages yield to, the natural arrival of their release
/// round). A message due on a busy round slips to the next free one.
#[derive(Clone, Debug)]
pub struct Scheduled {
    schedule: FaultSchedule,
    /// Held messages as `(due_round, class, seq, msg)`; delivery picks the
    /// minimum key. Class 0 = normal/delayed (beats the release round's
    /// arrival), class 1 = reordered (yields to it).
    held: Vec<(u64, u8, u64, Message)>,
    seq: u64,
    burst_until: u64,
}

impl Scheduled {
    /// A channel driven by `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        Scheduled { schedule, held: Vec::new(), seq: 0, burst_until: 0 }
    }

    /// The schedule driving this channel.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    fn enqueue(&mut self, due: u64, class: u8, msg: Message) {
        self.held.push((due, class, self.seq, msg));
        self.seq += 1;
    }

    fn deliver(&mut self, round: u64) -> Message {
        let best = self
            .held
            .iter()
            .enumerate()
            .filter(|(_, &(due, _, _, _))| due <= round)
            .min_by_key(|(_, &(due, class, seq, _))| (due, class, seq))
            .map(|(i, _)| i);
        match best {
            Some(i) => self.held.remove(i).3,
            None => Message::silence(),
        }
    }
}

impl Channel for Scheduled {
    fn transmit(&mut self, ctx: &mut StepCtx<'_>, msg: Message) -> Message {
        let round = ctx.round;
        // A burst arms on its scheduled round even if nothing was sent.
        if let Some(Fault::Burst { len }) = self.schedule.fault_at(round) {
            self.burst_until = self.burst_until.max(round.saturating_add(*len));
        }
        if !msg.is_silence() && round >= self.burst_until {
            match self.schedule.fault_at(round) {
                None | Some(Fault::Burst { .. }) => self.enqueue(round, 0, msg),
                Some(Fault::Drop) => {
                    crate::obs_event!("channel.fault.drop", round);
                    crate::obs_count!("channel.faults", 1u64);
                }
                Some(Fault::Duplicate) => {
                    crate::obs_event!("channel.fault.duplicate", round);
                    crate::obs_count!("channel.faults", 1u64);
                    self.enqueue(round, 0, msg.clone());
                    self.enqueue(round + 1, 0, msg);
                }
                Some(&Fault::Delay { rounds }) => {
                    crate::obs_event!("channel.fault.delay", round);
                    crate::obs_count!("channel.faults", 1u64);
                    self.enqueue(round.saturating_add(rounds), 0, msg)
                }
                Some(&Fault::Reorder { depth }) => {
                    crate::obs_event!("channel.fault.reorder", round);
                    crate::obs_count!("channel.faults", 1u64);
                    self.enqueue(round.saturating_add(depth), 1, msg)
                }
                Some(&Fault::Corrupt { mask }) => {
                    crate::obs_event!("channel.fault.corrupt", round);
                    crate::obs_count!("channel.faults", 1u64);
                    self.enqueue(round, 0, corrupt_message(&msg, mask))
                }
            }
        } else if !msg.is_silence() {
            // Inside an armed burst: the message is erased.
            crate::obs_event!("channel.fault.burst_erase", round);
            crate::obs_count!("channel.faults", 1u64);
        }
        self.deliver(round)
    }

    fn fork(&self) -> Option<BoxedChannel> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!("scheduled({} faults)", self.schedule.len())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        // The schedule is config, but recording it catches skeletons built
        // with a different fault plan; held messages are the pending
        // positions the ISSUE's "resumable fault schedule" requires.
        self.schedule.encode(w);
        self.held.encode(w);
        w.u64(self.seq);
        w.u64(self.burst_until);
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let schedule = FaultSchedule::decode(r)?;
        if schedule != self.schedule {
            return Err(SnapError::Mismatch {
                context: "fault schedule",
                expected: format!("{:?}", self.schedule),
                found: format!("{schedule:?}"),
            });
        }
        self.held = Vec::<(u64, u8, u64, Message)>::decode(r)?;
        self.seq = r.u64("scheduled seq")?;
        self.burst_until = r.u64("scheduled burst_until")?;
        Ok(())
    }
}

/// A fixed-latency line: every message arrives `delay` extra rounds late,
/// order preserved. This is the channel form of the old `Delayed` server
/// wrapper, which now delegates here.
#[derive(Clone, Debug)]
pub struct Latency {
    queue: VecDeque<Message>,
    delay: usize,
}

impl Latency {
    /// A line adding `delay` rounds of latency (0 is transparent).
    pub fn new(delay: usize) -> Self {
        let mut queue = VecDeque::with_capacity(delay + 1);
        for _ in 0..delay {
            queue.push_back(Message::silence());
        }
        Latency { queue, delay }
    }

    /// The configured latency in rounds.
    pub fn delay(&self) -> usize {
        self.delay
    }
}

impl Channel for Latency {
    fn transmit(&mut self, _ctx: &mut StepCtx<'_>, msg: Message) -> Message {
        self.queue.push_back(msg);
        self.queue.pop_front().unwrap_or_else(Message::silence)
    }

    fn fork(&self) -> Option<BoxedChannel> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!("latency({})", self.delay)
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.u64(self.queue.len() as u64);
        for msg in &self.queue {
            msg.encode(w);
        }
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.count("latency queue")?;
        let mut queue = VecDeque::with_capacity(self.delay + 1);
        for _ in 0..n {
            queue.push_back(Message::decode(r)?);
        }
        self.queue = queue;
        Ok(())
    }
}

/// A memoryless noisy channel: each non-silent message is independently
/// dropped with probability `drop_p`, and (if it survives) corrupted with
/// probability `corrupt_p` by XORing every byte with a random non-zero mask.
///
/// Randomness comes from the channel's own rng stream. The rng discipline
/// mirrors the old `Lossy` wrapper exactly — one `chance(drop_p)` draw per
/// non-silent message, corruption draws only when `corrupt_p > 0` — so the
/// wrapper can delegate here without perturbing seeded transcripts.
#[derive(Clone, Debug)]
pub struct Noisy {
    drop_p: f64,
    corrupt_p: f64,
}

impl Noisy {
    /// Drops with probability `drop_p`, corrupts survivors with probability
    /// `corrupt_p` (both clamped to `[0, 1]`).
    pub fn new(drop_p: f64, corrupt_p: f64) -> Self {
        Noisy { drop_p: drop_p.clamp(0.0, 1.0), corrupt_p: corrupt_p.clamp(0.0, 1.0) }
    }

    /// A purely lossy channel.
    pub fn drops(p: f64) -> Self {
        Noisy::new(p, 0.0)
    }
}

impl Channel for Noisy {
    fn transmit(&mut self, ctx: &mut StepCtx<'_>, msg: Message) -> Message {
        if msg.is_silence() {
            return msg;
        }
        if ctx.rng.chance(self.drop_p) {
            crate::obs_count!("channel.noisy.dropped", 1u64);
            return Message::silence();
        }
        if self.corrupt_p > 0.0 && ctx.rng.chance(self.corrupt_p) {
            crate::obs_count!("channel.noisy.corrupted", 1u64);
            let mask = ctx.rng.byte() | 1; // non-zero: a real corruption
            return corrupt_message(&msg, mask);
        }
        msg
    }

    fn fork(&self) -> Option<BoxedChannel> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!("noisy(drop {}, corrupt {})", self.drop_p, self.corrupt_p)
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // memoryless: the probabilities are config, the draws live in the channel rng
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// A byzantine channel: with probability `p` per round it replaces the
/// round's message — **including silence** — with 1..=`max_len` random
/// bytes. Unlike [`Fault::Corrupt`], a garbler can fabricate traffic, which
/// is exactly what the safety experiments need: garbage on the server link
/// must never fool sensing grounded in the world's feedback.
#[derive(Clone, Debug)]
pub struct Garbler {
    p: f64,
    max_len: usize,
}

impl Garbler {
    /// Garbles each round independently with probability `p` (clamped to
    /// `[0, 1]`), emitting up to `max_len` random bytes.
    pub fn new(p: f64, max_len: usize) -> Self {
        Garbler { p: p.clamp(0.0, 1.0), max_len: max_len.max(1) }
    }
}

impl Channel for Garbler {
    fn transmit(&mut self, ctx: &mut StepCtx<'_>, msg: Message) -> Message {
        if ctx.rng.chance(self.p) {
            crate::obs_count!("channel.garbled", 1u64);
            let len = ctx.rng.index(self.max_len) + 1;
            Message::from_bytes(ctx.rng.bytes(len))
        } else {
            msg
        }
    }

    fn fork(&self) -> Option<BoxedChannel> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!("garbler({}, {})", self.p, self.max_len)
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // memoryless
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Sequential composition of channels: the output of each stage feeds the
/// next, all within the same round. `Chained::new(vec![])` is [`Perfect`].
///
/// Composition is how schedules and noise combine — e.g. a drop+reorder
/// schedule in front of a corrupting [`Noisy`] stage models a link that is
/// both adversarial and unreliable.
#[derive(Debug)]
pub struct Chained {
    stages: Vec<BoxedChannel>,
}

impl Chained {
    /// Chains `stages` in order.
    pub fn new(stages: Vec<BoxedChannel>) -> Self {
        Chained { stages }
    }
}

impl Channel for Chained {
    fn transmit(&mut self, ctx: &mut StepCtx<'_>, msg: Message) -> Message {
        let mut msg = msg;
        for stage in &mut self.stages {
            msg = stage.transmit(ctx, msg);
        }
        msg
    }

    fn fork(&self) -> Option<BoxedChannel> {
        let stages: Option<Vec<BoxedChannel>> =
            self.stages.iter().map(|s| s.fork()).collect();
        Some(Box::new(Chained::new(stages?)))
    }

    fn name(&self) -> String {
        let names: Vec<String> = self.stages.iter().map(|s| s.name()).collect();
        format!("chained[{}]", names.join(" -> "))
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.u64(self.stages.len() as u64);
        for stage in &self.stages {
            w.str(&stage.name());
            w.block(|w| stage.save_snap(w))?;
        }
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.count("chained stages")?;
        if n != self.stages.len() {
            return Err(SnapError::Mismatch {
                context: "chained stage count",
                expected: self.stages.len().to_string(),
                found: n.to_string(),
            });
        }
        for stage in &mut self.stages {
            let name = r.str("chained stage name")?;
            if name != stage.name() {
                return Err(SnapError::Mismatch {
                    context: "chained stage",
                    expected: stage.name(),
                    found: name.to_string(),
                });
            }
            let mut block = r.block("chained stage state")?;
            stage.restore_snap(&mut block)?;
            block.finish()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::GocRng;

    fn feed(chan: &mut impl Channel, msgs: &[&str], rounds: u64) -> Vec<Message> {
        let mut rng = GocRng::seed_from_u64(0);
        (0..rounds)
            .map(|round| {
                let msg = msgs
                    .get(round as usize)
                    .map(|s| Message::from(*s))
                    .unwrap_or_else(Message::silence);
                let mut ctx = StepCtx::new(round, &mut rng);
                chan.transmit(&mut ctx, msg)
            })
            .collect()
    }

    fn m(s: &str) -> Message {
        Message::from(s)
    }

    #[test]
    fn perfect_is_identity() {
        let out = feed(&mut Perfect, &["a", "b", "", "c"], 5);
        assert_eq!(out, vec![m("a"), m("b"), m(""), m("c"), m("")]);
    }

    #[test]
    fn empty_schedule_is_identity() {
        let mut chan = Scheduled::new(FaultSchedule::empty());
        let out = feed(&mut chan, &["a", "b", "c"], 4);
        assert_eq!(out, vec![m("a"), m("b"), m("c"), m("")]);
    }

    #[test]
    fn drop_discards_one_round() {
        let mut chan = Scheduled::new(FaultSchedule::single(1, Fault::Drop));
        let out = feed(&mut chan, &["a", "b", "c"], 3);
        assert_eq!(out, vec![m("a"), m(""), m("c")]);
    }

    #[test]
    fn corrupt_flips_bytes_and_preserves_silence() {
        let mut chan = Scheduled::new(FaultSchedule::single(0, Fault::Corrupt { mask: 0xFF }));
        let out = feed(&mut chan, &["a"], 2);
        assert_eq!(out[0], Message::from_bytes(vec![b'a' ^ 0xFF]));
        assert_eq!(out[1], m(""));
        assert_eq!(corrupt_message(&Message::silence(), 0xFF), Message::silence());
    }

    #[test]
    fn corrupt_is_involutive() {
        let msg = m("hello");
        assert_eq!(corrupt_message(&corrupt_message(&msg, 0x5A), 0x5A), msg);
    }

    #[test]
    fn delay_arrives_late_before_natural_arrival() {
        // "a" delayed by 2: due at round 2, delivered there *before* "c".
        let mut chan = Scheduled::new(FaultSchedule::single(0, Fault::Delay { rounds: 2 }));
        let out = feed(&mut chan, &["a", "b", "c", "", ""], 5);
        assert_eq!(out, vec![m(""), m("b"), m("a"), m("c"), m("")]);
    }

    #[test]
    fn reorder_swaps_with_later_traffic() {
        // "a" reordered by depth 1: held to round 1, delivered *after* "b".
        let mut chan = Scheduled::new(FaultSchedule::single(0, Fault::Reorder { depth: 1 }));
        let out = feed(&mut chan, &["a", "b", "", ""], 4);
        assert_eq!(out, vec![m(""), m("b"), m("a"), m("")]);
    }

    #[test]
    fn duplicate_redelivers_next_round() {
        let mut chan = Scheduled::new(FaultSchedule::single(0, Fault::Duplicate));
        let out = feed(&mut chan, &["a", "", ""], 3);
        assert_eq!(out, vec![m("a"), m("a"), m("")]);
    }

    #[test]
    fn duplicate_copy_beats_next_arrival() {
        let mut chan = Scheduled::new(FaultSchedule::single(0, Fault::Duplicate));
        let out = feed(&mut chan, &["a", "b", "", ""], 4);
        assert_eq!(out, vec![m("a"), m("a"), m("b"), m("")]);
    }

    #[test]
    fn burst_erases_a_window_even_across_silence() {
        let mut chan = Scheduled::new(FaultSchedule::single(1, Fault::Burst { len: 3 }));
        let out = feed(&mut chan, &["a", "b", "c", "d", "e"], 5);
        // Rounds 1, 2, 3 erased; rounds 0 and 4 pass.
        assert_eq!(out, vec![m("a"), m(""), m(""), m(""), m("e")]);
    }

    #[test]
    fn schedule_normalizes_sorted_first_wins() {
        let s = FaultSchedule::from_entries(vec![
            (5, Fault::Drop),
            (2, Fault::Duplicate),
            (5, Fault::Corrupt { mask: 1 }),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.fault_at(2), Some(&Fault::Duplicate));
        assert_eq!(s.fault_at(5), Some(&Fault::Drop), "first entry per round wins");
        assert_eq!(s.fault_at(3), None);
    }

    #[test]
    fn quiet_after_covers_held_messages() {
        assert_eq!(FaultSchedule::empty().quiet_after(), 0);
        assert_eq!(FaultSchedule::single(3, Fault::Drop).quiet_after(), 4);
        assert_eq!(FaultSchedule::single(3, Fault::Delay { rounds: 5 }).quiet_after(), 9);
        assert_eq!(FaultSchedule::single(2, Fault::Burst { len: 4 }).quiet_after(), 6);
    }

    #[test]
    fn scheduled_consumes_no_randomness() {
        let mut rng = GocRng::seed_from_u64(7);
        let mut chan = Scheduled::new(FaultSchedule::single(0, Fault::Duplicate));
        let before = rng.clone().next_u64();
        for round in 0..4 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = chan.transmit(&mut ctx, m("x"));
        }
        assert_eq!(rng.next_u64(), before, "deterministic channels must not draw");
    }

    #[test]
    fn latency_shifts_and_preserves_order() {
        let mut chan = Latency::new(2);
        let out = feed(&mut chan, &["a", "b", "c", "d"], 4);
        assert_eq!(out, vec![m(""), m(""), m("a"), m("b")]);
        assert_eq!(Latency::new(0).transmit(&mut StepCtx::new(0, &mut GocRng::seed_from_u64(0)), m("z")), m("z"));
    }

    #[test]
    fn noisy_extremes() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut never = Noisy::drops(0.0);
        let mut ctx = StepCtx::new(0, &mut rng);
        assert_eq!(never.transmit(&mut ctx, m("x")), m("x"));
        let mut always = Noisy::drops(1.0);
        let mut ctx = StepCtx::new(0, &mut rng);
        assert!(always.transmit(&mut ctx, m("x")).is_silence());
        // Silence passes without consuming randomness.
        let before = rng.clone().next_u64();
        let mut ctx = StepCtx::new(1, &mut rng);
        assert!(always.transmit(&mut ctx, Message::silence()).is_silence());
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn noisy_corruption_changes_but_never_silences() {
        let mut rng = GocRng::seed_from_u64(3);
        let mut chan = Noisy::new(0.0, 1.0);
        for round in 0..32 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let out = chan.transmit(&mut ctx, m("x"));
            assert!(!out.is_silence());
            assert_ne!(out, m("x"), "mask is forced non-zero");
        }
    }

    #[test]
    fn garbler_can_fabricate_from_silence() {
        let mut rng = GocRng::seed_from_u64(5);
        let mut chan = Garbler::new(1.0, 4);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = chan.transmit(&mut ctx, Message::silence());
        assert!(!out.is_silence());
        assert!(out.len() <= 4);
    }

    #[test]
    fn chained_composes_in_order() {
        let mut chan = Chained::new(vec![
            Box::new(Scheduled::new(FaultSchedule::single(0, Fault::Drop))),
            Box::new(Latency::new(1)),
        ]);
        let out = feed(&mut chan, &["a", "b", "c"], 4);
        // "a" dropped by stage 1; survivors delayed one round by stage 2.
        assert_eq!(out, vec![m(""), m(""), m("b"), m("c")]);
        assert!(chan.name().starts_with("chained["));
        let mut empty = Chained::new(Vec::new());
        let out = feed(&mut empty, &["a"], 1);
        assert_eq!(out, vec![m("a")]);
    }

    #[test]
    fn same_seed_same_noise() {
        let run = || {
            let mut rng = GocRng::seed_from_u64(11);
            let mut chan = Noisy::new(0.5, 0.5);
            (0..64u64)
                .map(|round| {
                    let mut ctx = StepCtx::new(round, &mut rng);
                    chan.transmit(&mut ctx, m("payload"))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn names_render() {
        assert_eq!(Perfect.name(), "perfect");
        assert_eq!(Scheduled::new(FaultSchedule::empty()).name(), "scheduled(0 faults)");
        assert_eq!(Latency::new(3).name(), "latency(3)");
        assert_eq!(Noisy::drops(0.25).name(), "noisy(drop 0.25, corrupt 0)");
        assert_eq!(Garbler::new(0.5, 8).name(), "garbler(0.5, 8)");
    }
}
