//! Zero-dependency deterministic parallelism for trial- and candidate-level
//! fan-out.
//!
//! The engine is a scoped worker pool over `std::thread`: callers hand
//! [`par_map`] a pure indexed function, workers claim chunked index ranges
//! from a shared atomic cursor (cheap work-stealing — a fast worker simply
//! claims more chunks), and results are merged back **in index order**, so
//! aggregation is deterministic regardless of scheduling.
//!
//! Thread count resolution, in priority order:
//!
//! 1. a thread-local override installed by [`with_thread_count`] (used by
//!    tests and benches so concurrent test threads don't race on the process
//!    environment),
//! 2. the `GOC_THREADS` environment variable (a positive integer),
//! 3. [`std::thread::available_parallelism`].
//!
//! `GOC_THREADS=1` (or `with_thread_count(1, ..)`) is an *exact* sequential
//! fallback: [`par_map`] degenerates to a plain in-order loop on the calling
//! thread — no pool, no atomics — so single-threaded runs are bit-identical
//! to the pre-parallel code path by construction.
//!
//! Nested calls do not oversubscribe: worker threads run with an implicit
//! `with_thread_count(1, ..)`, so a `par_map` reached from inside another
//! `par_map` executes sequentially on its worker.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Resolves the effective worker count for this thread (always ≥ 1).
///
/// See the module docs for the resolution order. Invalid or non-positive
/// `GOC_THREADS` values are ignored.
pub fn thread_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("GOC_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with the thread count pinned to `n` on the current thread,
/// restoring the previous setting afterwards (also on panic).
///
/// This takes precedence over `GOC_THREADS` and is the race-free way for
/// tests and benches to compare sequential vs parallel runs in-process.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// With an effective thread count of 1 (or `n <= 1`) this is exactly
/// `(0..n).map(f).collect()` on the calling thread. Otherwise a scoped pool
/// of workers claims chunks of the index range from an atomic cursor; each
/// worker evaluates its indices locally and the results are sorted back into
/// index order before returning. `f` must therefore be safe to call from any
/// thread and — for deterministic callers — depend only on its index.
///
/// A panic in `f` propagates to the caller when the scope joins.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread_count().min(n.max(1));
    // When the recorder is on, each task's observability records are
    // captured in a per-task buffer and flushed in index order below —
    // the same merge discipline as the results — so the record stream is
    // bit-identical at any thread count. Off (the default), `tracing` is
    // false and both paths are exactly the pre-observability code.
    let tracing = crate::obs::enabled();
    if threads <= 1 || n <= 1 {
        if !tracing {
            return (0..n).map(f).collect();
        }
        return (0..n)
            .map(|i| {
                let (v, records) = crate::obs::task_capture(|| f(i));
                crate::obs::flush_task(i as u64, records);
                v
            })
            .collect();
    }
    // Chunks of ~n/(4·threads) amortize cursor contention while letting fast
    // workers steal the tail of a slow worker's share.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    type Keyed<T> = (usize, T, Vec<crate::obs::Record>);
    let results: Mutex<Vec<Keyed<T>>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Workers run nested par_map calls sequentially.
                with_thread_count(1, || {
                    let mut local: Vec<Keyed<T>> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            if tracing {
                                let (v, records) = crate::obs::task_capture(|| f(i));
                                local.push((i, v, records));
                            } else {
                                local.push((i, f(i), Vec::new()));
                            }
                        }
                    }
                    results.lock().unwrap().extend(local);
                });
            });
        }
    });
    let mut pairs = results.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _, _)| i);
    pairs
        .into_iter()
        .map(|(i, v, records)| {
            crate::obs::flush_task(i as u64, records);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64;
        let seq: Vec<u64> = (0..1000).map(f) .collect();
        for threads in [1, 2, 4, 7] {
            let par = with_thread_count(threads, || par_map(1000, f));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(with_thread_count(4, || par_map(0, |i| i)), Vec::<usize>::new());
        assert_eq!(with_thread_count(4, || par_map(1, |i| i * 3)), vec![0]);
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let before = thread_count();
        with_thread_count(3, || {
            assert_eq!(thread_count(), 3);
            with_thread_count(1, || assert_eq!(thread_count(), 1));
            assert_eq!(thread_count(), 3);
        });
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn nested_par_map_runs_sequentially_on_workers() {
        // Inner calls observe a thread count of 1 — no unbounded fan-out.
        let inner_counts = with_thread_count(4, || par_map(8, |_| thread_count()));
        assert!(inner_counts.iter().all(|&c| c == 1), "{inner_counts:?}");
    }

    #[test]
    fn results_arrive_in_index_order_under_contention() {
        // Uneven per-index cost exercises the work-stealing path.
        let out = with_thread_count(4, || {
            par_map(257, |i| {
                let mut acc = i as u64;
                for _ in 0..(i % 13) * 500 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i, acc)
            })
        });
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(k, *i);
        }
    }
}
