//! Zero-dependency deterministic parallelism for trial- and candidate-level
//! fan-out.
//!
//! The engine is a lazily-started **persistent worker pool** (see [`pool`]):
//! callers hand [`par_map`] a pure indexed function, workers claim chunked
//! index ranges from a shared atomic cursor (cheap work-stealing — a fast
//! worker simply claims more chunks), and results are merged back **in index
//! order**, so aggregation is deterministic regardless of scheduling. The
//! pool replaces the earlier scoped `std::thread::scope` design, which paid a
//! thread spawn+join per `par_map` call; workers now park on a condvar
//! between calls and the same threads also absorb background prewarm jobs
//! (see [`pool::submit`]) when no foreground work is queued.
//!
//! Thread count resolution, in priority order:
//!
//! 1. a thread-local override installed by [`with_thread_count`] (used by
//!    tests and benches so concurrent test threads don't race on the process
//!    environment),
//! 2. the `GOC_THREADS` environment variable (a positive integer),
//! 3. [`std::thread::available_parallelism`].
//!
//! `GOC_THREADS=1` (or `with_thread_count(1, ..)`) is an *exact* sequential
//! fallback: [`par_map`] degenerates to a plain in-order loop on the calling
//! thread — no pool, no atomics — so single-threaded runs are bit-identical
//! to the pre-parallel code path by construction.
//!
//! Nested calls do not oversubscribe: pool workers run every task under an
//! implicit `with_thread_count(1, ..)`, so a `par_map` reached from inside
//! another `par_map` (or from a background job) executes sequentially on its
//! worker.
//!
//! The module also owns the `GOC_PREWARM` knob ([`prewarm_enabled`] /
//! [`with_prewarm`]): the gate for the pipelined background candidate
//! prewarm that the universal users and `goc-vm`'s enumerators build on top
//! of [`pool::submit`]. Default on; `GOC_PREWARM=0` restores the inline
//! (foreground) prewarm path. The flag is observationally inert either way —
//! background prewarm only inserts value-identical cache entries and emits
//! process-scoped (nondeterministic) metrics, so `GOC_TRACE` output is
//! byte-identical across `GOC_PREWARM` settings.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static PREWARM_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Resolves the effective worker count for this thread (always ≥ 1).
///
/// See the module docs for the resolution order. Invalid or non-positive
/// `GOC_THREADS` values are ignored.
pub fn thread_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("GOC_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with the thread count pinned to `n` on the current thread,
/// restoring the previous setting afterwards (also on panic).
///
/// This takes precedence over `GOC_THREADS` and is the race-free way for
/// tests and benches to compare sequential vs parallel runs in-process.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// Whether pipelined background prewarm is enabled on this thread.
///
/// Resolution: a thread-local override installed by [`with_prewarm`], then
/// the `GOC_PREWARM` environment variable (read once and latched; any value
/// other than `"0"` — including unset — enables it). The knob gates
/// *pipelining only*: consumers must additionally have idle workers
/// available ([`thread_count`] > 1) for a background job to be worth
/// dispatching, and with the gate off every prewarm runs inline on the
/// calling thread exactly as before the pool existed.
pub fn prewarm_enabled() -> bool {
    if let Some(v) = PREWARM_OVERRIDE.with(|o| o.get()) {
        return v;
    }
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GOC_PREWARM").map(|v| v != "0").unwrap_or(true))
}

/// Runs `f` with background prewarm pinned on/off for the current thread,
/// restoring the previous setting afterwards (also on panic). Mirrors
/// [`with_thread_count`]; benches use it to compare the inline and pipelined
/// prewarm paths in-process without racing on the environment.
pub fn with_prewarm<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            PREWARM_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(PREWARM_OVERRIDE.with(|o| o.replace(Some(enabled))));
    f()
}

/// The persistent worker pool behind [`par_map`] and the background prewarm
/// pipeline.
///
/// Workers are plain detached `std::thread`s, spawned lazily the first time
/// they are needed and parked on a condvar between jobs — a `par_map` call
/// in the steady state costs two mutex operations and a notify instead of a
/// `thread::scope` spawn+join cycle. Two queues feed them:
///
/// * **foreground** — lifetime-erased shards of an in-flight [`par_map`]
///   call; always drained first, so background work can never delay a live
///   computation that has reached the pool;
/// * **background** — `'static` jobs handed to [`submit`] (candidate
///   prewarm); drained only when no foreground work is queued.
///
/// Every task runs under `with_thread_count(1, ..)` (nested fan-out stays
/// sequential) and under `catch_unwind` (a panicking job can never take a
/// pool thread down; the payload is re-raised at the matching join).
///
/// # Safety of the foreground path
///
/// Foreground shards borrow the caller's stack (`par_map`'s closure,
/// cursor, and result buffer). The borrow is transmuted to `'static` to
/// cross the queue, which is sound because [`run_scoped`] does not return —
/// not even by unwinding — until every shard has finished: a drop guard
/// blocks on the shard countdown even when the caller's own slice of the
/// work panics. This is the same discipline `std::thread::scope` enforces,
/// applied to persistent threads.
pub mod pool {
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

    type Task = Box<dyn FnOnce() + Send>;

    struct Queues {
        foreground: VecDeque<Task>,
        background: VecDeque<Task>,
    }

    struct Pool {
        queues: Mutex<Queues>,
        /// Signalled whenever a task is queued; workers park here.
        available: Condvar,
        /// Number of persistent workers spawned so far.
        workers: AtomicUsize,
    }

    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            queues: Mutex::new(Queues {
                foreground: VecDeque::new(),
                background: VecDeque::new(),
            }),
            available: Condvar::new(),
            workers: AtomicUsize::new(0),
        })
    }

    /// Locks the task queues, recovering from poisoning: tasks themselves
    /// run outside the lock (and under `catch_unwind`), so a poisoned queue
    /// mutex carries no information about queue integrity.
    fn lock_queues(p: &Pool) -> std::sync::MutexGuard<'_, Queues> {
        p.queues.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Grows the pool to at least `n` persistent workers. [`submit`] only
    /// guarantees a single worker; callers queueing several background jobs
    /// they expect to overlap should reserve capacity here first.
    pub fn ensure_workers(n: usize) {
        let p = pool();
        loop {
            let cur = p.workers.load(Ordering::Relaxed);
            if cur >= n {
                return;
            }
            if p.workers.compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed).is_err()
            {
                continue; // lost the race; re-check the new count
            }
            crate::obs_count_nd!("par.pool.spawned", 1u64);
            std::thread::Builder::new()
                .name(format!("goc-pool-{cur}"))
                .spawn(worker_loop)
                .expect("spawning a pool worker thread");
        }
    }

    fn worker_loop() {
        let p = pool();
        loop {
            let task = {
                let mut q = lock_queues(p);
                loop {
                    if let Some(t) = q.foreground.pop_front() {
                        break t;
                    }
                    if let Some(t) = q.background.pop_front() {
                        break t;
                    }
                    q = p.available.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Nested par_map calls run sequentially on pool workers, and a
            // panicking task must not take the persistent thread down — the
            // payload is delivered through the task's own completion state.
            let _ = catch_unwind(AssertUnwindSafe(|| super::with_thread_count(1, task)));
        }
    }

    /// Completion state of one background job.
    struct JobState {
        /// `(finished, first panic payload)`.
        done: Mutex<(bool, Option<Box<dyn Any + Send>>)>,
        cv: Condvar,
    }

    /// Handle to a background job queued with [`submit`].
    ///
    /// Dropping the handle detaches the job (it still runs). [`join`]
    /// blocks until completion and re-raises the job's panic, if any.
    ///
    /// [`join`]: JobHandle::join
    pub struct JobHandle {
        state: Arc<JobState>,
    }

    impl JobHandle {
        /// Blocks until the job has finished; re-raises its panic.
        pub fn join(self) {
            let mut g = self.state.done.lock().unwrap_or_else(PoisonError::into_inner);
            while !g.0 {
                g = self.state.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            if let Some(payload) = g.1.take() {
                drop(g);
                resume_unwind(payload);
            }
        }

        /// Whether the job has finished (without blocking).
        pub fn is_finished(&self) -> bool {
            self.state.done.lock().unwrap_or_else(PoisonError::into_inner).0
        }
    }

    /// Queues `f` on the background lane of the pool, growing it to at
    /// least one worker. Background tasks run only when no foreground
    /// (`par_map`) shard is queued, under `with_thread_count(1, ..)`.
    pub fn submit(f: impl FnOnce() + Send + 'static) -> JobHandle {
        ensure_workers(1);
        let state = Arc::new(JobState { done: Mutex::new((false, None)), cv: Condvar::new() });
        let task_state = Arc::clone(&state);
        let task: Task = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut g = task_state.done.lock().unwrap_or_else(PoisonError::into_inner);
            g.0 = true;
            if let Err(payload) = result {
                g.1 = Some(payload);
            }
            task_state.cv.notify_all();
        });
        let p = pool();
        {
            let mut q = lock_queues(p);
            q.background.push_back(task);
        }
        crate::obs_count_nd!("par.pool.jobs", 1u64);
        p.available.notify_one();
        JobHandle { state }
    }

    /// Shared countdown for one scoped (foreground) fan-out.
    struct ScopedJob {
        /// The caller's body, lifetime-erased; valid until `remaining`
        /// reaches zero, which [`run_scoped`] awaits before returning.
        body: &'static (dyn Fn() + Sync),
        remaining: AtomicUsize,
        /// First panic payload raised by a pool-side copy of the body.
        panic: Mutex<Option<Box<dyn Any + Send>>>,
        cv: Condvar,
    }

    /// Runs `body` on `extra` pool workers *and* the calling thread,
    /// returning only after every copy has finished. Pool-side panics are
    /// re-raised here; a panic in the caller's own copy still waits for the
    /// workers before unwinding (so the erased borrows can never dangle).
    ///
    /// The caller always participates, so progress is guaranteed even if
    /// every pool worker is busy with earlier work.
    pub(crate) fn run_scoped(extra: usize, body: &(dyn Fn() + Sync)) {
        if extra == 0 {
            body();
            return;
        }
        ensure_workers(extra);
        // SAFETY: the guard below keeps this frame alive (even through an
        // unwinding caller) until `remaining` hits zero, i.e. until no task
        // can touch `body` again.
        let body_static: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(body) };
        let job = Arc::new(ScopedJob {
            body: body_static,
            remaining: AtomicUsize::new(extra),
            panic: Mutex::new(None),
            cv: Condvar::new(),
        });
        let p = pool();
        {
            let mut q = lock_queues(p);
            for _ in 0..extra {
                let job = Arc::clone(&job);
                q.foreground.push_back(Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(job.body)) {
                        let mut g = job.panic.lock().unwrap_or_else(PoisonError::into_inner);
                        g.get_or_insert(payload);
                    }
                    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Pair the notify with the wait-side mutex so the
                        // caller cannot miss the final wakeup.
                        let _g = job.panic.lock().unwrap_or_else(PoisonError::into_inner);
                        job.cv.notify_all();
                    }
                }));
            }
            p.available.notify_all();
        }
        struct WaitGuard<'a>(&'a ScopedJob);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                let mut g = self.0.panic.lock().unwrap_or_else(PoisonError::into_inner);
                while self.0.remaining.load(Ordering::Acquire) > 0 {
                    g = self.0.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        {
            let _wait = WaitGuard(&job);
            body();
        }
        let payload = job.panic.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Number of persistent workers currently alive (test/metrics hook).
    pub fn worker_count() -> usize {
        pool().workers.load(Ordering::Relaxed)
    }
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// With an effective thread count of 1 (or `n <= 1`) this is exactly
/// `(0..n).map(f).collect()` on the calling thread. Otherwise the calling
/// thread plus `threads - 1` persistent [`pool`] workers claim chunks of the
/// index range from an atomic cursor; each participant evaluates its indices
/// locally and the results are sorted back into index order before
/// returning. `f` must therefore be safe to call from any thread and — for
/// deterministic callers — depend only on its index.
///
/// A panic in `f` propagates to the caller once every participant has
/// stopped.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread_count().min(n.max(1));
    // When the recorder is on, each task's observability records are
    // captured in a per-task buffer and flushed in index order below —
    // the same merge discipline as the results — so the record stream is
    // bit-identical at any thread count. Off (the default), `tracing` is
    // false and both paths are exactly the pre-observability code.
    let tracing = crate::obs::enabled();
    if threads <= 1 || n <= 1 {
        if !tracing {
            return (0..n).map(f).collect();
        }
        return (0..n)
            .map(|i| {
                let (v, records) = crate::obs::task_capture(|| f(i));
                crate::obs::flush_task(i as u64, records);
                v
            })
            .collect();
    }
    // Chunks of ~n/(4·threads) amortize cursor contention while letting fast
    // workers steal the tail of a slow worker's share.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    type Keyed<T> = (usize, T, Vec<crate::obs::Record>);
    let results: Mutex<Vec<Keyed<T>>> = Mutex::new(Vec::with_capacity(n));
    let body = || {
        // Every participant (pool workers and the caller itself) runs
        // nested par_map calls sequentially.
        with_thread_count(1, || {
            let mut local: Vec<Keyed<T>> = Vec::new();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    if tracing {
                        let (v, records) = crate::obs::task_capture(|| f(i));
                        local.push((i, v, records));
                    } else {
                        local.push((i, f(i), Vec::new()));
                    }
                }
            }
            results.lock().unwrap().extend(local);
        });
    };
    pool::run_scoped(threads - 1, &body);
    let mut pairs = results.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _, _)| i);
    pairs
        .into_iter()
        .map(|(i, v, records)| {
            crate::obs::flush_task(i as u64, records);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64;
        let seq: Vec<u64> = (0..1000).map(f) .collect();
        for threads in [1, 2, 4, 7] {
            let par = with_thread_count(threads, || par_map(1000, f));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(with_thread_count(4, || par_map(0, |i| i)), Vec::<usize>::new());
        assert_eq!(with_thread_count(4, || par_map(1, |i| i * 3)), vec![0]);
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let before = thread_count();
        with_thread_count(3, || {
            assert_eq!(thread_count(), 3);
            with_thread_count(1, || assert_eq!(thread_count(), 1));
            assert_eq!(thread_count(), 3);
        });
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn prewarm_override_is_scoped_and_restored() {
        let ambient = prewarm_enabled();
        with_prewarm(!ambient, || {
            assert_eq!(prewarm_enabled(), !ambient);
            with_prewarm(ambient, || assert_eq!(prewarm_enabled(), ambient));
            assert_eq!(prewarm_enabled(), !ambient);
        });
        assert_eq!(prewarm_enabled(), ambient);
    }

    #[test]
    fn nested_par_map_runs_sequentially_on_workers() {
        // Inner calls observe a thread count of 1 — no unbounded fan-out.
        let inner_counts = with_thread_count(4, || par_map(8, |_| thread_count()));
        assert!(inner_counts.iter().all(|&c| c == 1), "{inner_counts:?}");
    }

    #[test]
    fn results_arrive_in_index_order_under_contention() {
        // Uneven per-index cost exercises the work-stealing path.
        let out = with_thread_count(4, || {
            par_map(257, |i| {
                let mut acc = i as u64;
                for _ in 0..(i % 13) * 500 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i, acc)
            })
        });
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(k, *i);
        }
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        // Two calls; the pool must not grow past what the first one needed.
        let _ = with_thread_count(3, || par_map(64, |i| i * 2));
        let after_first = pool::worker_count();
        assert!(after_first >= 2, "first call should have spawned workers");
        let _ = with_thread_count(3, || par_map(64, |i| i * 2));
        // Other tests run concurrently and may grow the pool, so only check
        // this call didn't need more than the process-wide maximum implies.
        assert!(pool::worker_count() >= after_first);
    }

    #[test]
    fn background_jobs_run_and_join() {
        use std::sync::atomic::AtomicU64;
        static HITS: AtomicU64 = AtomicU64::new(0);
        let handles: Vec<_> =
            (0..8).map(|_| pool::submit(|| { HITS.fetch_add(1, Ordering::Relaxed); })).collect();
        for h in handles {
            h.join();
        }
        assert!(HITS.load(Ordering::Relaxed) >= 8);
    }

    #[test]
    fn background_job_panic_is_delivered_at_join_not_in_the_pool() {
        let ok = pool::submit(|| {});
        let bad = pool::submit(|| panic!("background boom"));
        ok.join();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.join()));
        assert!(err.is_err(), "join must re-raise the job's panic");
        // The pool survives: later work still runs.
        let still = pool::submit(|| {});
        still.join();
        assert_eq!(with_thread_count(2, || par_map(16, |i| i)).len(), 16);
    }

    #[test]
    fn par_map_panic_propagates_and_pool_survives() {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_thread_count(4, || {
                par_map(64, |i| {
                    if i == 33 {
                        panic!("shard boom");
                    }
                    i
                })
            })
        }));
        assert!(err.is_err(), "par_map must propagate worker panics");
        let seq: Vec<usize> = (0..100).collect();
        assert_eq!(with_thread_count(4, || par_map(100, |i| i)), seq);
    }

    #[test]
    fn background_jobs_observe_sequential_thread_count() {
        let h = pool::submit(|| {
            assert_eq!(thread_count(), 1, "pool tasks must not fan out");
        });
        h.join();
    }
}
