//! Zero-dependency deterministic parallelism for trial- and candidate-level
//! fan-out.
//!
//! The engine is a lazily-started **persistent worker pool** (see [`pool`]):
//! callers hand [`par_map`] a pure indexed function, workers claim chunked
//! index ranges from a shared atomic cursor (cheap work-stealing — a fast
//! worker simply claims more chunks), and results are merged back **in index
//! order**, so aggregation is deterministic regardless of scheduling. The
//! pool replaces the earlier scoped `std::thread::scope` design, which paid a
//! thread spawn+join per `par_map` call; workers now park on a condvar
//! between calls and the same threads also absorb background prewarm jobs
//! (see [`pool::submit`]) when no foreground work is queued.
//!
//! Thread count resolution, in priority order:
//!
//! 1. a thread-local override installed by [`with_thread_count`] (used by
//!    tests and benches so concurrent test threads don't race on the process
//!    environment),
//! 2. the `GOC_THREADS` environment variable (a positive integer),
//! 3. [`std::thread::available_parallelism`].
//!
//! `GOC_THREADS=1` (or `with_thread_count(1, ..)`) is an *exact* sequential
//! fallback: [`par_map`] degenerates to a plain in-order loop on the calling
//! thread — no pool, no atomics — so single-threaded runs are bit-identical
//! to the pre-parallel code path by construction.
//!
//! Nested calls do not oversubscribe: pool workers run every task under an
//! implicit `with_thread_count(1, ..)`, so a `par_map` reached from inside
//! another `par_map` (or from a background job) executes sequentially on its
//! worker.
//!
//! The module also owns the `GOC_PREWARM` knob ([`prewarm_enabled`] /
//! [`with_prewarm`]): the gate for the pipelined background candidate
//! prewarm that the universal users and `goc-vm`'s enumerators build on top
//! of [`pool::submit`]. Default on; `GOC_PREWARM=0` restores the inline
//! (foreground) prewarm path. The flag is observationally inert either way —
//! background prewarm only inserts value-identical cache entries and emits
//! process-scoped (nondeterministic) metrics, so `GOC_TRACE` output is
//! byte-identical across `GOC_PREWARM` settings.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static PREWARM_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Resolves the effective worker count for this thread (always ≥ 1).
///
/// See the module docs for the resolution order. Invalid or non-positive
/// `GOC_THREADS` values are ignored.
pub fn thread_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("GOC_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with the thread count pinned to `n` on the current thread,
/// restoring the previous setting afterwards (also on panic).
///
/// This takes precedence over `GOC_THREADS` and is the race-free way for
/// tests and benches to compare sequential vs parallel runs in-process.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// Whether pipelined background prewarm is enabled on this thread.
///
/// Resolution: a thread-local override installed by [`with_prewarm`], then
/// the `GOC_PREWARM` environment variable (read once and latched; any value
/// other than `"0"` — including unset — enables it). The knob gates
/// *pipelining only*: consumers must additionally have idle workers
/// available ([`thread_count`] > 1) for a background job to be worth
/// dispatching, and with the gate off every prewarm runs inline on the
/// calling thread exactly as before the pool existed.
pub fn prewarm_enabled() -> bool {
    if let Some(v) = PREWARM_OVERRIDE.with(|o| o.get()) {
        return v;
    }
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GOC_PREWARM").map(|v| v != "0").unwrap_or(true))
}

/// Runs `f` with background prewarm pinned on/off for the current thread,
/// restoring the previous setting afterwards (also on panic). Mirrors
/// [`with_thread_count`]; benches use it to compare the inline and pipelined
/// prewarm paths in-process without racing on the environment.
pub fn with_prewarm<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            PREWARM_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(PREWARM_OVERRIDE.with(|o| o.replace(Some(enabled))));
    f()
}

/// The persistent worker pool behind [`par_map`] and the background prewarm
/// pipeline.
///
/// Workers are plain detached `std::thread`s, spawned lazily the first time
/// they are needed and parked on a condvar between jobs — a `par_map` call
/// in the steady state costs two mutex operations and a notify instead of a
/// `thread::scope` spawn+join cycle. Two queues feed them:
///
/// * **foreground** — lifetime-erased shards of an in-flight [`par_map`]
///   call; always drained first, so background work can never delay a live
///   computation that has reached the pool;
/// * **background** — `'static` jobs handed to [`submit`] (candidate
///   prewarm); drained only when no foreground work is queued.
///
/// Every task runs under `with_thread_count(1, ..)` (nested fan-out stays
/// sequential) and under `catch_unwind` (a panicking job can never take a
/// pool thread down; the payload is re-raised at the matching join).
///
/// # Safety of the foreground path
///
/// Foreground shards borrow the caller's stack (`par_map`'s closure,
/// cursor, and result buffer). The borrow is transmuted to `'static` to
/// cross the queue, which is sound because [`run_scoped`] does not return —
/// not even by unwinding — until every shard has finished: a drop guard
/// blocks on the shard countdown even when the caller's own slice of the
/// work panics. This is the same discipline `std::thread::scope` enforces,
/// applied to persistent threads.
pub mod pool {
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

    type Task = Box<dyn FnOnce() + Send>;

    /// A queued background job: the runnable body plus a handle on its
    /// completion state, kept separately so [`shutdown`] can complete the
    /// handle of a job it discards without running the body.
    struct BgJob {
        state: Arc<JobState>,
        body: Task,
    }

    struct Queues {
        foreground: VecDeque<Task>,
        background: VecDeque<BgJob>,
        /// Background jobs currently executing on a worker. [`drain`] and
        /// [`shutdown`] wait for this to reach zero — a job mid-write is
        /// never abandoned, only completed.
        background_active: usize,
    }

    struct Pool {
        queues: Mutex<Queues>,
        /// Signalled whenever a task is queued; workers park here.
        available: Condvar,
        /// Signalled when the background lane goes idle (queue empty, no
        /// job executing); [`drain`]/[`shutdown`] park here.
        bg_idle: Condvar,
        /// Number of persistent workers spawned so far.
        workers: AtomicUsize,
    }

    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            queues: Mutex::new(Queues {
                foreground: VecDeque::new(),
                background: VecDeque::new(),
                background_active: 0,
            }),
            available: Condvar::new(),
            bg_idle: Condvar::new(),
            workers: AtomicUsize::new(0),
        })
    }

    /// Locks the task queues, recovering from poisoning: tasks themselves
    /// run outside the lock (and under `catch_unwind`), so a poisoned queue
    /// mutex carries no information about queue integrity.
    fn lock_queues(p: &Pool) -> std::sync::MutexGuard<'_, Queues> {
        p.queues.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Grows the pool to at least `n` persistent workers. [`submit`] only
    /// guarantees a single worker; callers queueing several background jobs
    /// they expect to overlap should reserve capacity here first.
    pub fn ensure_workers(n: usize) {
        let p = pool();
        loop {
            let cur = p.workers.load(Ordering::Relaxed);
            if cur >= n {
                return;
            }
            if p.workers.compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed).is_err()
            {
                continue; // lost the race; re-check the new count
            }
            crate::obs_count_nd!("par.pool.spawned", 1u64);
            std::thread::Builder::new()
                .name(format!("goc-pool-{cur}"))
                .spawn(worker_loop)
                .expect("spawning a pool worker thread");
        }
    }

    fn worker_loop() {
        let p = pool();
        enum Picked {
            Fg(Task),
            Bg(BgJob),
        }
        loop {
            let picked = {
                let mut q = lock_queues(p);
                loop {
                    if let Some(t) = q.foreground.pop_front() {
                        break Picked::Fg(t);
                    }
                    if let Some(j) = q.background.pop_front() {
                        q.background_active += 1;
                        break Picked::Bg(j);
                    }
                    q = p.available.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Nested par_map calls run sequentially on pool workers, and a
            // panicking task must not take the persistent thread down — the
            // payload is delivered through the task's own completion state.
            match picked {
                Picked::Fg(task) => {
                    let _ = catch_unwind(AssertUnwindSafe(|| super::with_thread_count(1, task)));
                }
                Picked::Bg(job) => {
                    let _ =
                        catch_unwind(AssertUnwindSafe(|| super::with_thread_count(1, job.body)));
                    let mut q = lock_queues(p);
                    q.background_active -= 1;
                    if q.background.is_empty() && q.background_active == 0 {
                        p.bg_idle.notify_all();
                    }
                }
            }
        }
    }

    /// Completion state of one background job.
    #[derive(Default)]
    struct JobDone {
        finished: bool,
        /// The job was removed from the queue by [`shutdown`] without
        /// running.
        discarded: bool,
        /// First panic payload, re-raised at [`JobHandle::join`].
        panic: Option<Box<dyn Any + Send>>,
    }

    struct JobState {
        done: Mutex<JobDone>,
        cv: Condvar,
    }

    /// Handle to a background job queued with [`submit`].
    ///
    /// Dropping the handle detaches the job (it still runs). [`join`]
    /// blocks until completion and re-raises the job's panic, if any.
    ///
    /// [`join`]: JobHandle::join
    pub struct JobHandle {
        state: Arc<JobState>,
    }

    impl JobHandle {
        /// Blocks until the job has finished (or was discarded by
        /// [`shutdown`]); re-raises its panic.
        pub fn join(self) {
            let mut g = self.state.done.lock().unwrap_or_else(PoisonError::into_inner);
            while !g.finished {
                g = self.state.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            if let Some(payload) = g.panic.take() {
                drop(g);
                resume_unwind(payload);
            }
        }

        /// Whether the job has finished (without blocking).
        pub fn is_finished(&self) -> bool {
            self.state.done.lock().unwrap_or_else(PoisonError::into_inner).finished
        }

        /// Whether the job was discarded by [`shutdown`] before it ran.
        /// Background work is advisory (cache prewarm), so a discarded job
        /// completes its handle without running — callers that *require*
        /// the side effect should check this after [`join`].
        ///
        /// [`join`]: JobHandle::join
        pub fn was_discarded(&self) -> bool {
            self.state.done.lock().unwrap_or_else(PoisonError::into_inner).discarded
        }
    }

    /// Queues `f` on the background lane of the pool, growing it to the
    /// effective [`thread_count`](super::thread_count) target so queued
    /// jobs overlap instead of serializing on a single worker — a daemon
    /// enqueueing many prewarm jobs gets the parallelism `GOC_THREADS`
    /// promises without every call site remembering
    /// [`ensure_workers`]. Background tasks run only when no foreground
    /// (`par_map`) shard is queued, under `with_thread_count(1, ..)`.
    pub fn submit(f: impl FnOnce() + Send + 'static) -> JobHandle {
        ensure_workers(super::thread_count());
        let state = Arc::new(JobState { done: Mutex::new(JobDone::default()), cv: Condvar::new() });
        let task_state = Arc::clone(&state);
        let body: Task = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut g = task_state.done.lock().unwrap_or_else(PoisonError::into_inner);
            g.finished = true;
            if let Err(payload) = result {
                g.panic = Some(payload);
            }
            task_state.cv.notify_all();
        });
        let p = pool();
        {
            let mut q = lock_queues(p);
            q.background.push_back(BgJob { state: Arc::clone(&state), body });
        }
        crate::obs_count_nd!("par.pool.jobs", 1u64);
        p.available.notify_one();
        JobHandle { state }
    }

    /// Blocks until the background lane is **empty and quiescent**: every
    /// job queued so far (including jobs queued by other threads while this
    /// call waits) has run to completion and no background job is
    /// executing. Foreground (`par_map`) work is unaffected.
    ///
    /// This is the orderly half of the teardown pair — `goc-serve` calls it
    /// when stopping a shard and the CLI calls it on exit, so a prewarm job
    /// mid-write into a shared cache is completed rather than lost with the
    /// process. The complement is [`shutdown`], which discards the queue.
    pub fn drain() {
        let p = pool();
        {
            // Queued jobs need a worker to ever complete; `submit`
            // guarantees one exists whenever it queues, but be defensive —
            // a hang here would be far worse than one spawn.
            let q = lock_queues(p);
            let queued = !q.background.is_empty();
            drop(q);
            if queued {
                ensure_workers(1);
            }
        }
        let mut q = lock_queues(p);
        while !(q.background.is_empty() && q.background_active == 0) {
            q = p.bg_idle.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Discards every **queued** background job — their handles complete
    /// immediately, marked [`was_discarded`](JobHandle::was_discarded),
    /// without the body running — then waits for jobs already executing to
    /// finish (a job mid-write is never interrupted). Returns the number of
    /// jobs discarded.
    ///
    /// Deterministic teardown contract: after `shutdown` returns, no
    /// background job is running or will ever run from the pre-call queue,
    /// and every handle is complete. The pool itself stays usable — later
    /// [`submit`]/[`par_map`] calls behave normally.
    pub fn shutdown() -> usize {
        let p = pool();
        let mut q = lock_queues(p);
        let dropped: Vec<BgJob> = q.background.drain(..).collect();
        for job in &dropped {
            let mut g = job.state.done.lock().unwrap_or_else(PoisonError::into_inner);
            g.finished = true;
            g.discarded = true;
            job.state.cv.notify_all();
        }
        while q.background_active > 0 {
            q = p.bg_idle.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        drop(q);
        // Other drain()/shutdown() waiters see the lane idle now.
        p.bg_idle.notify_all();
        let n = dropped.len();
        // Job bodies may own arbitrary state; run their destructors outside
        // the queue lock.
        drop(dropped);
        crate::obs_count_nd!("par.pool.discarded", n as u64);
        n
    }

    /// Shared countdown for one scoped (foreground) fan-out.
    struct ScopedJob {
        /// The caller's body, lifetime-erased; valid until `remaining`
        /// reaches zero, which [`run_scoped`] awaits before returning.
        body: &'static (dyn Fn() + Sync),
        remaining: AtomicUsize,
        /// First panic payload raised by a pool-side copy of the body.
        panic: Mutex<Option<Box<dyn Any + Send>>>,
        cv: Condvar,
    }

    /// Runs `body` on `extra` pool workers *and* the calling thread,
    /// returning only after every copy has finished. Pool-side panics are
    /// re-raised here; a panic in the caller's own copy still waits for the
    /// workers before unwinding (so the erased borrows can never dangle).
    ///
    /// The caller always participates, so progress is guaranteed even if
    /// every pool worker is busy with earlier work.
    pub(crate) fn run_scoped(extra: usize, body: &(dyn Fn() + Sync)) {
        if extra == 0 {
            body();
            return;
        }
        ensure_workers(extra);
        // SAFETY: the guard below keeps this frame alive (even through an
        // unwinding caller) until `remaining` hits zero, i.e. until no task
        // can touch `body` again.
        let body_static: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(body) };
        let job = Arc::new(ScopedJob {
            body: body_static,
            remaining: AtomicUsize::new(extra),
            panic: Mutex::new(None),
            cv: Condvar::new(),
        });
        let p = pool();
        {
            let mut q = lock_queues(p);
            for _ in 0..extra {
                let job = Arc::clone(&job);
                q.foreground.push_back(Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(job.body)) {
                        let mut g = job.panic.lock().unwrap_or_else(PoisonError::into_inner);
                        g.get_or_insert(payload);
                    }
                    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Pair the notify with the wait-side mutex so the
                        // caller cannot miss the final wakeup.
                        let _g = job.panic.lock().unwrap_or_else(PoisonError::into_inner);
                        job.cv.notify_all();
                    }
                }));
            }
            p.available.notify_all();
        }
        struct WaitGuard<'a>(&'a ScopedJob);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                let mut g = self.0.panic.lock().unwrap_or_else(PoisonError::into_inner);
                while self.0.remaining.load(Ordering::Acquire) > 0 {
                    g = self.0.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        {
            let _wait = WaitGuard(&job);
            body();
        }
        let payload = job.panic.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Number of persistent workers currently alive (test/metrics hook).
    pub fn worker_count() -> usize {
        pool().workers.load(Ordering::Relaxed)
    }
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// With an effective thread count of 1 (or `n <= 1`) this is exactly
/// `(0..n).map(f).collect()` on the calling thread. Otherwise the calling
/// thread plus `threads - 1` persistent [`pool`] workers claim chunks of the
/// index range from an atomic cursor; each participant evaluates its indices
/// locally and the results are sorted back into index order before
/// returning. `f` must therefore be safe to call from any thread and — for
/// deterministic callers — depend only on its index.
///
/// A panic in `f` propagates to the caller once every participant has
/// stopped.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread_count().min(n.max(1));
    // When the recorder is on, each task's observability records are
    // captured in a per-task buffer and flushed in index order below —
    // the same merge discipline as the results — so the record stream is
    // bit-identical at any thread count. Off (the default), `tracing` is
    // false and both paths are exactly the pre-observability code.
    let tracing = crate::obs::enabled();
    if threads <= 1 || n <= 1 {
        if !tracing {
            return (0..n).map(f).collect();
        }
        return (0..n)
            .map(|i| {
                let (v, records) = crate::obs::task_capture(|| f(i));
                crate::obs::flush_task(i as u64, records);
                v
            })
            .collect();
    }
    // Chunks of ~n/(4·threads) amortize cursor contention while letting fast
    // workers steal the tail of a slow worker's share.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    type Keyed<T> = (usize, T, Vec<crate::obs::Record>);
    let results: Mutex<Vec<Keyed<T>>> = Mutex::new(Vec::with_capacity(n));
    let body = || {
        // Every participant (pool workers and the caller itself) runs
        // nested par_map calls sequentially.
        with_thread_count(1, || {
            let mut local: Vec<Keyed<T>> = Vec::new();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    if tracing {
                        let (v, records) = crate::obs::task_capture(|| f(i));
                        local.push((i, v, records));
                    } else {
                        local.push((i, f(i), Vec::new()));
                    }
                }
            }
            results.lock().unwrap().extend(local);
        });
    };
    pool::run_scoped(threads - 1, &body);
    let mut pairs = results.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _, _)| i);
    pairs
        .into_iter()
        .map(|(i, v, records)| {
            crate::obs::flush_task(i as u64, records);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64;
        let seq: Vec<u64> = (0..1000).map(f) .collect();
        for threads in [1, 2, 4, 7] {
            let par = with_thread_count(threads, || par_map(1000, f));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(with_thread_count(4, || par_map(0, |i| i)), Vec::<usize>::new());
        assert_eq!(with_thread_count(4, || par_map(1, |i| i * 3)), vec![0]);
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let before = thread_count();
        with_thread_count(3, || {
            assert_eq!(thread_count(), 3);
            with_thread_count(1, || assert_eq!(thread_count(), 1));
            assert_eq!(thread_count(), 3);
        });
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn prewarm_override_is_scoped_and_restored() {
        let ambient = prewarm_enabled();
        with_prewarm(!ambient, || {
            assert_eq!(prewarm_enabled(), !ambient);
            with_prewarm(ambient, || assert_eq!(prewarm_enabled(), ambient));
            assert_eq!(prewarm_enabled(), !ambient);
        });
        assert_eq!(prewarm_enabled(), ambient);
    }

    #[test]
    fn nested_par_map_runs_sequentially_on_workers() {
        // Inner calls observe a thread count of 1 — no unbounded fan-out.
        let inner_counts = with_thread_count(4, || par_map(8, |_| thread_count()));
        assert!(inner_counts.iter().all(|&c| c == 1), "{inner_counts:?}");
    }

    #[test]
    fn results_arrive_in_index_order_under_contention() {
        // Uneven per-index cost exercises the work-stealing path.
        let out = with_thread_count(4, || {
            par_map(257, |i| {
                let mut acc = i as u64;
                for _ in 0..(i % 13) * 500 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i, acc)
            })
        });
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(k, *i);
        }
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        // Two calls; the pool must not grow past what the first one needed.
        let _ = with_thread_count(3, || par_map(64, |i| i * 2));
        let after_first = pool::worker_count();
        assert!(after_first >= 2, "first call should have spawned workers");
        let _ = with_thread_count(3, || par_map(64, |i| i * 2));
        // Other tests run concurrently and may grow the pool, so only check
        // this call didn't need more than the process-wide maximum implies.
        assert!(pool::worker_count() >= after_first);
    }

    /// Serializes the tests that touch the process-global background lane:
    /// `shutdown()` discards *every* queued background job, so a test
    /// running it concurrently with another test's `submit`/`join` pair
    /// would discard that test's jobs out from under it.
    static BG_LOCK: Mutex<()> = Mutex::new(());

    fn bg_lock() -> std::sync::MutexGuard<'static, ()> {
        BG_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn background_jobs_run_and_join() {
        use std::sync::atomic::AtomicU64;
        static HITS: AtomicU64 = AtomicU64::new(0);
        let _g = bg_lock();
        let handles: Vec<_> =
            (0..8).map(|_| pool::submit(|| { HITS.fetch_add(1, Ordering::Relaxed); })).collect();
        for h in handles {
            h.join();
        }
        assert!(HITS.load(Ordering::Relaxed) >= 8);
    }

    #[test]
    fn background_job_panic_is_delivered_at_join_not_in_the_pool() {
        let _g = bg_lock();
        let ok = pool::submit(|| {});
        let bad = pool::submit(|| panic!("background boom"));
        ok.join();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.join()));
        assert!(err.is_err(), "join must re-raise the job's panic");
        // The pool survives: later work still runs.
        let still = pool::submit(|| {});
        still.join();
        assert_eq!(with_thread_count(2, || par_map(16, |i| i)).len(), 16);
    }

    #[test]
    fn submit_honors_the_effective_thread_target() {
        // Regression: `submit` used to guarantee only one worker, so queued
        // background jobs serialized unless a caller happened to call
        // `ensure_workers(n)` first. Eight jobs rendezvous: each waits for
        // all eight to have started, which is only possible if the pool
        // grew to (at least) the thread-local target of 8.
        use std::sync::atomic::AtomicUsize;
        static STARTED: AtomicUsize = AtomicUsize::new(0);
        let _g = bg_lock();
        let handles: Vec<_> = with_thread_count(8, || {
            (0..8)
                .map(|_| {
                    pool::submit(|| {
                        STARTED.fetch_add(1, Ordering::SeqCst);
                        let deadline = std::time::Instant::now()
                            + std::time::Duration::from_secs(30);
                        while STARTED.load(Ordering::SeqCst) < 8 {
                            assert!(
                                std::time::Instant::now() < deadline,
                                "background jobs serialized: the pool never \
                                 grew to the thread target"
                            );
                            std::thread::yield_now();
                        }
                    })
                })
                .collect()
        });
        for h in handles {
            h.join();
        }
        assert!(pool::worker_count() >= 8);
    }

    #[test]
    fn drain_completes_every_queued_background_job() {
        use std::sync::atomic::AtomicUsize;
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let _g = bg_lock();
        let handles: Vec<_> = (0..32)
            .map(|_| pool::submit(|| { RAN.fetch_add(1, Ordering::SeqCst); }))
            .collect();
        pool::drain();
        // After drain, every job has run to completion — nothing is lost
        // and nothing is still mid-write.
        assert!(handles.iter().all(|h| h.is_finished()));
        assert!(handles.iter().all(|h| !h.was_discarded()));
        assert!(RAN.load(Ordering::SeqCst) >= 32);
        for h in handles {
            h.join();
        }
    }

    #[test]
    fn shutdown_discards_queued_jobs_and_finishes_active_ones() {
        use std::sync::atomic::{AtomicBool, AtomicUsize};
        static RELEASE: AtomicBool = AtomicBool::new(false);
        static MARKERS_RAN: AtomicUsize = AtomicUsize::new(0);
        let _g = bg_lock();
        RELEASE.store(false, Ordering::SeqCst);
        // Saturate every live worker (with a wide margin for workers other
        // tests may spawn concurrently) with jobs that park until released,
        // so the marker jobs queued behind them cannot start.
        let blockers: Vec<_> = (0..pool::worker_count() + 64)
            .map(|_| {
                pool::submit(|| {
                    let deadline =
                        std::time::Instant::now() + std::time::Duration::from_secs(30);
                    while !RELEASE.load(Ordering::SeqCst) {
                        assert!(std::time::Instant::now() < deadline, "release never came");
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        let markers: Vec<_> = (0..8)
            .map(|_| pool::submit(|| { MARKERS_RAN.fetch_add(1, Ordering::SeqCst); }))
            .collect();
        // shutdown() blocks on the *active* blockers, so run it on a helper
        // thread, wait until it has cleared the queue (every marker handle
        // completes as discarded), then release the active jobs.
        let shut = std::thread::spawn(pool::shutdown);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while !markers.iter().all(|h| h.is_finished()) {
            assert!(std::time::Instant::now() < deadline, "shutdown never cleared the queue");
            std::thread::yield_now();
        }
        RELEASE.store(true, Ordering::SeqCst);
        let discarded = shut.join().expect("shutdown thread");
        // Every marker was queued behind the blockers, so none ran: the
        // discard is deterministic, not racy best-effort.
        assert_eq!(MARKERS_RAN.load(Ordering::SeqCst), 0, "a discarded job ran anyway");
        assert!(markers.iter().all(|h| h.was_discarded()));
        assert!(discarded >= markers.len(), "shutdown discarded {discarded} < 8 jobs");
        for h in markers {
            h.join(); // completes immediately, no panic
        }
        for h in blockers {
            h.join(); // active ones ran to completion; queued ones discarded
        }
        // The pool stays usable after shutdown.
        let again = pool::submit(|| {});
        while !again.is_finished() {
            std::thread::yield_now();
        }
        assert!(!again.was_discarded());
        again.join();
        assert_eq!(with_thread_count(2, || par_map(16, |i| i)).len(), 16);
    }

    #[test]
    fn par_map_panic_propagates_and_pool_survives() {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_thread_count(4, || {
                par_map(64, |i| {
                    if i == 33 {
                        panic!("shard boom");
                    }
                    i
                })
            })
        }));
        assert!(err.is_err(), "par_map must propagate worker panics");
        let seq: Vec<usize> = (0..100).collect();
        assert_eq!(with_thread_count(4, || par_map(100, |i| i)), seq);
    }

    #[test]
    fn background_jobs_observe_sequential_thread_count() {
        let h = pool::submit(|| {
            assert_eq!(thread_count(), 1, "pool tasks must not fan out");
        });
        h.join();
    }
}
