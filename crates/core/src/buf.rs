//! Pooled, refcounted message buffers — the zero-copy backbone of the round
//! loop.
//!
//! A [`MsgBuf`] stores a message payload either **inline** (payloads of up to
//! [`INLINE_CAP`] bytes live directly in the value, no heap at all) or
//! **spilled** into a refcounted heap allocation. Cloning is O(1) and
//! allocation-free in both cases: inline buffers are `memcpy`d, spilled
//! buffers bump a reference count (copy-on-write at the `Message` level —
//! buffers are immutable once built, so "write" is "build a new one").
//!
//! Spilled allocations are recycled through a thread-local [`BufPool`]: when
//! the last reference to a spilled buffer drops, its allocation (including
//! the payload `Vec`'s capacity) goes back to the dropping thread's pool, and
//! the next spill on that thread reuses it. A warm steady-state round loop
//! therefore performs **zero** heap allocations regardless of payload size —
//! the property gated by the E13 bench in CI.
//!
//! The pool is on by default; `GOC_MSG_POOL=0` disables it process-wide (each
//! thread reads the variable once), and [`with_pool`] scopes an override for
//! tests that compare pooled against unpooled behaviour without racing on the
//! environment. [`with_copy_mode`] additionally exposes
//! [`CopyMode::Eager`], which restores the pre-zero-copy **value
//! semantics** — every clone of a spilled buffer deep-copies its payload into
//! a fresh allocation, as a plain `Vec<u8>`-backed message type would. The
//! bench harness uses it to measure this engine against an honest
//! reproduction of its predecessor; representations never leak into message
//! equality, so the mode is observationally inert.

use std::cell::{Cell, RefCell};
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

/// Maximum payload length stored inline (without touching the heap).
pub const INLINE_CAP: usize = 23;

/// Maximum number of spilled allocations a thread's pool retains.
const POOL_CAP: usize = 256;

/// Spilled payloads whose `Vec` capacity exceeds this are freed instead of
/// pooled, so one huge message cannot pin memory forever.
const MAX_POOLED_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------------
// The refcounted spill
// ---------------------------------------------------------------------------

struct SpillInner {
    refs: AtomicUsize,
    data: Vec<u8>,
}

/// A shared handle to a spilled payload. Hand-rolled rather than
/// `Arc<Vec<u8>>` so the *allocation itself* can be recycled: dropping the
/// last handle returns the whole `Box<SpillInner>` (header and payload
/// capacity) to the thread-local pool instead of the system allocator.
struct Spill {
    ptr: NonNull<SpillInner>,
}

// SAFETY: the payload is immutable after construction and the refcount is
// atomic, so handles may be sent and shared across threads. Recycling happens
// on whichever thread drops the last handle — pools are per-thread caches,
// not owners.
unsafe impl Send for Spill {}
unsafe impl Sync for Spill {}

impl Spill {
    fn inner(&self) -> &SpillInner {
        // SAFETY: the pointer is valid while at least one handle exists.
        unsafe { self.ptr.as_ref() }
    }

    fn from_inner(inner: Box<SpillInner>) -> Self {
        // SAFETY: Box::into_raw never returns null.
        Spill { ptr: unsafe { NonNull::new_unchecked(Box::into_raw(inner)) } }
    }

    fn data(&self) -> &[u8] {
        &self.inner().data
    }

    fn is_unique(&self) -> bool {
        self.inner().refs.load(Ordering::Acquire) == 1
    }
}

impl Clone for Spill {
    fn clone(&self) -> Self {
        self.inner().refs.fetch_add(1, Ordering::Relaxed);
        Spill { ptr: self.ptr }
    }
}

impl Drop for Spill {
    fn drop(&mut self) {
        if self.inner().refs.fetch_sub(1, Ordering::Release) == 1 {
            fence(Ordering::Acquire);
            // SAFETY: we held the last reference.
            let inner = unsafe { Box::from_raw(self.ptr.as_ptr()) };
            recycle(inner);
        }
    }
}

// ---------------------------------------------------------------------------
// The thread-local pool
// ---------------------------------------------------------------------------

/// A free list of spill allocations. One per thread, reached through the
/// module-level functions; the type itself only exists so tests and
/// diagnostics can talk about pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Spills served from the pool (no allocation performed).
    pub hits: u64,
    /// Spills that had to allocate because the pool was empty or disabled.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
}

/// How spilled payloads are allocated and cloned on the current thread.
///
/// The default is [`Pooled`](CopyMode::Pooled); the other modes exist so
/// benchmarks and tests can measure the zero-copy engine against controlled
/// regressions of itself. All three modes produce byte-identical messages —
/// only the allocation traffic differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CopyMode {
    /// Refcounted spills served from the thread-local pool (the default).
    #[default]
    Pooled,
    /// Refcounted spills, each freshly allocated (pool bypassed).
    Unpooled,
    /// Pre-zero-copy value semantics: the pool is bypassed **and** every
    /// clone of a spilled buffer deep-copies the payload into a fresh
    /// allocation, exactly as a `Vec<u8>`-backed message type behaves.
    Eager,
}

thread_local! {
    static POOL: RefCell<Vec<Box<SpillInner>>> = const { RefCell::new(Vec::new()) };
    static MODE_OVERRIDE: Cell<Option<CopyMode>> = const { Cell::new(None) };
    static MODE_ENV: Cell<Option<CopyMode>> = const { Cell::new(None) };
    static STATS: Cell<PoolStats> = const { Cell::new(PoolStats { hits: 0, misses: 0, recycled: 0 }) };
}

/// The copy mode in effect on this thread.
pub fn copy_mode() -> CopyMode {
    if let Some(forced) = MODE_OVERRIDE.with(|c| c.get()) {
        return forced;
    }
    MODE_ENV.with(|c| match c.get() {
        Some(v) => v,
        None => {
            let v = match std::env::var("GOC_MSG_POOL").as_deref() {
                Ok("0") => CopyMode::Unpooled,
                Ok("eager") => CopyMode::Eager,
                _ => CopyMode::Pooled,
            };
            c.set(Some(v));
            v
        }
    })
}

fn pool_enabled() -> bool {
    copy_mode() == CopyMode::Pooled
}

/// Runs `f` under an explicit [`CopyMode`] on this thread, restoring the
/// previous setting afterwards. This is the race-free way for tests and
/// benches to compare allocation regimes (mutating `GOC_MSG_POOL` mid-process
/// would race against other test threads).
pub fn with_copy_mode<T>(mode: CopyMode, f: impl FnOnce() -> T) -> T {
    let prev = MODE_OVERRIDE.with(|c| c.replace(Some(mode)));
    struct Restore(Option<CopyMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// [`with_copy_mode`] restricted to the pooled/unpooled axis.
pub fn with_pool<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    with_copy_mode(if enabled { CopyMode::Pooled } else { CopyMode::Unpooled }, f)
}

/// This thread's pool statistics since the last [`reset_pool_stats`].
pub fn pool_stats() -> PoolStats {
    STATS.with(|s| s.get())
}

/// Zeroes this thread's pool statistics.
pub fn reset_pool_stats() {
    STATS.with(|s| s.set(PoolStats::default()));
}

fn bump(f: impl FnOnce(&mut PoolStats)) {
    STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

fn take_inner() -> Option<Box<SpillInner>> {
    if !pool_enabled() {
        return None;
    }
    POOL.with(|p| p.borrow_mut().pop())
}

fn recycle(mut inner: Box<SpillInner>) {
    if pool_enabled() && inner.data.capacity() <= MAX_POOLED_CAPACITY {
        let kept = POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_CAP {
                inner.data.clear();
                inner.refs.store(1, Ordering::Relaxed);
                pool.push(inner);
                true
            } else {
                false
            }
        });
        if kept {
            bump(|s| s.recycled += 1);
            crate::obs_count_nd!("pool.recycled", 1u64);
        }
    }
}

fn spill_from_slice(bytes: &[u8]) -> Spill {
    match take_inner() {
        Some(mut inner) => {
            bump(|s| s.hits += 1);
            crate::obs_count_nd!("pool.hit", 1u64);
            inner.data.extend_from_slice(bytes);
            Spill::from_inner(inner)
        }
        None => {
            bump(|s| s.misses += 1);
            crate::obs_count_nd!("pool.miss", 1u64);
            Spill::from_inner(Box::new(SpillInner {
                refs: AtomicUsize::new(1),
                data: bytes.to_vec(),
            }))
        }
    }
}

fn spill_from_vec(vec: Vec<u8>) -> Spill {
    match take_inner() {
        Some(mut inner) => {
            bump(|s| s.hits += 1);
            crate::obs_count_nd!("pool.hit", 1u64);
            // Adopt the caller's Vec wholesale; the pooled (empty) Vec is
            // dropped in its place. No allocation either way.
            inner.data = vec;
            Spill::from_inner(inner)
        }
        None => {
            bump(|s| s.misses += 1);
            crate::obs_count_nd!("pool.miss", 1u64);
            Spill::from_inner(Box::new(SpillInner { refs: AtomicUsize::new(1), data: vec }))
        }
    }
}

// ---------------------------------------------------------------------------
// MsgBuf
// ---------------------------------------------------------------------------

enum Repr {
    Inline { len: u8, data: [u8; INLINE_CAP] },
    Spilled(Spill),
}

/// An immutable byte buffer with inline small-payload storage and pooled,
/// refcounted heap spill. See the module docs for the lifecycle.
pub struct MsgBuf(Repr);

impl MsgBuf {
    /// The empty buffer (no heap, trivially).
    pub const fn empty() -> Self {
        MsgBuf(Repr::Inline { len: 0, data: [0u8; INLINE_CAP] })
    }

    /// Builds a buffer by copying `bytes`: inline when they fit, otherwise
    /// into a (pooled) spill.
    pub fn from_slice(bytes: &[u8]) -> Self {
        if bytes.len() <= INLINE_CAP {
            let mut data = [0u8; INLINE_CAP];
            data[..bytes.len()].copy_from_slice(bytes);
            MsgBuf(Repr::Inline { len: bytes.len() as u8, data })
        } else {
            MsgBuf(Repr::Spilled(spill_from_slice(bytes)))
        }
    }

    /// Builds a buffer from an owned `Vec`, adopting its allocation when the
    /// payload does not fit inline.
    pub fn from_vec(vec: Vec<u8>) -> Self {
        if vec.len() <= INLINE_CAP {
            MsgBuf::from_slice(&vec)
        } else {
            MsgBuf(Repr::Spilled(spill_from_vec(vec)))
        }
    }

    /// The payload.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, data } => &data[..*len as usize],
            Repr::Spilled(s) => s.data(),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spilled(s) => s.data().len(),
        }
    }

    /// `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the payload as an owned `Vec`. For a uniquely held spill this
    /// is allocation-free (the payload `Vec` is moved out and the spill
    /// header recycled); otherwise the payload is copied.
    pub fn into_vec(self) -> Vec<u8> {
        match self.0 {
            Repr::Inline { len, data } => data[..len as usize].to_vec(),
            Repr::Spilled(ref s) if s.is_unique() => {
                // SAFETY: sole owner, so we may mutate through the pointer;
                // the subsequent Drop of `self` recycles the (now empty)
                // inner.
                let ptr = s.ptr;
                unsafe { std::mem::take(&mut (*ptr.as_ptr()).data) }
            }
            Repr::Spilled(ref s) => s.data().to_vec(),
        }
    }

    /// Address of the heap payload, or `None` for inline buffers. Used by
    /// tests asserting the zero-copy property (e.g. that a `Perfect` channel
    /// hands the identical buffer to the receiver).
    pub fn heap_ptr(&self) -> Option<*const u8> {
        match &self.0 {
            Repr::Inline { .. } => None,
            Repr::Spilled(s) => Some(s.data().as_ptr()),
        }
    }

    /// `true` if the payload lives on the heap (spilled).
    pub fn is_spilled(&self) -> bool {
        matches!(self.0, Repr::Spilled(_))
    }
}

impl Clone for MsgBuf {
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Inline { len, data } => MsgBuf(Repr::Inline { len: *len, data: *data }),
            Repr::Spilled(s) if copy_mode() == CopyMode::Eager => {
                MsgBuf(Repr::Spilled(spill_from_slice(s.data())))
            }
            Repr::Spilled(s) => MsgBuf(Repr::Spilled(s.clone())),
        }
    }
}

impl Default for MsgBuf {
    fn default() -> Self {
        MsgBuf::empty()
    }
}

impl PartialEq for MsgBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for MsgBuf {}

impl PartialOrd for MsgBuf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MsgBuf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for MsgBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for MsgBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgBuf")
            .field("len", &self.len())
            .field("spilled", &self.is_spilled())
            .finish()
    }
}

impl AsRef<[u8]> for MsgBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn small_payloads_stay_inline() {
        for n in 0..=INLINE_CAP {
            let b = MsgBuf::from_slice(&big(n));
            assert!(!b.is_spilled(), "len {n} should be inline");
            assert_eq!(b.as_slice(), &big(n)[..]);
            assert_eq!(b.heap_ptr(), None);
        }
    }

    #[test]
    fn large_payloads_spill_and_roundtrip() {
        let payload = big(INLINE_CAP + 1);
        let b = MsgBuf::from_slice(&payload);
        assert!(b.is_spilled());
        assert_eq!(b.as_slice(), &payload[..]);
        assert_eq!(b.into_vec(), payload);
    }

    #[test]
    fn clone_shares_the_spill() {
        let b = MsgBuf::from_slice(&big(100));
        let c = b.clone();
        assert_eq!(b.heap_ptr(), c.heap_ptr());
        assert_eq!(b, c);
    }

    #[test]
    fn from_vec_adopts_large_allocations() {
        let v = big(100);
        let ptr = v.as_ptr();
        let b = with_pool(false, || MsgBuf::from_vec(v));
        assert_eq!(b.heap_ptr(), Some(ptr as *const u8), "Vec must be adopted, not copied");
    }

    #[test]
    fn unique_into_vec_moves_the_payload() {
        let b = MsgBuf::from_slice(&big(64));
        let ptr = b.heap_ptr().unwrap();
        let v = b.into_vec();
        assert_eq!(v.as_ptr() as *const u8, ptr, "unique spill must move, not copy");
        assert_eq!(v, big(64));
    }

    #[test]
    fn shared_into_vec_copies() {
        let b = MsgBuf::from_slice(&big(64));
        let c = b.clone();
        let v = b.into_vec();
        assert_eq!(v, big(64));
        assert_eq!(c.as_slice(), &big(64)[..], "the surviving handle still reads");
    }

    #[test]
    fn pool_recycles_spills() {
        with_pool(true, || {
            // Drain anything a previous test left behind, then measure.
            let payload = big(4096);
            let warm = MsgBuf::from_slice(&payload);
            drop(warm); // recycled
            reset_pool_stats();
            let a = MsgBuf::from_slice(&payload);
            let stats = pool_stats();
            assert!(stats.hits >= 1, "expected a pool hit, got {stats:?}");
            drop(a);
            assert!(pool_stats().recycled >= 1);
        });
    }

    #[test]
    fn pool_reuses_the_same_allocation() {
        with_pool(true, || {
            let payload = big(512);
            let a = MsgBuf::from_slice(&payload);
            let ptr = a.heap_ptr().unwrap();
            drop(a);
            let b = MsgBuf::from_slice(&payload);
            assert_eq!(b.heap_ptr(), Some(ptr), "spill allocation must be recycled");
        });
    }

    #[test]
    fn disabled_pool_never_recycles() {
        with_pool(false, || {
            reset_pool_stats();
            let a = MsgBuf::from_slice(&big(512));
            drop(a);
            let stats = pool_stats();
            assert_eq!(stats.hits, 0);
            assert_eq!(stats.recycled, 0);
            assert!(stats.misses >= 1);
        });
    }

    #[test]
    fn with_pool_restores_previous_setting() {
        with_pool(true, || {
            with_pool(false, || {
                assert!(!pool_enabled());
            });
            assert!(pool_enabled());
        });
    }

    #[test]
    fn eager_mode_deep_copies_spilled_clones() {
        with_copy_mode(CopyMode::Eager, || {
            let a = MsgBuf::from_slice(&big(100));
            let b = a.clone();
            assert_eq!(a, b, "eager clones are byte-identical");
            assert_ne!(a.heap_ptr(), b.heap_ptr(), "eager clones must not share the spill");
        });
    }

    #[test]
    fn eager_mode_bypasses_the_pool() {
        with_copy_mode(CopyMode::Eager, || {
            reset_pool_stats();
            let a = MsgBuf::from_slice(&big(512));
            drop(a);
            let stats = pool_stats();
            assert_eq!(stats.hits, 0);
            assert_eq!(stats.recycled, 0);
        });
    }

    #[test]
    fn copy_mode_nests_and_restores() {
        with_copy_mode(CopyMode::Pooled, || {
            with_copy_mode(CopyMode::Eager, || {
                assert_eq!(copy_mode(), CopyMode::Eager);
            });
            assert_eq!(copy_mode(), CopyMode::Pooled);
        });
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        with_pool(true, || {
            reset_pool_stats();
            let a = MsgBuf::from_slice(&big(MAX_POOLED_CAPACITY + 1));
            drop(a);
            assert_eq!(pool_stats().recycled, 0, "oversized spills must be freed");
        });
    }

    #[test]
    fn equality_ignores_representation() {
        let payload = big(INLINE_CAP); // inline
        let inline = MsgBuf::from_slice(&payload);
        // Force a spilled representation of the same bytes via a larger vec
        // truncated… not possible (immutable); compare inline/inline and
        // spilled/spilled plus ordering across sizes instead.
        assert_eq!(inline, MsgBuf::from_slice(&payload));
        let a = MsgBuf::from_slice(&big(50));
        let b = MsgBuf::from_slice(&big(50));
        assert_eq!(a, b);
        assert!(MsgBuf::from_slice(b"a") < MsgBuf::from_slice(b"ab"));
        assert!(MsgBuf::from_slice(b"a") < MsgBuf::from_slice(b"b"));
    }

    #[test]
    fn send_sync_bounds_hold() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MsgBuf>();
    }

    #[test]
    fn cross_thread_drop_is_sound() {
        let b = MsgBuf::from_slice(&big(100));
        let c = b.clone();
        let h = std::thread::spawn(move || {
            assert_eq!(c.len(), 100);
            drop(c);
        });
        h.join().unwrap();
        assert_eq!(b.len(), 100);
    }
}
