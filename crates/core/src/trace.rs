//! Transcript rendering and channel statistics — diagnostics for debugging
//! strategies, sensing functions and referees.

use crate::exec::{StopReason, Transcript};
use crate::view::UserView;
use std::fmt::Debug;
use std::fmt::Write as _;

/// Aggregate statistics of the user-visible channels of an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Rounds observed.
    pub rounds: u64,
    /// Non-silent messages the user sent to the server.
    pub sent_to_server: u64,
    /// Non-silent messages the user sent to the world.
    pub sent_to_world: u64,
    /// Non-silent messages received from the server.
    pub recv_from_server: u64,
    /// Non-silent messages received from the world.
    pub recv_from_world: u64,
    /// Total payload bytes sent by the user.
    pub bytes_sent: u64,
    /// Total payload bytes received by the user.
    pub bytes_received: u64,
    /// Rounds in which the user sent nothing on either channel. Counted
    /// per event, so a round where the user speaks on both channels at
    /// once is still exactly one speaking round.
    pub silent_rounds: u64,
}

impl ChannelStats {
    /// Computes statistics over a user view.
    pub fn of(view: &UserView) -> Self {
        let mut s = ChannelStats { rounds: view.len() as u64, ..Default::default() };
        for ev in view {
            if !ev.sent.to_server.is_silence() {
                s.sent_to_server += 1;
                s.bytes_sent += ev.sent.to_server.len() as u64;
            }
            if !ev.sent.to_world.is_silence() {
                s.sent_to_world += 1;
                s.bytes_sent += ev.sent.to_world.len() as u64;
            }
            if ev.sent.to_server.is_silence() && ev.sent.to_world.is_silence() {
                s.silent_rounds += 1;
            }
            if !ev.received.from_server.is_silence() {
                s.recv_from_server += 1;
                s.bytes_received += ev.received.from_server.len() as u64;
            }
            if !ev.received.from_world.is_silence() {
                s.recv_from_world += 1;
                s.bytes_received += ev.received.from_world.len() as u64;
            }
        }
        s
    }

    /// Fraction of rounds in which the user said nothing at all — exact,
    /// from the per-round [`silent_rounds`](Self::silent_rounds) count.
    pub fn user_silence_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 1.0;
        }
        self.silent_rounds as f64 / self.rounds as f64
    }
}

/// Renders the first `limit` and last `limit` rounds of a transcript as a
/// human-readable table (non-silent channels only).
pub fn render<S: Clone + Debug>(transcript: &Transcript<S>, limit: usize) -> String {
    let mut out = String::new();
    let n = transcript.view.len();
    let _ = writeln!(out, "execution: {} rounds, stop = {}", transcript.rounds, stop_str(&transcript.stop));
    let events: Vec<usize> = if n <= 2 * limit {
        (0..n).collect()
    } else {
        (0..limit).chain(n - limit..n).collect()
    };
    // Rounds outside the window and all-silent rounds inside it are both
    // elided; consecutive elisions of either kind merge into one marker so
    // the printed round numbers never jump without an accounting line.
    let mut last: Option<usize> = None;
    let mut elided: u64 = 0;
    for &i in &events {
        if let Some(prev) = last {
            if i > prev + 1 {
                elided += (i - prev - 1) as u64;
            }
        }
        last = Some(i);
        let ev = &transcript.view.events()[i];
        let mut parts = Vec::new();
        if !ev.received.from_server.is_silence() {
            parts.push(format!("s→u {}", ev.received.from_server));
        }
        if !ev.received.from_world.is_silence() {
            parts.push(format!("w→u {}", ev.received.from_world));
        }
        if !ev.sent.to_server.is_silence() {
            parts.push(format!("u→s {}", ev.sent.to_server));
        }
        if !ev.sent.to_world.is_silence() {
            parts.push(format!("u→w {}", ev.sent.to_world));
        }
        if parts.is_empty() {
            elided += 1;
            continue;
        }
        if elided > 0 {
            let _ = writeln!(out, "  … {elided} rounds elided …");
            elided = 0;
        }
        let _ = writeln!(out, "  r{:>5}: {}", ev.round, parts.join(" | "));
    }
    if elided > 0 {
        let _ = writeln!(out, "  … {elided} rounds elided …");
    }
    out
}

fn stop_str(stop: &StopReason) -> String {
    match stop {
        StopReason::UserHalted(h) => format!("halted({})", h.output),
        StopReason::HorizonExhausted => "horizon".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;
    use crate::goal::Goal;
    use crate::rng::GocRng;
    use crate::toy;

    fn sample_transcript() -> Transcript<toy::MagicState> {
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::new("hi")),
            rng,
        );
        exec.run(50)
    }

    #[test]
    fn stats_count_messages() {
        let t = sample_transcript();
        let stats = ChannelStats::of(&t.view);
        assert!(stats.sent_to_server >= 1);
        assert!(stats.recv_from_world >= 1, "the ACK");
        assert!(stats.bytes_sent >= 2);
        assert!(stats.rounds >= 4);
        assert!(stats.user_silence_rate() <= 1.0);
    }

    #[test]
    fn stats_of_empty_view() {
        let stats = ChannelStats::of(&UserView::new());
        assert_eq!(stats, ChannelStats::default());
        assert_eq!(stats.user_silence_rate(), 1.0);
    }

    #[test]
    fn render_shows_traffic_and_stop() {
        let t = sample_transcript();
        let text = render(&t, 10);
        assert!(text.contains("halted(heard)"), "{text}");
        assert!(text.contains("u→s hi"), "{text}");
        assert!(text.contains("w→u ACK"), "{text}");
    }

    #[test]
    fn silence_rate_is_exact_when_both_channels_speak_in_one_round() {
        use crate::msg::{Message, UserIn, UserOut};
        use crate::view::ViewEvent;

        // Round 0: the user speaks on BOTH channels at once. Rounds 1–3:
        // silence. The old totals-based approximation counted two speaking
        // rounds (2/4 = 0.5 silence); the exact rate is 3/4.
        let mut view = UserView::new();
        view.push(ViewEvent {
            round: 0,
            received: UserIn::default(),
            sent: UserOut {
                to_server: Message::from_bytes(b"hi".to_vec()),
                to_world: Message::from_bytes(b"lo".to_vec()),
            },
        });
        for round in 1..4 {
            view.push(ViewEvent {
                round,
                received: UserIn::default(),
                sent: UserOut::silence(),
            });
        }
        let stats = ChannelStats::of(&view);
        assert_eq!(stats.rounds, 4);
        assert_eq!(stats.sent_to_server, 1);
        assert_eq!(stats.sent_to_world, 1);
        assert_eq!(stats.silent_rounds, 3);
        assert_eq!(stats.user_silence_rate(), 0.75);
    }

    #[test]
    fn render_marks_silent_rounds_inside_the_window() {
        use crate::exec::StopReason;
        use crate::msg::{Message, UserIn, UserOut};
        use crate::view::ViewEvent;

        // Traffic at rounds 0 and 5, silence at 1–4 — all inside the
        // printed window. The old renderer skipped the silent rounds with
        // no marker, so the output jumped from r0 to r5 unexplained.
        let mut view = UserView::new();
        for round in 0..6u64 {
            let sent = if round == 0 || round == 5 {
                UserOut {
                    to_server: Message::from_bytes(b"x".to_vec()),
                    to_world: Message::silence(),
                }
            } else {
                UserOut::silence()
            };
            view.push(ViewEvent { round, received: UserIn::default(), sent });
        }
        let t = Transcript {
            world_states: Vec::<()>::new(),
            view,
            rounds: 6,
            stop: StopReason::HorizonExhausted,
        };
        let text = render(&t, 10);
        assert!(text.contains("… 4 rounds elided …"), "{text}");
        assert!(text.contains("r    0"), "{text}");
        assert!(text.contains("r    5"), "{text}");
    }

    #[test]
    fn render_merges_window_gap_with_adjacent_silence() {
        use crate::exec::StopReason;
        use crate::msg::{Message, UserIn, UserOut};
        use crate::view::ViewEvent;

        // 20 rounds, traffic only at 0 and 19, window limit 3: the silent
        // rounds inside the head/tail windows merge with the out-of-window
        // gap into a single 18-round marker.
        let mut view = UserView::new();
        for round in 0..20u64 {
            let sent = if round == 0 || round == 19 {
                UserOut {
                    to_server: Message::from_bytes(b"x".to_vec()),
                    to_world: Message::silence(),
                }
            } else {
                UserOut::silence()
            };
            view.push(ViewEvent { round, received: UserIn::default(), sent });
        }
        let t = Transcript {
            world_states: Vec::<()>::new(),
            view,
            rounds: 20,
            stop: StopReason::HorizonExhausted,
        };
        let text = render(&t, 3);
        assert!(text.contains("… 18 rounds elided …"), "{text}");
    }

    #[test]
    fn render_marks_trailing_silence() {
        use crate::exec::StopReason;
        use crate::msg::{Message, UserIn, UserOut};
        use crate::view::ViewEvent;

        let mut view = UserView::new();
        for round in 0..5u64 {
            let sent = if round == 0 {
                UserOut {
                    to_server: Message::from_bytes(b"x".to_vec()),
                    to_world: Message::silence(),
                }
            } else {
                UserOut::silence()
            };
            view.push(ViewEvent { round, received: UserIn::default(), sent });
        }
        let t = Transcript {
            world_states: Vec::<()>::new(),
            view,
            rounds: 5,
            stop: StopReason::HorizonExhausted,
        };
        let text = render(&t, 10);
        assert!(text.trim_end().ends_with("… 4 rounds elided …"), "{text}");
    }

    #[test]
    fn render_elides_the_middle() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let mut rng = GocRng::seed_from_u64(2);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::persistent("hi")),
            rng,
        );
        let t = exec.run_for(100);
        let text = render(&t, 3);
        assert!(text.contains("rounds elided"), "{text}");
    }
}
