//! Transcript rendering and channel statistics — diagnostics for debugging
//! strategies, sensing functions and referees.

use crate::exec::{StopReason, Transcript};
use crate::view::UserView;
use std::fmt::Debug;
use std::fmt::Write as _;

/// Aggregate statistics of the user-visible channels of an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Rounds observed.
    pub rounds: u64,
    /// Non-silent messages the user sent to the server.
    pub sent_to_server: u64,
    /// Non-silent messages the user sent to the world.
    pub sent_to_world: u64,
    /// Non-silent messages received from the server.
    pub recv_from_server: u64,
    /// Non-silent messages received from the world.
    pub recv_from_world: u64,
    /// Total payload bytes sent by the user.
    pub bytes_sent: u64,
    /// Total payload bytes received by the user.
    pub bytes_received: u64,
}

impl ChannelStats {
    /// Computes statistics over a user view.
    pub fn of(view: &UserView) -> Self {
        let mut s = ChannelStats { rounds: view.len() as u64, ..Default::default() };
        for ev in view {
            if !ev.sent.to_server.is_silence() {
                s.sent_to_server += 1;
                s.bytes_sent += ev.sent.to_server.len() as u64;
            }
            if !ev.sent.to_world.is_silence() {
                s.sent_to_world += 1;
                s.bytes_sent += ev.sent.to_world.len() as u64;
            }
            if !ev.received.from_server.is_silence() {
                s.recv_from_server += 1;
                s.bytes_received += ev.received.from_server.len() as u64;
            }
            if !ev.received.from_world.is_silence() {
                s.recv_from_world += 1;
                s.bytes_received += ev.received.from_world.len() as u64;
            }
        }
        s
    }

    /// Fraction of rounds in which the user said nothing at all.
    pub fn user_silence_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 1.0;
        }
        // sent_to_* counts are per-channel; a round is silent if neither
        // channel carried a message — approximated from totals (exact when
        // the user never uses both channels in one round, which holds for
        // every strategy in this workspace).
        let speaking = (self.sent_to_server + self.sent_to_world).min(self.rounds);
        1.0 - speaking as f64 / self.rounds as f64
    }
}

/// Renders the first `limit` and last `limit` rounds of a transcript as a
/// human-readable table (non-silent channels only).
pub fn render<S: Clone + Debug>(transcript: &Transcript<S>, limit: usize) -> String {
    let mut out = String::new();
    let n = transcript.view.len();
    let _ = writeln!(out, "execution: {} rounds, stop = {}", transcript.rounds, stop_str(&transcript.stop));
    let events: Vec<usize> = if n <= 2 * limit {
        (0..n).collect()
    } else {
        (0..limit).chain(n - limit..n).collect()
    };
    let mut last: Option<usize> = None;
    for &i in &events {
        if let Some(prev) = last {
            if i > prev + 1 {
                let _ = writeln!(out, "  … {} rounds elided …", i - prev - 1);
            }
        }
        last = Some(i);
        let ev = &transcript.view.events()[i];
        let mut parts = Vec::new();
        if !ev.received.from_server.is_silence() {
            parts.push(format!("s→u {}", ev.received.from_server));
        }
        if !ev.received.from_world.is_silence() {
            parts.push(format!("w→u {}", ev.received.from_world));
        }
        if !ev.sent.to_server.is_silence() {
            parts.push(format!("u→s {}", ev.sent.to_server));
        }
        if !ev.sent.to_world.is_silence() {
            parts.push(format!("u→w {}", ev.sent.to_world));
        }
        if parts.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  r{:>5}: {}", ev.round, parts.join(" | "));
    }
    out
}

fn stop_str(stop: &StopReason) -> String {
    match stop {
        StopReason::UserHalted(h) => format!("halted({})", h.output),
        StopReason::HorizonExhausted => "horizon".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;
    use crate::goal::Goal;
    use crate::rng::GocRng;
    use crate::toy;

    fn sample_transcript() -> Transcript<toy::MagicState> {
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::new("hi")),
            rng,
        );
        exec.run(50)
    }

    #[test]
    fn stats_count_messages() {
        let t = sample_transcript();
        let stats = ChannelStats::of(&t.view);
        assert!(stats.sent_to_server >= 1);
        assert!(stats.recv_from_world >= 1, "the ACK");
        assert!(stats.bytes_sent >= 2);
        assert!(stats.rounds >= 4);
        assert!(stats.user_silence_rate() <= 1.0);
    }

    #[test]
    fn stats_of_empty_view() {
        let stats = ChannelStats::of(&UserView::new());
        assert_eq!(stats, ChannelStats::default());
        assert_eq!(stats.user_silence_rate(), 1.0);
    }

    #[test]
    fn render_shows_traffic_and_stop() {
        let t = sample_transcript();
        let text = render(&t, 10);
        assert!(text.contains("halted(heard)"), "{text}");
        assert!(text.contains("u→s hi"), "{text}");
        assert!(text.contains("w→u ACK"), "{text}");
    }

    #[test]
    fn render_elides_the_middle() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let mut rng = GocRng::seed_from_u64(2);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::persistent("hi")),
            rng,
        );
        let t = exec.run_for(100);
        let text = render(&t, 3);
        assert!(text.contains("rounds elided"), "{text}");
    }
}
