//! Sensing: the user's feedback about progress towards the goal.
//!
//! Sensing (paper §3) is a predicate of the history of the portion of the
//! system visible to the user — its [`view`](crate::view). A [`Sensing`]
//! value consumes the view event-by-event and emits a stream of Boolean
//! [`Indication`]s. Two properties make sensing *useful*:
//!
//! - **Safety** — negative (resp. non-positive) indications whenever the
//!   current pairing does **not** lead to achieving the goal. For finite
//!   goals: positive indications arise only on acceptable histories.
//! - **Viability** — with *some* server/strategy that does achieve the goal,
//!   the indications are eventually (all but finitely often) positive.
//!
//! Monte-Carlo validators for both properties live in
//! [`crate::validate`]. The universal constructions in [`crate::universal`]
//! consume sensing: Theorem 1 states that safe + viable sensing suffices for
//! a universal user strategy to exist.
//!
//! Safety is **unconditional with respect to the link**: it quantifies over
//! every view the user could ever see, including views manufactured by an
//! adversarial [`Channel`](crate::channel::Channel) on the user↔server
//! link. A safe sensing therefore stays safe under arbitrary drop /
//! duplicate / reorder / corrupt faults — faults may suppress positives
//! (slowing the user) but can never mint an unsound one. Viability, by
//! contrast, is a promise about *some* good pairing, and only survives
//! faults that leave the pairing helpful (e.g. any finite
//! [`FaultSchedule`](crate::channel::FaultSchedule)). The conformance sweep
//! in `goc-testkit` checks both claims mechanically.

use crate::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use crate::view::ViewEvent;
use std::fmt::Debug;

/// A Boolean indication produced by sensing after a round, or silence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Indication {
    /// Evidence of progress / an acceptable history.
    Positive,
    /// Evidence of failure — for compact goals this triggers a strategy
    /// switch in the universal user.
    Negative,
    /// No indication this round.
    #[default]
    Silent,
}

impl Indication {
    /// `true` for [`Indication::Positive`].
    pub fn is_positive(self) -> bool {
        matches!(self, Indication::Positive)
    }

    /// `true` for [`Indication::Negative`].
    pub fn is_negative(self) -> bool {
        matches!(self, Indication::Negative)
    }
}

impl SnapState for Indication {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u8(match self {
            Indication::Positive => 0,
            Indication::Negative => 1,
            Indication::Silent => 2,
        });
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8("indication tag")? {
            0 => Indication::Positive,
            1 => Indication::Negative,
            2 => Indication::Silent,
            found => return Err(SnapError::BadTag { context: "indication tag", found }),
        })
    }
}

/// A sensing function: consumes the user's view, produces indications.
///
/// Implementations must be **local to the user's view** — they may not peek
/// at world or server internals (that is what makes Theorem 1 non-trivial).
pub trait Sensing: Debug {
    /// Feeds the view event of a completed round; returns the indication for
    /// that round.
    fn observe(&mut self, event: &ViewEvent) -> Indication;

    /// Clears accumulated state. The universal users reset sensing whenever
    /// they switch to a fresh strategy so that stale evidence from the
    /// previous strategy is not held against the new one.
    fn reset(&mut self);

    /// A short human-readable name for diagnostics.
    fn name(&self) -> String {
        "sensing".to_string()
    }

    /// Serializes this sensing's accumulated state (see [`crate::snap`]).
    /// The default refuses, naming the sensing. See
    /// [`UserStrategy::save_snap`](crate::strategy::UserStrategy::save_snap).
    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::unsupported("sensing", self.name()))
    }

    /// Restores state written by [`save_snap`](Self::save_snap) into this
    /// sensing, which must have been built with the same configuration.
    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::unsupported("sensing", self.name()))
    }
}

/// Boxed sensing, as produced by [`SensingFactory`] closures.
pub type BoxedSensing = Box<dyn Sensing>;

impl Sensing for BoxedSensing {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        (**self).observe(event)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        (**self).save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        (**self).restore_snap(r)
    }
}

/// A factory producing fresh sensing instances; the universal users take one
/// of these so every enumerated strategy starts with pristine sensing.
pub type SensingFactory = Box<dyn Fn() -> BoxedSensing>;

/// Sensing built from a fold over view events.
///
/// # Examples
///
/// ```
/// use goc_core::sensing::{FnSensing, Indication, Sensing};
/// use goc_core::view::ViewEvent;
/// use goc_core::msg::{UserIn, UserOut};
///
/// // Positive whenever the server says anything at all.
/// let mut s = FnSensing::new("server-spoke", 0u32, |_count, ev: &ViewEvent| {
///     if ev.received.from_server.is_silence() {
///         Indication::Silent
///     } else {
///         Indication::Positive
///     }
/// });
/// let quiet = ViewEvent { round: 0, received: UserIn::default(), sent: UserOut::silence() };
/// assert_eq!(s.observe(&quiet), Indication::Silent);
/// ```
pub struct FnSensing<T, F> {
    label: String,
    init: T,
    state: T,
    f: F,
}

impl<T: Clone, F> FnSensing<T, F>
where
    F: FnMut(&mut T, &ViewEvent) -> Indication,
{
    /// Creates sensing from an initial state and a fold function.
    pub fn new(label: impl Into<String>, init: T, f: F) -> Self {
        let state = init.clone();
        FnSensing { label: label.into(), init, state, f }
    }
}

impl<T, F> Debug for FnSensing<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSensing").field("label", &self.label).finish()
    }
}

// The `SnapState` bound makes every `FnSensing` checkpointable: the closure
// is config (rebuilt by the restore skeleton), the fold state is the only
// mutable part.
impl<T: Clone + SnapState, F> Sensing for FnSensing<T, F>
where
    F: FnMut(&mut T, &ViewEvent) -> Indication,
{
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        (self.f)(&mut self.state, event)
    }

    fn reset(&mut self) {
        self.state = self.init.clone();
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        self.state.encode(w);
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = T::decode(r)?;
        Ok(())
    }
}

/// Sensing that is always positive — trivially viable, generally **unsafe**.
/// Used by ablation experiments (E5) and safety-validator tests.
#[derive(Clone, Debug, Default)]
pub struct AlwaysPositive;

impl Sensing for AlwaysPositive {
    fn observe(&mut self, _event: &ViewEvent) -> Indication {
        Indication::Positive
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        "always-positive".to_string()
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // stateless
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Sensing that is always negative — trivially safe for finite goals,
/// **non-viable**. Used by ablation experiments (E5).
#[derive(Clone, Debug, Default)]
pub struct AlwaysNegative;

impl Sensing for AlwaysNegative {
    fn observe(&mut self, _event: &ViewEvent) -> Indication {
        Indication::Negative
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        "always-negative".to_string()
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // stateless
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Wraps inner sensing with a *grace period*: for the first `grace` rounds
/// after (re)start, negative indications are muted to `Silent`.
///
/// This models patience (DESIGN.md ablation 2): freshly started strategies
/// need a few rounds before their failure is meaningful evidence.
#[derive(Debug)]
pub struct Grace<S> {
    inner: S,
    grace: u64,
    seen: u64,
}

impl<S: Sensing> Grace<S> {
    /// Mutes negatives for the first `grace` observed rounds.
    pub fn new(inner: S, grace: u64) -> Self {
        Grace { inner, grace, seen: 0 }
    }
}

impl<S: Sensing> Sensing for Grace<S> {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        let ind = self.inner.observe(event);
        self.seen += 1;
        if self.seen <= self.grace && ind.is_negative() {
            Indication::Silent
        } else {
            ind
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.seen = 0;
    }

    fn name(&self) -> String {
        format!("grace({}, {})", self.grace, self.inner.name())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.u64(self.seen);
        self.inner.save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.seen = r.u64("grace seen")?;
        self.inner.restore_snap(r)
    }
}

/// Produces a **negative** indication if the inner sensing stays
/// non-positive for `timeout` consecutive rounds.
///
/// Many natural sensing functions only ever produce *positive* evidence
/// ("the document was printed"). `Deadline` converts their prolonged silence
/// into the negative evidence that drives the compact universal user's
/// switching rule.
#[derive(Debug)]
pub struct Deadline<S> {
    inner: S,
    timeout: u64,
    quiet: u64,
}

impl<S: Sensing> Deadline<S> {
    /// Emits `Negative` after `timeout` consecutive rounds without a
    /// positive from `inner`.
    ///
    /// # Panics
    ///
    /// Panics if `timeout == 0`.
    pub fn new(inner: S, timeout: u64) -> Self {
        assert!(timeout > 0, "Deadline requires a positive timeout");
        Deadline { inner, timeout, quiet: 0 }
    }
}

impl<S: Sensing> Sensing for Deadline<S> {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        let ind = self.inner.observe(event);
        match ind {
            Indication::Positive => {
                self.quiet = 0;
                Indication::Positive
            }
            Indication::Negative => {
                self.quiet = 0;
                Indication::Negative
            }
            Indication::Silent => {
                self.quiet += 1;
                if self.quiet >= self.timeout {
                    self.quiet = 0;
                    Indication::Negative
                } else {
                    Indication::Silent
                }
            }
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.quiet = 0;
    }

    fn name(&self) -> String {
        format!("deadline({}, {})", self.timeout, self.inner.name())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.u64(self.quiet);
        self.inner.save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.quiet = r.u64("deadline quiet")?;
        self.inner.restore_snap(r)
    }
}

/// Debounces negatives: only every `patience`-th consecutive raw negative is
/// passed through; earlier ones are muted to `Silent`.
///
/// This is the "patience-δ switching" ablation (DESIGN.md §4.2): it trades
/// switching latency for robustness against occasional spurious negatives.
#[derive(Debug)]
pub struct Patience<S> {
    inner: S,
    patience: u64,
    streak: u64,
}

impl<S: Sensing> Patience<S> {
    /// Requires `patience` consecutive negatives before reporting one.
    ///
    /// # Panics
    ///
    /// Panics if `patience == 0`.
    pub fn new(inner: S, patience: u64) -> Self {
        assert!(patience > 0, "Patience requires a positive threshold");
        Patience { inner, patience, streak: 0 }
    }
}

impl<S: Sensing> Sensing for Patience<S> {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        let ind = self.inner.observe(event);
        match ind {
            Indication::Negative => {
                self.streak += 1;
                if self.streak >= self.patience {
                    self.streak = 0;
                    Indication::Negative
                } else {
                    Indication::Silent
                }
            }
            other => {
                self.streak = 0;
                other
            }
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.streak = 0;
    }

    fn name(&self) -> String {
        format!("patience({}, {})", self.patience, self.inner.name())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.u64(self.streak);
        self.inner.save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.streak = r.u64("patience streak")?;
        self.inner.restore_snap(r)
    }
}

/// Combines two sensing functions: positive if **either** is positive,
/// negative if **either** is negative (positives win ties; a goal already
/// confirmed should not be abandoned on a co-occurring negative).
#[derive(Debug)]
pub struct Either<A, B> {
    a: A,
    b: B,
}

impl<A: Sensing, B: Sensing> Either<A, B> {
    /// Combines `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        Either { a, b }
    }
}

impl<A: Sensing, B: Sensing> Sensing for Either<A, B> {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        let ia = self.a.observe(event);
        let ib = self.b.observe(event);
        if ia.is_positive() || ib.is_positive() {
            Indication::Positive
        } else if ia.is_negative() || ib.is_negative() {
            Indication::Negative
        } else {
            Indication::Silent
        }
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
    }

    fn name(&self) -> String {
        format!("either({}, {})", self.a.name(), self.b.name())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        self.a.save_snap(w)?;
        self.b.save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.a.restore_snap(r)?;
        self.b.restore_snap(r)
    }
}

/// Running counts of the indications an inner sensing produced — a
/// diagnostics pass-through used by the validators and the report harness.
#[derive(Debug)]
pub struct Counted<S> {
    inner: S,
    positives: u64,
    negatives: u64,
    silents: u64,
}

impl<S: Sensing> Counted<S> {
    /// Wraps `inner`, counting its indications.
    pub fn new(inner: S) -> Self {
        Counted { inner, positives: 0, negatives: 0, silents: 0 }
    }

    /// `(positives, negatives, silents)` since the last reset.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.positives, self.negatives, self.silents)
    }
}

impl<S: Sensing> Sensing for Counted<S> {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        let ind = self.inner.observe(event);
        match ind {
            Indication::Positive => self.positives += 1,
            Indication::Negative => self.negatives += 1,
            Indication::Silent => self.silents += 1,
        }
        ind
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.positives = 0;
        self.negatives = 0;
        self.silents = 0;
    }

    fn name(&self) -> String {
        format!("counted({})", self.inner.name())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.u64(self.positives);
        w.u64(self.negatives);
        w.u64(self.silents);
        self.inner.save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.positives = r.u64("counted positives")?;
        self.negatives = r.u64("counted negatives")?;
        self.silents = r.u64("counted silents")?;
        self.inner.restore_snap(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Message, UserIn, UserOut};

    fn quiet_event(round: u64) -> ViewEvent {
        ViewEvent { round, received: UserIn::default(), sent: UserOut::silence() }
    }

    fn server_says(round: u64, text: &str) -> ViewEvent {
        ViewEvent {
            round,
            received: UserIn { from_server: Message::from(text), from_world: Message::silence() },
            sent: UserOut::silence(),
        }
    }

    fn spoke_sensing() -> impl Sensing {
        FnSensing::new("spoke", (), |_state, ev: &ViewEvent| {
            if ev.received.from_server.is_silence() {
                Indication::Silent
            } else {
                Indication::Positive
            }
        })
    }

    #[test]
    fn indication_predicates() {
        assert!(Indication::Positive.is_positive());
        assert!(!Indication::Positive.is_negative());
        assert!(Indication::Negative.is_negative());
        assert!(!Indication::Silent.is_positive());
        assert_eq!(Indication::default(), Indication::Silent);
    }

    #[test]
    fn fn_sensing_folds_and_resets() {
        let mut s = FnSensing::new("count-3", 0u32, |count, _ev: &ViewEvent| {
            *count += 1;
            if *count >= 3 {
                Indication::Negative
            } else {
                Indication::Silent
            }
        });
        assert_eq!(s.observe(&quiet_event(0)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(1)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(2)), Indication::Negative);
        s.reset();
        assert_eq!(s.observe(&quiet_event(3)), Indication::Silent);
    }

    #[test]
    fn always_positive_and_negative() {
        assert!(AlwaysPositive.observe(&quiet_event(0)).is_positive());
        assert!(AlwaysNegative.observe(&quiet_event(0)).is_negative());
    }

    #[test]
    fn deadline_fires_after_timeout_and_rearms() {
        let mut s = Deadline::new(spoke_sensing(), 3);
        assert_eq!(s.observe(&quiet_event(0)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(1)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(2)), Indication::Negative);
        // Re-armed after firing.
        assert_eq!(s.observe(&quiet_event(3)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(4)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(5)), Indication::Negative);
    }

    #[test]
    fn deadline_reset_by_positive() {
        let mut s = Deadline::new(spoke_sensing(), 2);
        assert_eq!(s.observe(&quiet_event(0)), Indication::Silent);
        assert_eq!(s.observe(&server_says(1, "ok")), Indication::Positive);
        assert_eq!(s.observe(&quiet_event(2)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(3)), Indication::Negative);
    }

    #[test]
    #[should_panic(expected = "positive timeout")]
    fn deadline_zero_panics() {
        let _ = Deadline::new(AlwaysPositive, 0);
    }

    #[test]
    fn grace_mutes_early_negatives() {
        let mut s = Grace::new(AlwaysNegative, 2);
        assert_eq!(s.observe(&quiet_event(0)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(1)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(2)), Indication::Negative);
        s.reset();
        assert_eq!(s.observe(&quiet_event(3)), Indication::Silent);
    }

    #[test]
    fn patience_debounces_negatives() {
        let mut s = Patience::new(AlwaysNegative, 3);
        assert_eq!(s.observe(&quiet_event(0)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(1)), Indication::Silent);
        assert_eq!(s.observe(&quiet_event(2)), Indication::Negative);
        assert_eq!(s.observe(&quiet_event(3)), Indication::Silent);
    }

    #[test]
    fn patience_streak_broken_by_non_negative() {
        let mut inner = FnSensing::new("alt", 0u32, |n, _ev: &ViewEvent| {
            *n += 1;
            if *n % 2 == 0 {
                Indication::Silent
            } else {
                Indication::Negative
            }
        });
        inner.reset();
        let mut s = Patience::new(inner, 2);
        // Alternating negative/silent never reaches a streak of 2.
        for r in 0..10 {
            assert_ne!(s.observe(&quiet_event(r)), Indication::Negative);
        }
    }

    #[test]
    fn names_compose() {
        let s = Patience::new(Deadline::new(AlwaysPositive, 5), 2);
        assert_eq!(s.name(), "patience(2, deadline(5, always-positive))");
    }

    #[test]
    fn either_prefers_positive_over_negative() {
        let mut s = Either::new(AlwaysPositive, AlwaysNegative);
        assert_eq!(s.observe(&quiet_event(0)), Indication::Positive);
        let mut s2 = Either::new(AlwaysNegative, spoke_sensing());
        assert_eq!(s2.observe(&quiet_event(0)), Indication::Negative);
        // Positive wins the tie even when the other arm is negative.
        assert_eq!(s2.observe(&server_says(1, "x")), Indication::Positive);
        let mut s3 = Either::new(spoke_sensing(), spoke_sensing());
        assert_eq!(s3.observe(&quiet_event(0)), Indication::Silent);
        assert_eq!(s3.observe(&server_says(1, "x")), Indication::Positive);
        s3.reset();
        assert!(s3.name().starts_with("either("));
    }

    #[test]
    fn counted_tracks_and_resets() {
        let mut s = Counted::new(spoke_sensing());
        let _ = s.observe(&quiet_event(0));
        let _ = s.observe(&server_says(1, "x"));
        let _ = s.observe(&server_says(2, "y"));
        assert_eq!(s.counts(), (2, 0, 1));
        s.reset();
        assert_eq!(s.counts(), (0, 0, 0));
        assert_eq!(s.name(), "counted(spoke)");
    }

    #[test]
    fn boxed_sensing_delegates() {
        let mut b: BoxedSensing = Box::new(AlwaysPositive);
        assert!(b.observe(&quiet_event(0)).is_positive());
        assert_eq!(b.name(), "always-positive");
        b.reset();
    }
}
