//! A miniature, fully-worked goal used in tests, doctests and benchmarks.
//!
//! **The magic-word goal.** The world is satisfied when it hears a magic
//! word *from the server*; the user cannot tell the world anything directly
//! that counts. Servers are relays that apply an unknown Caesar shift to
//! everything the user says — the toy stand-in for "the server speaks a
//! different language". When the world hears the word it acknowledges to the
//! user with `ACK`, which yields natural safe-and-viable sensing.
//!
//! The module provides both a [finite](MagicWordGoal) variant (halt once the
//! word has been heard) and a [compact](CompactMagicWordGoal) variant (the
//! word must keep being heard), plus the matching enumeration
//! ([`caesar_class`]) and sensing ([`ack_sensing`]).

use crate::enumeration::SliceEnumerator;
use crate::goal::{CompactGoal, FiniteGoal, Goal, GoalKind};
use crate::msg::{Message, ServerIn, ServerOut, UserIn, UserOut, WorldIn, WorldOut};
use crate::rng::GocRng;
use crate::sensing::{FnSensing, Indication, Sensing};
use crate::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use crate::strategy::{Halt, ServerStrategy, StepCtx, UserStrategy, WorldStrategy};
use crate::view::ViewEvent;

/// The world's acknowledgement message.
pub const ACK: &str = "ACK";

/// Referee-visible state of the magic-word world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MagicState {
    /// How many times the word has been heard from the server.
    pub heard_count: u64,
    /// The round at which the word was last heard, if ever.
    pub last_heard_round: Option<u64>,
    /// Rounds elapsed.
    pub round: u64,
}

/// The world of the magic-word goal.
#[derive(Clone, Debug)]
pub struct MagicWorld {
    word: Vec<u8>,
    state: MagicState,
}

impl MagicWorld {
    /// A world waiting to hear `word` from the server.
    pub fn new(word: impl AsRef<[u8]>) -> Self {
        MagicWorld {
            word: word.as_ref().to_vec(),
            state: MagicState { heard_count: 0, last_heard_round: None, round: 0 },
        }
    }
}

impl SnapState for MagicState {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u64(self.heard_count);
        self.last_heard_round.encode(w);
        w.u64(self.round);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MagicState {
            heard_count: r.u64("magic heard_count")?,
            last_heard_round: Option::<u64>::decode(r)?,
            round: r.u64("magic round")?,
        })
    }
}

impl WorldStrategy for MagicWorld {
    type State = MagicState;

    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
        let mut out = WorldOut::silence();
        if input.from_server.as_bytes() == self.word.as_slice() {
            self.state.heard_count += 1;
            self.state.last_heard_round = Some(ctx.round);
            out = WorldOut::to_user(ACK);
        }
        self.state.round = ctx.round + 1;
        out
    }

    fn state(&self) -> MagicState {
        self.state.clone()
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        self.state.encode(w);
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = MagicState::decode(r)?;
        Ok(())
    }

    fn snap_state(state: &MagicState, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        state.encode(w);
        Ok(())
    }

    fn restore_state(r: &mut SnapReader<'_>) -> Result<MagicState, SnapError> {
        MagicState::decode(r)
    }
}

/// Finite goal: the world must hear the magic word at least once before the
/// user halts.
#[derive(Clone, Debug)]
pub struct MagicWordGoal {
    word: Vec<u8>,
}

impl MagicWordGoal {
    /// A finite magic-word goal for `word`.
    pub fn new(word: impl AsRef<[u8]>) -> Self {
        MagicWordGoal { word: word.as_ref().to_vec() }
    }

    /// The magic word.
    pub fn word(&self) -> &[u8] {
        &self.word
    }
}

impl Goal for MagicWordGoal {
    type World = MagicWorld;

    fn spawn_world(&self, _rng: &mut GocRng) -> MagicWorld {
        MagicWorld::new(&self.word)
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Finite
    }

    fn name(&self) -> String {
        "toy/magic-word".to_string()
    }
}

impl FiniteGoal for MagicWordGoal {
    fn accepts(&self, history: &[MagicState], _halt: &Halt) -> bool {
        history.last().map(|s| s.heard_count > 0).unwrap_or(false)
    }
}

/// Compact goal: the world must keep hearing the magic word — a prefix is
/// acceptable iff the word was heard within its last `window` rounds (with a
/// start-up grace of one window).
#[derive(Clone, Debug)]
pub struct CompactMagicWordGoal {
    word: Vec<u8>,
    window: u64,
}

impl CompactMagicWordGoal {
    /// A compact magic-word goal: the word must recur every `window` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(word: impl AsRef<[u8]>, window: u64) -> Self {
        assert!(window > 0, "CompactMagicWordGoal requires a positive window");
        CompactMagicWordGoal { word: word.as_ref().to_vec(), window }
    }

    /// The recurrence window.
    pub fn window(&self) -> u64 {
        self.window
    }
}

impl Goal for CompactMagicWordGoal {
    type World = MagicWorld;

    fn spawn_world(&self, _rng: &mut GocRng) -> MagicWorld {
        MagicWorld::new(&self.word)
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Compact
    }

    fn name(&self) -> String {
        "toy/magic-word-compact".to_string()
    }
}

impl CompactGoal for CompactMagicWordGoal {
    fn prefix_acceptable(&self, prefix: &[MagicState]) -> bool {
        let Some(last) = prefix.last() else { return true };
        if last.round < self.window {
            return true; // start-up grace
        }
        match last.last_heard_round {
            Some(heard) => last.round - heard <= self.window,
            None => false,
        }
    }
}

/// A relay server applying a Caesar shift to the user's bytes before passing
/// them to the world. Shift 0 is the "same language" server.
#[derive(Clone, Debug, Default)]
pub struct RelayServer {
    shift: u8,
}

impl RelayServer {
    /// A relay with byte shift `shift` (mod 256).
    pub fn with_shift(shift: u8) -> Self {
        RelayServer { shift }
    }
}

impl ServerStrategy for RelayServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        if input.from_user.is_silence() {
            return ServerOut::silence();
        }
        let shifted: Vec<u8> =
            input.from_user.as_bytes().iter().map(|b| b.wrapping_add(self.shift)).collect();
        ServerOut::to_world(shifted)
    }

    fn fork(&self) -> Option<crate::strategy::BoxedServer> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!("caesar-relay(+{})", self.shift)
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // the shift is config, recorded in the name tag
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// A user that sends a fixed phrase to the server every round and halts on
/// `ACK` from the world (finite variant).
#[derive(Clone, Debug)]
pub struct SayThrough {
    phrase: Vec<u8>,
    halt: Option<Halt>,
    persistent: bool,
}

impl SayThrough {
    /// A user repeating `phrase` that halts upon the world's `ACK`.
    pub fn new(phrase: impl AsRef<[u8]>) -> Self {
        SayThrough { phrase: phrase.as_ref().to_vec(), halt: None, persistent: false }
    }

    /// A user repeating `phrase` forever (for compact goals).
    pub fn persistent(phrase: impl AsRef<[u8]>) -> Self {
        SayThrough { phrase: phrase.as_ref().to_vec(), halt: None, persistent: true }
    }

    /// A user repeating `word` pre-shifted so a [`RelayServer`] with shift
    /// `shift` delivers the intact word to the world.
    pub fn compensating(word: impl AsRef<[u8]>, shift: u8) -> Self {
        let phrase: Vec<u8> = word.as_ref().iter().map(|b| b.wrapping_sub(shift)).collect();
        SayThrough::new(phrase)
    }

    /// Persistent variant of [`compensating`](Self::compensating).
    pub fn compensating_persistent(word: impl AsRef<[u8]>, shift: u8) -> Self {
        let phrase: Vec<u8> = word.as_ref().iter().map(|b| b.wrapping_sub(shift)).collect();
        SayThrough::persistent(phrase)
    }
}

impl UserStrategy for SayThrough {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if !self.persistent && input.from_world.as_bytes() == ACK.as_bytes() {
            self.halt = Some(Halt::with_output("heard"));
            return UserOut::silence();
        }
        UserOut::to_server(self.phrase.clone())
    }

    fn halted(&self) -> Option<Halt> {
        self.halt.clone()
    }

    fn fork(&self) -> Option<crate::strategy::BoxedUser> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!(
            "say-through({}{})",
            Message::from_bytes(self.phrase.clone()),
            if self.persistent { ", persistent" } else { "" }
        )
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        self.halt.encode(w);
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.halt = Option::<Halt>::decode(r)?;
        Ok(())
    }
}

/// The enumerable class of Caesar-compensating users for `word`, one per
/// shift in `0..shifts`.
///
/// With `persistent = false` the users halt on `ACK` (finite goal); with
/// `persistent = true` they repeat forever (compact goal).
pub fn caesar_class(word: impl AsRef<[u8]>, shifts: u8, persistent: bool) -> SliceEnumerator {
    let word = word.as_ref().to_vec();
    let mut class = SliceEnumerator::new(format!("caesar-users(x{shifts})"));
    for shift in 0..shifts {
        let w = word.clone();
        class.push(move || {
            if persistent {
                Box::new(SayThrough::compensating_persistent(&w, shift))
            } else {
                Box::new(SayThrough::compensating(&w, shift))
            }
        });
    }
    class
}

/// Referee-visible state of the fragile world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragileState {
    /// Has the word been heard (before any poisoning)?
    pub heard: bool,
    /// Has a wrong utterance permanently poisoned the world?
    pub poisoned: bool,
    /// Rounds elapsed.
    pub round: u64,
}

/// An **unforgiving** variant of the magic-word world: the *first* non-silent
/// utterance from the server decides everything. The right word succeeds
/// forever; anything else poisons the world permanently.
///
/// The corresponding goal violates the paper's *forgiving* hypothesis
/// (§2: "every finite partial history can be extended to a successful
/// history"), and Theorem 1's enumeration visibly breaks on it: a universal
/// user's early wrong candidates poison the world before the viable
/// candidate gets its turn. See `FragileWordGoal` and experiment E10.
#[derive(Clone, Debug)]
pub struct FragileWorld {
    word: Vec<u8>,
    state: FragileState,
}

impl FragileWorld {
    /// A fragile world waiting (once) to hear `word`.
    pub fn new(word: impl AsRef<[u8]>) -> Self {
        FragileWorld {
            word: word.as_ref().to_vec(),
            state: FragileState { heard: false, poisoned: false, round: 0 },
        }
    }
}

impl SnapState for FragileState {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.bool(self.heard);
        w.bool(self.poisoned);
        w.u64(self.round);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FragileState {
            heard: r.bool("fragile heard")?,
            poisoned: r.bool("fragile poisoned")?,
            round: r.u64("fragile round")?,
        })
    }
}

impl WorldStrategy for FragileWorld {
    type State = FragileState;

    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
        let mut out = WorldOut::silence();
        if !self.state.poisoned && !self.state.heard && !input.from_server.is_silence() {
            if input.from_server.as_bytes() == self.word.as_slice() {
                self.state.heard = true;
                out = WorldOut::to_user(ACK);
            } else {
                self.state.poisoned = true;
            }
        }
        self.state.round = ctx.round + 1;
        out
    }

    fn state(&self) -> FragileState {
        self.state.clone()
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        self.state.encode(w);
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = FragileState::decode(r)?;
        Ok(())
    }

    fn snap_state(state: &FragileState, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        state.encode(w);
        Ok(())
    }

    fn restore_state(r: &mut SnapReader<'_>) -> Result<FragileState, SnapError> {
        FragileState::decode(r)
    }
}

/// The **unforgiving** finite magic-word goal over [`FragileWorld`].
///
/// Included deliberately as a *negative* example: it fails the paper's
/// forgivingness hypothesis, and the universal constructions are not (and
/// cannot be) universal for it.
#[derive(Clone, Debug)]
pub struct FragileWordGoal {
    word: Vec<u8>,
}

impl FragileWordGoal {
    /// A fragile goal for `word`.
    pub fn new(word: impl AsRef<[u8]>) -> Self {
        FragileWordGoal { word: word.as_ref().to_vec() }
    }

    /// The magic word.
    pub fn word(&self) -> &[u8] {
        &self.word
    }
}

impl Goal for FragileWordGoal {
    type World = FragileWorld;

    fn spawn_world(&self, _rng: &mut GocRng) -> FragileWorld {
        FragileWorld::new(&self.word)
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Finite
    }

    fn name(&self) -> String {
        "toy/fragile-word".to_string()
    }
}

impl FiniteGoal for FragileWordGoal {
    fn accepts(&self, history: &[FragileState], _halt: &Halt) -> bool {
        history.last().map(|s| s.heard && !s.poisoned).unwrap_or(false)
    }
}

/// Sensing that is positive exactly when the world says `ACK`.
///
/// This is safe for the magic-word goals (the world only acks when it heard
/// the word) and viable (a correctly compensating user earns acks).
pub fn ack_sensing() -> impl Sensing {
    FnSensing::new("ack", (), |_state, ev: &ViewEvent| {
        if ev.received.from_world.as_bytes() == ACK.as_bytes() {
            Indication::Positive
        } else {
            Indication::Silent
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;
    use crate::goal::{evaluate_compact, evaluate_finite};
    use crate::strategy::SilentServer;

    fn run_finite(shift: u8, user: SayThrough, horizon: u64) -> (MagicWordGoal, crate::exec::Transcript<MagicState>) {
        let goal = MagicWordGoal::new("xyzzy");
        let mut rng = GocRng::seed_from_u64(7);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(RelayServer::with_shift(shift)),
            Box::new(user),
            rng,
        );
        let t = exec.run(horizon);
        (goal, t)
    }

    #[test]
    fn informed_user_achieves_finite_goal() {
        let (goal, t) = run_finite(0, SayThrough::new("xyzzy"), 50);
        let v = evaluate_finite(&goal, &t);
        assert!(v.halted);
        assert!(v.achieved);
        assert!(v.rounds <= 6, "should succeed fast, took {}", v.rounds);
    }

    #[test]
    fn compensating_user_beats_shifted_server() {
        let (goal, t) = run_finite(13, SayThrough::compensating("xyzzy", 13), 50);
        assert!(evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn wrong_shift_fails() {
        let (goal, t) = run_finite(13, SayThrough::compensating("xyzzy", 5), 50);
        let v = evaluate_finite(&goal, &t);
        assert!(!v.halted);
        assert!(!v.achieved);
    }

    #[test]
    fn silent_server_is_unhelpful() {
        let goal = MagicWordGoal::new("xyzzy");
        let mut rng = GocRng::seed_from_u64(7);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(SilentServer),
            Box::new(SayThrough::new("xyzzy")),
            rng,
        );
        let t = exec.run(100);
        assert!(!evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn compact_goal_requires_persistence() {
        let goal = CompactMagicWordGoal::new("hi", 10);
        let mut rng = GocRng::seed_from_u64(3);
        // Persistent user keeps the goal satisfied.
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(RelayServer::default()),
            Box::new(SayThrough::persistent("hi")),
            rng.fork(0),
        );
        let t = exec.run(200);
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(50), "verdict: {v:?}");

        // One-shot user halts (stops talking) and the compact goal decays.
        let mut exec2 = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(RelayServer::default()),
            Box::new(SayThrough::new("hi")),
            rng.fork(1),
        );
        let t2 = exec2.run_for(200);
        let v2 = evaluate_compact(&goal, &t2);
        assert!(!v2.achieved(50), "halting user cannot sustain a compact goal: {v2:?}");
    }

    #[test]
    fn ack_sensing_is_positive_on_ack_only() {
        let mut s = ack_sensing();
        let quiet = ViewEvent {
            round: 0,
            received: UserIn::default(),
            sent: UserOut::silence(),
        };
        assert_eq!(s.observe(&quiet), Indication::Silent);
        let acked = ViewEvent {
            round: 1,
            received: UserIn { from_server: Message::silence(), from_world: Message::from(ACK) },
            sent: UserOut::silence(),
        };
        assert_eq!(s.observe(&acked), Indication::Positive);
    }

    #[test]
    fn caesar_class_contains_the_right_user() {
        let class = caesar_class("xyzzy", 26, false);
        use crate::enumeration::StrategyEnumerator;
        assert_eq!(class.len(), Some(26));
        // Index 13 compensates for shift 13.
        let user = class.strategy(13).unwrap();
        let goal = MagicWordGoal::new("xyzzy");
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(RelayServer::with_shift(13)),
            user,
            rng,
        );
        let t = exec.run(50);
        assert!(evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn world_state_tracks_rounds_and_hearing() {
        let goal = MagicWordGoal::new("ab");
        let mut rng = GocRng::seed_from_u64(2);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(RelayServer::default()),
            Box::new(SayThrough::persistent("ab")),
            rng,
        );
        let t = exec.run(10);
        let last = t.world_states.last().unwrap();
        assert!(last.heard_count >= 1);
        assert!(last.last_heard_round.is_some());
        assert_eq!(last.round, 10);
    }
}
