//! Strategies: the behaviours of the three parties.
//!
//! A *strategy* (paper §2) maps an internal state and an incoming message
//! profile to a new internal state and an outgoing message profile, possibly
//! probabilistically. In this library a strategy is an object owning its
//! internal state; one synchronous round corresponds to one call to `step`.
//!
//! - [`UserStrategy`] and [`ServerStrategy`] are object safe: user strategies
//!   must be enumerable and swappable (the universal constructions juggle
//!   boxed users), and server strategies form the adversarially-chosen
//!   classes the theory quantifies over.
//! - [`WorldStrategy`] carries an associated [`State`](WorldStrategy::State)
//!   snapshot type: referees are predicates on sequences of world states, so
//!   the world must expose its state after every round.

use crate::msg::{Message, ServerIn, ServerOut, UserIn, UserOut, WorldIn, WorldOut};
use crate::rng::GocRng;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::fmt::Debug;

/// Per-round context handed to every strategy: the round number and a
/// deterministic random stream private to the party.
#[derive(Debug)]
pub struct StepCtx<'a> {
    /// Index of the current round, starting at 0.
    pub round: u64,
    /// The party's private randomness.
    pub rng: &'a mut GocRng,
}

impl<'a> StepCtx<'a> {
    /// Creates a step context.
    pub fn new(round: u64, rng: &'a mut GocRng) -> Self {
        StepCtx { round, rng }
    }
}

/// The user's verdict when it halts in a *finite* goal execution.
///
/// Compact-goal users never halt; finite-goal users must eventually halt and
/// may produce an output, which finite referees may inspect.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Halt {
    /// The user's final output (e.g. the delegated computation's result).
    pub output: Message,
}

impl Halt {
    /// Halt with an output message.
    pub fn with_output(output: impl Into<Message>) -> Self {
        Halt { output: output.into() }
    }

    /// Halt without an output.
    pub fn empty() -> Self {
        Halt { output: Message::silence() }
    }
}

/// A user strategy: the algorithm acting on our behalf.
///
/// # Examples
///
/// ```
/// use goc_core::strategy::{StepCtx, UserStrategy, Halt};
/// use goc_core::msg::{UserIn, UserOut};
///
/// /// Forwards everything the world says to the server, verbatim.
/// #[derive(Debug, Default)]
/// struct Parrot;
///
/// impl UserStrategy for Parrot {
///     fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
///         UserOut::to_server(input.from_world.clone())
///     }
/// }
/// ```
pub trait UserStrategy: Debug {
    /// Executes one synchronous round: consumes the incoming profile, returns
    /// the outgoing profile.
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut;

    /// For finite goals: returns `Some` once the strategy has halted. The
    /// execution engine stops the run and hands the verdict to the referee.
    ///
    /// Compact-goal strategies keep the default (`None` forever).
    fn halted(&self) -> Option<Halt> {
        None
    }

    /// A deterministic checkpoint: an independent copy of this strategy in
    /// its *current* state, or `None` if the strategy cannot be checkpointed
    /// (e.g. it closes over external state). Stepping the fork with the same
    /// context and inputs must produce exactly the outputs the original
    /// would — this is what makes suspend/resume of candidates in the
    /// universal users observationally equivalent to replay.
    fn fork(&self) -> Option<BoxedUser> {
        None
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> String {
        "user".to_string()
    }

    /// Serializes this strategy's mutable state (see [`crate::snap`]). The
    /// default refuses, naming the strategy — `Execution::save` surfaces the
    /// refusal so callers know *which* party blocked the checkpoint.
    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::unsupported("user", self.name()))
    }

    /// Restores state written by [`save_snap`](Self::save_snap) into this
    /// strategy, which must have been built with the same configuration.
    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::unsupported("user", self.name()))
    }
}

/// A server strategy: the party whose assistance the user seeks.
///
/// Incompatibility is modelled by *classes* of server strategies: a user is
/// paired with an adversarially selected member of the class.
pub trait ServerStrategy: Debug {
    /// Executes one synchronous round.
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut;

    /// A deterministic checkpoint of this server in its current state, or
    /// `None` if the server cannot be checkpointed. See
    /// [`UserStrategy::fork`].
    fn fork(&self) -> Option<BoxedServer> {
        None
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> String {
        "server".to_string()
    }

    /// Serializes this server's mutable state (see [`crate::snap`]). The
    /// default refuses, naming the server. See [`UserStrategy::save_snap`].
    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::unsupported("server", self.name()))
    }

    /// Restores state written by [`save_snap`](Self::save_snap) into this
    /// server, which must have been built with the same configuration.
    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::unsupported("server", self.name()))
    }
}

/// A world strategy: "the rest of the system", whose state sequence the
/// referee judges.
pub trait WorldStrategy: Debug {
    /// The referee-visible snapshot of the world's internal state.
    type State: Clone + Debug;

    /// Executes one synchronous round.
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut;

    /// A snapshot of the current state, recorded after every round (and once
    /// before round 0, the initial state).
    fn state(&self) -> Self::State;

    /// Serializes this world's mutable state (see [`crate::snap`]). The
    /// default refuses, naming the type. See [`UserStrategy::save_snap`].
    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::unsupported("world", std::any::type_name::<Self>()))
    }

    /// Restores state written by [`save_snap`](Self::save_snap) into this
    /// world, which must have been built with the same configuration.
    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::unsupported("world", std::any::type_name::<Self>()))
    }

    /// Serializes one referee-visible [`State`](Self::State) value —
    /// `Execution` snapshots record the whole state history the referee
    /// judges. The default refuses, naming the type.
    fn snap_state(state: &Self::State, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        let _ = (state, w);
        Err(SnapError::unsupported("world", std::any::type_name::<Self>()))
    }

    /// Decodes one [`State`](Self::State) value written by
    /// [`snap_state`](Self::snap_state).
    fn restore_state(r: &mut SnapReader<'_>) -> Result<Self::State, SnapError> {
        let _ = r;
        Err(SnapError::unsupported("world", std::any::type_name::<Self>()))
    }
}

/// A boxed user strategy, as produced by enumerations.
pub type BoxedUser = Box<dyn UserStrategy>;

/// A boxed server strategy, as produced by server classes.
pub type BoxedServer = Box<dyn ServerStrategy>;

impl UserStrategy for BoxedUser {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        (**self).step(ctx, input)
    }

    fn halted(&self) -> Option<Halt> {
        (**self).halted()
    }

    fn fork(&self) -> Option<BoxedUser> {
        (**self).fork()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        (**self).save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        (**self).restore_snap(r)
    }
}

impl ServerStrategy for BoxedServer {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        (**self).step(ctx, input)
    }

    fn fork(&self) -> Option<BoxedServer> {
        (**self).fork()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        (**self).save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        (**self).restore_snap(r)
    }
}

/// A user strategy that stays silent forever and never halts.
///
/// Useful as a baseline and in forgivingness checks.
#[derive(Clone, Debug, Default)]
pub struct SilentUser;

impl UserStrategy for SilentUser {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, _input: &UserIn) -> UserOut {
        UserOut::silence()
    }

    fn fork(&self) -> Option<BoxedUser> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        "silent-user".to_string()
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // stateless
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// A server strategy that stays silent forever — the canonical *unhelpful*
/// server.
#[derive(Clone, Debug, Default)]
pub struct SilentServer;

impl ServerStrategy for SilentServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, _input: &ServerIn) -> ServerOut {
        ServerOut::silence()
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        "silent-server".to_string()
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // stateless
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// A server that echoes the user's previous message back to the user.
#[derive(Clone, Debug, Default)]
pub struct EchoServer;

impl ServerStrategy for EchoServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        ServerOut::to_user(input.from_user.clone())
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        "echo-server".to_string()
    }

    fn save_snap(&self, _w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        Ok(()) // stateless
    }

    fn restore_snap(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// A user built from a closure over `(round, input)`, for tests and small
/// experiments.
pub struct FnUser<F> {
    f: F,
    halt: Option<Halt>,
    label: String,
}

impl<F> Debug for FnUser<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnUser").field("label", &self.label).finish()
    }
}

impl<F> FnUser<F>
where
    F: FnMut(&mut StepCtx<'_>, &UserIn) -> UserAction,
{
    /// Wraps a closure as a user strategy.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnUser { f, halt: None, label: label.into() }
    }
}

/// The action a [`FnUser`] closure takes in a round.
#[derive(Clone, Debug)]
pub enum UserAction {
    /// Emit an outgoing profile and continue.
    Send(UserOut),
    /// Emit an outgoing profile and halt with the given verdict (finite
    /// goals).
    HaltWith(UserOut, Halt),
}

impl<F> UserStrategy for FnUser<F>
where
    F: FnMut(&mut StepCtx<'_>, &UserIn) -> UserAction,
{
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        match (self.f)(ctx, input) {
            UserAction::Send(out) => out,
            UserAction::HaltWith(out, halt) => {
                self.halt = Some(halt);
                out
            }
        }
    }

    fn halted(&self) -> Option<Halt> {
        self.halt.clone()
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// A server built from a closure over `(ctx, input)`.
pub struct FnServer<F> {
    f: F,
    label: String,
}

impl<F> Debug for FnServer<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnServer").field("label", &self.label).finish()
    }
}

impl<F> FnServer<F>
where
    F: FnMut(&mut StepCtx<'_>, &ServerIn) -> ServerOut,
{
    /// Wraps a closure as a server strategy.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnServer { f, label: label.into() }
    }
}

impl<F> ServerStrategy for FnServer<F>
where
    F: FnMut(&mut StepCtx<'_>, &ServerIn) -> ServerOut,
{
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        (self.f)(ctx, input)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(rng: &mut GocRng) -> StepCtx<'_> {
        StepCtx::new(0, rng)
    }

    #[test]
    fn silent_user_is_silent_and_never_halts() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut u = SilentUser;
        let out = u.step(&mut ctx_with(&mut rng), &UserIn::default());
        assert_eq!(out, UserOut::silence());
        assert!(u.halted().is_none());
        assert_eq!(u.name(), "silent-user");
    }

    #[test]
    fn echo_server_echoes() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut s = EchoServer;
        let input =
            ServerIn { from_user: Message::from("ping"), from_world: Message::silence() };
        let out = s.step(&mut ctx_with(&mut rng), &input);
        assert_eq!(out.to_user, Message::from("ping"));
    }

    #[test]
    fn fn_user_halts_once_and_stays_halted() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut u = FnUser::new("one-shot", |_ctx, _in| {
            UserAction::HaltWith(UserOut::to_server("bye"), Halt::with_output("42"))
        });
        let out = u.step(&mut ctx_with(&mut rng), &UserIn::default());
        assert_eq!(out.to_server, Message::from("bye"));
        assert_eq!(u.halted(), Some(Halt::with_output("42")));
        // Further steps are silent; the verdict is unchanged.
        let out2 = u.step(&mut ctx_with(&mut rng), &UserIn::default());
        assert_eq!(out2, UserOut::silence());
        assert_eq!(u.halted(), Some(Halt::with_output("42")));
    }

    #[test]
    fn boxed_user_delegates() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut b: BoxedUser = Box::new(SilentUser);
        assert_eq!(b.name(), "silent-user");
        assert_eq!(b.step(&mut ctx_with(&mut rng), &UserIn::default()), UserOut::silence());
        assert!(UserStrategy::halted(&b).is_none());
    }

    #[test]
    fn boxed_server_delegates() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut b: BoxedServer = Box::new(EchoServer);
        assert_eq!(b.name(), "echo-server");
        let input = ServerIn { from_user: Message::from("x"), from_world: Message::silence() };
        assert_eq!(b.step(&mut ctx_with(&mut rng), &input).to_user, Message::from("x"));
    }

    #[test]
    fn fn_server_applies_closure() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut s = FnServer::new("upper", |_ctx, input: &ServerIn| {
            let text = input.from_user.to_text().unwrap_or("").to_uppercase();
            ServerOut::to_user(text.as_str())
        });
        let input = ServerIn { from_user: Message::from("abc"), from_world: Message::silence() };
        assert_eq!(s.step(&mut ctx_with(&mut rng), &input).to_user, Message::from("ABC"));
        assert_eq!(s.name(), "upper");
    }

    #[test]
    fn halt_constructors() {
        assert_eq!(Halt::empty().output, Message::silence());
        assert_eq!(Halt::with_output("y").output, Message::from("y"));
    }
}
