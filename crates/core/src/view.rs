//! The user's view of an execution — the domain of sensing functions.
//!
//! Sensing (paper §3) is a predicate of "the history of the portion of the
//! system visible to the user": the messages the user received and sent each
//! round. Crucially the view does **not** include the world's internal state
//! (otherwise sensing would trivially simulate the referee) nor the server's.

use crate::msg::{UserIn, UserOut};

/// What the user saw and did in one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewEvent {
    /// The round index.
    pub round: u64,
    /// The incoming profile the user consumed this round.
    pub received: UserIn,
    /// The outgoing profile the user emitted this round.
    pub sent: UserOut,
}

/// The full per-round history of the user's interactions.
///
/// # Examples
///
/// ```
/// use goc_core::view::{UserView, ViewEvent};
/// use goc_core::msg::{UserIn, UserOut};
///
/// let mut view = UserView::new();
/// view.push(ViewEvent { round: 0, received: UserIn::default(), sent: UserOut::silence() });
/// assert_eq!(view.len(), 1);
/// assert!(view.latest().is_some());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UserView {
    events: Vec<ViewEvent>,
}

impl UserView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a round's event.
    pub fn push(&mut self, event: ViewEvent) {
        self.events.push(event);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no rounds have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All recorded events, oldest first.
    pub fn events(&self) -> &[ViewEvent] {
        &self.events
    }

    /// The most recent event, if any.
    pub fn latest(&self) -> Option<&ViewEvent> {
        self.events.last()
    }

    /// Iterates over events, oldest first.
    pub fn iter(&self) -> std::slice::Iter<'_, ViewEvent> {
        self.events.iter()
    }

    /// The suffix of events starting at round `from` (inclusive).
    pub fn since(&self, from: u64) -> &[ViewEvent] {
        let start = self.events.partition_point(|e| e.round < from);
        &self.events[start..]
    }

    /// Pre-reserves capacity for `additional` further events.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Discards all recorded events, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl<'a> IntoIterator for &'a UserView {
    type Item = &'a ViewEvent;
    type IntoIter = std::slice::Iter<'a, ViewEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<ViewEvent> for UserView {
    fn from_iter<T: IntoIterator<Item = ViewEvent>>(iter: T) -> Self {
        UserView { events: iter.into_iter().collect() }
    }
}

impl Extend<ViewEvent> for UserView {
    fn extend<T: IntoIterator<Item = ViewEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Message, UserIn, UserOut};

    fn ev(round: u64) -> ViewEvent {
        ViewEvent {
            round,
            received: UserIn {
                from_server: Message::from(format!("s{round}")),
                from_world: Message::silence(),
            },
            sent: UserOut::silence(),
        }
    }

    #[test]
    fn push_and_len() {
        let mut v = UserView::new();
        assert!(v.is_empty());
        v.push(ev(0));
        v.push(ev(1));
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.latest().unwrap().round, 1);
    }

    #[test]
    fn since_returns_suffix() {
        let v: UserView = (0..10).map(ev).collect();
        assert_eq!(v.since(7).len(), 3);
        assert_eq!(v.since(0).len(), 10);
        assert!(v.since(10).is_empty());
        assert_eq!(v.since(7)[0].round, 7);
    }

    #[test]
    fn iteration_orders_oldest_first() {
        let v: UserView = (0..5).map(ev).collect();
        let rounds: Vec<u64> = v.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![0, 1, 2, 3, 4]);
        let rounds2: Vec<u64> = (&v).into_iter().map(|e| e.round).collect();
        assert_eq!(rounds2, rounds);
    }

    #[test]
    fn extend_appends() {
        let mut v: UserView = (0..2).map(ev).collect();
        v.extend((2..4).map(ev));
        assert_eq!(v.len(), 4);
        assert_eq!(v.events()[3].round, 3);
    }
}
