//! Generic server decorators.
//!
//! The theory quantifies over *classes* of server strategies and over
//! arbitrary server start states. These wrappers manufacture such classes
//! from any base server:
//!
//! - [`PasswordLocked`] — unhelpful until a secret password arrives; the
//!   instrument of the lower-bound experiment E3 ("the overhead introduced by
//!   the enumeration is essentially necessary").
//! - [`Delayed`] — answers lag by a configurable number of rounds.
//! - [`Lossy`] — drops outgoing messages with probability `p`.
//! - [`ScrambledStart`] — runs the inner server from an "arbitrary" start
//!   state by feeding it junk warm-up rounds first.
//!
//! Since the adversarial channel layer landed ([`crate::channel`]), the
//! wrappers whose impairment is really a *link* property are thin aliases
//! over channel primitives: [`Delayed`] rides on
//! [`Latency`](crate::channel::Latency) and [`Lossy`] on
//! [`Noisy`](crate::channel::Noisy), preserving their historical rng
//! discipline byte-for-byte. [`PasswordLocked`], [`ScrambledStart`],
//! [`Intermittent`] and [`Byzantine`] remain genuine *server-state*
//! impairments a user↔server channel cannot express (they gate or corrupt
//! the server's world-facing behaviour too). New tests should prefer
//! [`Execution::with_channels`](crate::exec::Execution::with_channels) with
//! explicit channels; the wrappers stay for server-class constructions.

use crate::channel::{Channel, Latency, Noisy};
use crate::msg::{Message, ServerIn, ServerOut};
use crate::strategy::{BoxedServer, ServerStrategy, StepCtx};

/// A server that ignores everything until it receives the exact password
/// from the user, then behaves as the inner server.
///
/// The password round itself is consumed (not forwarded). A class of
/// password-locked servers over k-bit passwords forces any universal user to
/// pay Ω(2^k) rounds in the worst case — the paper's "enumeration overhead is
/// essentially necessary" phenomenon, reproduced by experiment E3.
///
/// # Examples
///
/// ```
/// use goc_core::wrappers::PasswordLocked;
/// use goc_core::strategy::EchoServer;
///
/// let locked = PasswordLocked::new(Box::new(EchoServer), "sesame");
/// assert!(!locked.is_unlocked());
/// ```
#[derive(Debug)]
pub struct PasswordLocked {
    inner: BoxedServer,
    password: Vec<u8>,
    unlocked: bool,
}

impl PasswordLocked {
    /// Locks `inner` behind `password`.
    pub fn new(inner: BoxedServer, password: impl AsRef<[u8]>) -> Self {
        PasswordLocked { inner, password: password.as_ref().to_vec(), unlocked: false }
    }

    /// Whether the lock has been opened.
    pub fn is_unlocked(&self) -> bool {
        self.unlocked
    }
}

impl ServerStrategy for PasswordLocked {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        if self.unlocked {
            return self.inner.step(ctx, input);
        }
        if input.from_user.as_bytes() == self.password.as_slice() {
            self.unlocked = true;
        }
        ServerOut::silence()
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(PasswordLocked {
            inner: self.inner.fork()?,
            password: self.password.clone(),
            unlocked: self.unlocked,
        }))
    }

    fn name(&self) -> String {
        format!("password-locked({} bytes, {})", self.password.len(), self.inner.name())
    }
}

/// A server whose incoming user messages are delayed by `delay` rounds.
///
/// Thin alias over [`Latency`](crate::channel::Latency) applied to the
/// inbound user link; prefer installing `Latency` as an up-channel via
/// [`Execution::with_channels`](crate::exec::Execution::with_channels) in
/// new code.
#[derive(Debug)]
pub struct Delayed {
    inner: BoxedServer,
    line: Latency,
}

impl Delayed {
    /// Delays user→server delivery by `delay` rounds.
    pub fn new(inner: BoxedServer, delay: usize) -> Self {
        Delayed { inner, line: Latency::new(delay) }
    }
}

impl ServerStrategy for Delayed {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        let delivered = self.line.transmit(ctx, input.from_user.clone());
        let delayed_in = ServerIn { from_user: delivered, from_world: input.from_world.clone() };
        self.inner.step(ctx, &delayed_in)
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(Delayed { inner: self.inner.fork()?, line: self.line.clone() }))
    }

    fn name(&self) -> String {
        format!("delayed({}, {})", self.line.delay(), self.inner.name())
    }
}

/// A server whose outgoing messages are each dropped with probability `p`.
///
/// Thin alias over [`Noisy`](crate::channel::Noisy) applied to both server
/// outputs, drawing from the server's rng stream in the historical order
/// (`to_user` first, only on non-silent messages) so seeded transcripts are
/// unchanged. Prefer a `Noisy` down-channel in new code; the wrapper form
/// remains for losses on the server→world link, which channels deliberately
/// cannot touch.
#[derive(Debug)]
pub struct Lossy {
    inner: BoxedServer,
    link: Noisy,
    p: f64,
}

impl Lossy {
    /// Drops each outgoing message independently with probability `p`
    /// (clamped to `[0, 1]`).
    pub fn new(inner: BoxedServer, p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        Lossy { inner, link: Noisy::drops(p), p }
    }
}

impl ServerStrategy for Lossy {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        let mut out = self.inner.step(ctx, input);
        out.to_user = self.link.transmit(ctx, out.to_user);
        out.to_world = self.link.transmit(ctx, out.to_world);
        out
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(Lossy { inner: self.inner.fork()?, link: self.link.clone(), p: self.p }))
    }

    fn name(&self) -> String {
        format!("lossy({}, {})", self.p, self.inner.name())
    }
}

/// Runs the inner server from an "arbitrary initial state": before the real
/// execution starts, the wrapper feeds the inner server `warmup` rounds of
/// random junk input (using the server's own random stream), discarding its
/// outputs.
///
/// The theorems quantify over executions started from *any* server state;
/// `ScrambledStart` realizes that quantifier for stateful servers.
#[derive(Debug)]
pub struct ScrambledStart {
    inner: BoxedServer,
    warmup: u32,
    done: bool,
}

impl ScrambledStart {
    /// Scrambles `inner` with `warmup` junk rounds on first step.
    pub fn new(inner: BoxedServer, warmup: u32) -> Self {
        ScrambledStart { inner, warmup, done: false }
    }
}

impl ServerStrategy for ScrambledStart {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        if !self.done {
            for _ in 0..self.warmup {
                let junk_len = ctx.rng.index(8) + 1;
                let junk = ServerIn {
                    from_user: Message::from_bytes(ctx.rng.bytes(junk_len)),
                    from_world: Message::silence(),
                };
                let _ = self.inner.step(ctx, &junk);
            }
            self.done = true;
        }
        self.inner.step(ctx, input)
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(ScrambledStart {
            inner: self.inner.fork()?,
            warmup: self.warmup,
            done: self.done,
        }))
    }

    fn name(&self) -> String {
        format!("scrambled({}, {})", self.warmup, self.inner.name())
    }
}

/// A server that is helpful only part of the time: it sleeps (behaves like
/// a silent server) for `off` rounds out of every `on + off`.
///
/// An intermittent wrapper around a helpful server is *still helpful* for
/// forgiving goals — persistence wins — but it stretches the viability
/// latency, stress-testing sensing deadlines.
#[derive(Debug)]
pub struct Intermittent {
    inner: BoxedServer,
    on: u64,
    off: u64,
}

impl Intermittent {
    /// A server awake for `on` rounds, asleep for `off` rounds, repeating.
    ///
    /// # Panics
    ///
    /// Panics if `on == 0`.
    pub fn new(inner: BoxedServer, on: u64, off: u64) -> Self {
        assert!(on > 0, "Intermittent requires a positive on-phase");
        Intermittent { inner, on, off }
    }
}

impl ServerStrategy for Intermittent {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        if ctx.round % (self.on + self.off) < self.on {
            self.inner.step(ctx, input)
        } else {
            ServerOut::silence()
        }
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(Intermittent { inner: self.inner.fork()?, on: self.on, off: self.off }))
    }

    fn name(&self) -> String {
        format!("intermittent({}on/{}off, {})", self.on, self.off, self.inner.name())
    }
}

/// A server that, with probability `p` per round, replaces its outgoing
/// messages with random garbage.
///
/// Used by safety experiments: garbage must never fool safe sensing into a
/// false positive (the referee, not the channel, defines success). This is
/// a *server* impairment, not an alias of
/// [`Garbler`](crate::channel::Garbler): one coin corrupts both outputs,
/// including the server→world message no user↔server channel can reach.
#[derive(Debug)]
pub struct Byzantine {
    inner: BoxedServer,
    p: f64,
    max_garbage: usize,
}

impl Byzantine {
    /// Corrupts each round's output with probability `p` (clamped to
    /// `[0, 1]`), emitting up to `max_garbage` random bytes per channel.
    pub fn new(inner: BoxedServer, p: f64, max_garbage: usize) -> Self {
        Byzantine { inner, p: p.clamp(0.0, 1.0), max_garbage: max_garbage.max(1) }
    }
}

impl ServerStrategy for Byzantine {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        let out = self.inner.step(ctx, input);
        if ctx.rng.chance(self.p) {
            let len_u = ctx.rng.index(self.max_garbage) + 1;
            let len_w = ctx.rng.index(self.max_garbage) + 1;
            ServerOut {
                to_user: Message::from_bytes(ctx.rng.bytes(len_u)),
                to_world: Message::from_bytes(ctx.rng.bytes(len_w)),
            }
        } else {
            out
        }
    }

    fn fork(&self) -> Option<BoxedServer> {
        Some(Box::new(Byzantine {
            inner: self.inner.fork()?,
            p: self.p,
            max_garbage: self.max_garbage,
        }))
    }

    fn name(&self) -> String {
        format!("byzantine({}, {})", self.p, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::GocRng;
    use crate::strategy::EchoServer;

    fn ctx(rng: &mut GocRng) -> StepCtx<'_> {
        StepCtx::new(0, rng)
    }

    fn user_says(text: &str) -> ServerIn {
        ServerIn { from_user: Message::from(text), from_world: Message::silence() }
    }

    #[test]
    fn password_blocks_until_unlocked() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut s = PasswordLocked::new(Box::new(EchoServer), "sesame");
        assert_eq!(s.step(&mut ctx(&mut rng), &user_says("hello")), ServerOut::silence());
        assert!(!s.is_unlocked());
        // Wrong password: still locked.
        assert_eq!(s.step(&mut ctx(&mut rng), &user_says("sesame!")), ServerOut::silence());
        assert!(!s.is_unlocked());
        // Correct password: consumed, not echoed.
        assert_eq!(s.step(&mut ctx(&mut rng), &user_says("sesame")), ServerOut::silence());
        assert!(s.is_unlocked());
        // Now the inner echo server works.
        let out = s.step(&mut ctx(&mut rng), &user_says("hello"));
        assert_eq!(out.to_user, Message::from("hello"));
    }

    #[test]
    fn delayed_shifts_messages() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut s = Delayed::new(Box::new(EchoServer), 2);
        assert!(s.step(&mut ctx(&mut rng), &user_says("a")).to_user.is_silence());
        assert!(s.step(&mut ctx(&mut rng), &user_says("b")).to_user.is_silence());
        assert_eq!(s.step(&mut ctx(&mut rng), &user_says("c")).to_user, Message::from("a"));
        assert_eq!(s.step(&mut ctx(&mut rng), &user_says("d")).to_user, Message::from("b"));
    }

    #[test]
    fn delayed_zero_is_transparent() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut s = Delayed::new(Box::new(EchoServer), 0);
        assert_eq!(s.step(&mut ctx(&mut rng), &user_says("a")).to_user, Message::from("a"));
    }

    #[test]
    fn lossy_extremes() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut never = Lossy::new(Box::new(EchoServer), 0.0);
        assert_eq!(never.step(&mut ctx(&mut rng), &user_says("x")).to_user, Message::from("x"));
        let mut always = Lossy::new(Box::new(EchoServer), 1.0);
        assert!(always.step(&mut ctx(&mut rng), &user_says("x")).to_user.is_silence());
    }

    #[test]
    fn lossy_intermediate_drops_some() {
        let mut rng = GocRng::seed_from_u64(9);
        let mut s = Lossy::new(Box::new(EchoServer), 0.5);
        let mut delivered = 0;
        for _ in 0..200 {
            if !s.step(&mut ctx(&mut rng), &user_says("x")).to_user.is_silence() {
                delivered += 1;
            }
        }
        assert!((50..150).contains(&delivered), "delivered = {delivered}");
    }

    #[test]
    fn scrambled_start_still_works_for_stateless_inner() {
        let mut rng = GocRng::seed_from_u64(0);
        let mut s = ScrambledStart::new(Box::new(EchoServer), 5);
        assert_eq!(s.step(&mut ctx(&mut rng), &user_says("hi")).to_user, Message::from("hi"));
    }

    #[test]
    fn names_compose() {
        let s = PasswordLocked::new(Box::new(EchoServer), "pw");
        assert_eq!(s.name(), "password-locked(2 bytes, echo-server)");
        let d = Delayed::new(Box::new(EchoServer), 3);
        assert_eq!(d.name(), "delayed(3, echo-server)");
        let i = Intermittent::new(Box::new(EchoServer), 2, 3);
        assert_eq!(i.name(), "intermittent(2on/3off, echo-server)");
        let b = Byzantine::new(Box::new(EchoServer), 0.5, 4);
        assert_eq!(b.name(), "byzantine(0.5, echo-server)");
    }

    #[test]
    fn intermittent_sleeps_on_schedule() {
        let mut rng = GocRng::seed_from_u64(1);
        let mut s = Intermittent::new(Box::new(EchoServer), 2, 3);
        let mut awake = Vec::new();
        for round in 0..10u64 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let out = s.step(&mut ctx, &user_says("x"));
            awake.push(!out.to_user.is_silence());
        }
        assert_eq!(
            awake,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    #[should_panic(expected = "positive on-phase")]
    fn intermittent_zero_on_panics() {
        let _ = Intermittent::new(Box::new(EchoServer), 0, 1);
    }

    #[test]
    fn fork_preserves_wrapper_state() {
        let mut rng = GocRng::seed_from_u64(3);
        let mut s = PasswordLocked::new(Box::new(EchoServer), "pw");
        let _ = s.step(&mut ctx(&mut rng), &user_says("pw"));
        assert!(s.is_unlocked());
        let mut f = s.fork().expect("password-locked over echo is forkable");
        let out = f.step(&mut ctx(&mut rng), &user_says("hello"));
        assert_eq!(out.to_user, Message::from("hello"));

        // A fork taken mid-flight carries the latency queue with it.
        let mut d = Delayed::new(Box::new(EchoServer), 2);
        let _ = d.step(&mut ctx(&mut rng), &user_says("a"));
        let _ = d.step(&mut ctx(&mut rng), &user_says("b"));
        let mut df = d.fork().expect("delayed over echo is forkable");
        assert_eq!(d.step(&mut ctx(&mut rng), &user_says("c")).to_user, Message::from("a"));
        assert_eq!(df.step(&mut ctx(&mut rng), &user_says("c")).to_user, Message::from("a"));
    }

    #[test]
    fn byzantine_extremes() {
        let mut rng = GocRng::seed_from_u64(2);
        let mut honest = Byzantine::new(Box::new(EchoServer), 0.0, 4);
        let mut ctx = StepCtx::new(0, &mut rng);
        assert_eq!(honest.step(&mut ctx, &user_says("x")).to_user, Message::from("x"));

        let mut liar = Byzantine::new(Box::new(EchoServer), 1.0, 4);
        let mut corrupted = 0;
        for round in 0..50u64 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let out = liar.step(&mut ctx, &user_says("x"));
            if out.to_user != Message::from("x") {
                corrupted += 1;
            }
        }
        assert!(corrupted >= 45, "corrupted = {corrupted}");
    }
}
