//! Enumerable classes of user strategies.
//!
//! The universal constructions of Theorem 1 "enumerate all relevant user
//! strategies". A [`StrategyEnumerator`] is any effectively enumerable class:
//! the i-th call instantiates a *fresh* copy of the i-th strategy. Classes
//! may be finite (parametric families — the "broad classes" the paper's §3
//! closes with) or infinite (e.g. all programs of the `goc-vm` language).
//!
//! The compact construction additionally needs every strategy to **recur
//! infinitely often** in the switching schedule: viability only promises
//! *finitely many* negative indications for a viable strategy, so a schedule
//! that abandons a strategy forever after one spurious negative would strand
//! the user. [`TriangularSchedule`] provides the classic fix, visiting
//! strategies in the order 0; 0, 1; 0, 1, 2; …

use crate::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use crate::strategy::BoxedUser;
use std::fmt::Debug;

/// An effectively enumerable class of user strategies.
pub trait StrategyEnumerator: Debug {
    /// The number of strategies, or `None` if the class is infinite.
    fn len(&self) -> Option<usize>;

    /// Returns `true` if the class is empty.
    fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Instantiates a fresh copy of the `index`-th strategy, or `None` if the
    /// index is out of range (finite classes only).
    fn strategy(&self, index: usize) -> Option<BoxedUser>;

    /// Instantiates a batch of strategies at once, one per entry of
    /// `indices`, preserving order.
    ///
    /// The universal users use this to pre-materialise the next few scheduled
    /// candidates in one call. The default is a sequential loop over
    /// [`StrategyEnumerator::strategy`]; enumerators whose concrete strategy
    /// type is `Send` (e.g. the VM program enumerator) may override it to
    /// build candidates in parallel. Overrides must be observably identical
    /// to the default: same instances, same order, `None` exactly where
    /// `strategy` returns `None`.
    fn batch(&self, indices: &[usize]) -> Vec<Option<BoxedUser>> {
        indices.iter().map(|&i| self.strategy(i)).collect()
    }

    /// Hints that `indices` will be requested by a future
    /// [`batch`](StrategyEnumerator::batch) call, so the enumerator may
    /// start preparing those candidates in the background (idle
    /// [`par::pool`](crate::par::pool) workers) while the caller keeps
    /// running the live candidate.
    ///
    /// Purely advisory and must be observably inert: a later `batch` over
    /// the same indices returns exactly what it would have without the
    /// hint, and background work may only compute pure functions of the
    /// index (e.g. value-identical cache entries). The default does
    /// nothing.
    fn prefetch(&self, _indices: &[usize]) {}

    /// A short human-readable name for diagnostics.
    fn name(&self) -> String {
        "enumeration".to_string()
    }
}

impl<E: StrategyEnumerator + ?Sized> StrategyEnumerator for Box<E> {
    fn len(&self) -> Option<usize> {
        (**self).len()
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        (**self).strategy(index)
    }

    fn batch(&self, indices: &[usize]) -> Vec<Option<BoxedUser>> {
        (**self).batch(indices)
    }

    fn prefetch(&self, indices: &[usize]) {
        (**self).prefetch(indices)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// A finite class given by a list of factories.
pub struct SliceEnumerator {
    label: String,
    factories: Vec<Box<dyn Fn() -> BoxedUser>>,
}

impl Debug for SliceEnumerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceEnumerator")
            .field("label", &self.label)
            .field("len", &self.factories.len())
            .finish()
    }
}

impl SliceEnumerator {
    /// Creates an empty class (useful as a builder seed).
    pub fn new(label: impl Into<String>) -> Self {
        SliceEnumerator { label: label.into(), factories: Vec::new() }
    }

    /// Appends a strategy factory; returns `self` for chaining.
    pub fn with(mut self, factory: impl Fn() -> BoxedUser + 'static) -> Self {
        self.factories.push(Box::new(factory));
        self
    }

    /// Appends a strategy factory.
    pub fn push(&mut self, factory: impl Fn() -> BoxedUser + 'static) {
        self.factories.push(Box::new(factory));
    }
}

impl StrategyEnumerator for SliceEnumerator {
    fn len(&self) -> Option<usize> {
        Some(self.factories.len())
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        self.factories.get(index).map(|f| f())
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// A class given by an index-to-strategy closure; `len = None` makes it
/// infinite.
pub struct FnEnumerator<F> {
    label: String,
    len: Option<usize>,
    f: F,
}

impl<F> Debug for FnEnumerator<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnEnumerator")
            .field("label", &self.label)
            .field("len", &self.len)
            .finish()
    }
}

impl<F> FnEnumerator<F>
where
    F: Fn(usize) -> Option<BoxedUser>,
{
    /// Creates a class from a closure. Pass `len = None` for an infinite
    /// class (the closure must then return `Some` for every index).
    pub fn new(label: impl Into<String>, len: Option<usize>, f: F) -> Self {
        FnEnumerator { label: label.into(), len, f }
    }
}

impl<F> StrategyEnumerator for FnEnumerator<F>
where
    F: Fn(usize) -> Option<BoxedUser>,
{
    fn len(&self) -> Option<usize> {
        self.len
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        if let Some(n) = self.len {
            if index >= n {
                return None;
            }
        }
        (self.f)(index)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Concatenates two enumerable classes (first exhausting `a` if finite).
///
/// For an infinite `a`, `b` is never reached; this mirrors the set-union
/// of classes only for finite `a` and is primarily used to append fallback
/// strategies after a parametric family.
#[derive(Debug)]
pub struct ChainEnumerator<A, B> {
    a: A,
    b: B,
}

impl<A: StrategyEnumerator, B: StrategyEnumerator> ChainEnumerator<A, B> {
    /// Chains `a` then `b`.
    pub fn new(a: A, b: B) -> Self {
        ChainEnumerator { a, b }
    }
}

impl<A: StrategyEnumerator, B: StrategyEnumerator> StrategyEnumerator for ChainEnumerator<A, B> {
    fn len(&self) -> Option<usize> {
        match (self.a.len(), self.b.len()) {
            (Some(x), Some(y)) => Some(x + y),
            _ => None,
        }
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        match self.a.len() {
            Some(n) if index >= n => self.b.strategy(index - n),
            _ => self.a.strategy(index),
        }
    }

    fn name(&self) -> String {
        format!("{} ++ {}", self.a.name(), self.b.name())
    }
}

/// The triangular visitation order 0; 0, 1; 0, 1, 2; 0, 1, 2, 3; …
///
/// Every index recurs infinitely often, and index *i* first appears after
/// O(i²) steps — the bookkeeping behind the compact universal user's
/// enumeration (see module docs).
///
/// For a **finite** class of size `n`, indices ≥ `n` are skipped, which turns
/// the schedule into a simple round-robin of period `n` once the triangle
/// width reaches `n`.
///
/// # Examples
///
/// ```
/// use goc_core::enumeration::TriangularSchedule;
///
/// let order: Vec<usize> = TriangularSchedule::unbounded().take(10).collect();
/// assert_eq!(order, vec![0, 0, 1, 0, 1, 2, 0, 1, 2, 3]);
///
/// let bounded: Vec<usize> = TriangularSchedule::bounded(2).take(7).collect();
/// assert_eq!(bounded, vec![0, 0, 1, 0, 1, 0, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct TriangularSchedule {
    row: usize,
    col: usize,
    bound: Option<usize>,
}

impl TriangularSchedule {
    /// A schedule over an infinite class.
    pub fn unbounded() -> Self {
        TriangularSchedule { row: 0, col: 0, bound: None }
    }

    /// A schedule over a finite class of `n` strategies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bounded(n: usize) -> Self {
        assert!(n > 0, "TriangularSchedule requires a non-empty class");
        TriangularSchedule { row: 0, col: 0, bound: Some(n) }
    }
}

impl Iterator for TriangularSchedule {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.col > self.row {
                self.row = self.row.saturating_add(1);
                self.col = 0;
            }
            let idx = self.col;
            self.col = self.col.saturating_add(1);
            match self.bound {
                Some(n) if idx >= n => {
                    // Everything up to the end of this row is filtered too:
                    // wrap directly instead of spinning `row − col` times.
                    // Rows ≥ n all emit the same 0..n pass, so capping the
                    // row keeps the cursor total even for decoded cursors
                    // with absurd row values.
                    self.row = self.row.saturating_add(1).min(n);
                    self.col = 0;
                }
                _ => return Some(idx),
            }
        }
    }
}

impl SnapState for TriangularSchedule {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.usize(self.row);
        w.usize(self.col);
        self.bound.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let row = r.usize("triangular row")?;
        let col = r.usize("triangular col")?;
        let bound = Option::<usize>::decode(r)?;
        if bound == Some(0) {
            // An empty bound would make `next` spin forever skipping
            // non-existent indices; the constructors forbid it.
            return Err(SnapError::Malformed { context: "triangular bound" });
        }
        // A live cursor keeps `col ≤ row + 1` (the wrap fires as soon as the
        // column passes the row) and, when bounded, `row ≤ n` and `col ≤ n`
        // (the skip branch caps the row and every yield has `idx < n`).
        // Reject anything outside that envelope rather than iterating from a
        // state the schedule can never reach.
        let honest = match bound {
            Some(n) => row <= n && col <= n,
            None => col <= row.saturating_add(1) && row < usize::MAX,
        };
        if !honest {
            return Err(SnapError::Malformed { context: "triangular cursor" });
        }
        Ok(TriangularSchedule { row, col, bound })
    }
}

/// The one-pass visitation order 0, 1, 2, … (no recurrence).
///
/// This is the **naive** schedule used by ablation E8: it is *incorrect* for
/// compact goals in general, because a viable strategy abandoned on an early
/// spurious negative is never revisited.
#[derive(Clone, Debug, Default)]
pub struct LinearSchedule {
    next: usize,
    bound: Option<usize>,
}

impl LinearSchedule {
    /// An unbounded linear schedule.
    pub fn unbounded() -> Self {
        LinearSchedule { next: 0, bound: None }
    }

    /// A linear schedule that stops permanently at index `n - 1` (keeps
    /// returning the last index once the class is exhausted).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bounded(n: usize) -> Self {
        assert!(n > 0, "LinearSchedule requires a non-empty class");
        LinearSchedule { next: 0, bound: Some(n) }
    }
}

impl Iterator for LinearSchedule {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let idx = match self.bound {
            Some(n) => self.next.min(n - 1),
            None => self.next,
        };
        self.next = self.next.saturating_add(1);
        Some(idx)
    }
}

impl SnapState for LinearSchedule {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.usize(self.next);
        self.bound.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let next = r.usize("linear next")?;
        let bound = Option::<usize>::decode(r)?;
        if bound == Some(0) {
            // `next` computes `n - 1`; the constructors forbid `n == 0`.
            return Err(SnapError::Malformed { context: "linear bound" });
        }
        Ok(LinearSchedule { next, bound })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SilentUser, UserStrategy};

    fn silent_class(n: usize) -> SliceEnumerator {
        let mut e = SliceEnumerator::new(format!("silent-x{n}"));
        for _ in 0..n {
            e.push(|| Box::new(SilentUser));
        }
        e
    }

    #[test]
    fn slice_enumerator_basics() {
        let e = silent_class(3);
        assert_eq!(e.len(), Some(3));
        assert!(!e.is_empty());
        assert!(e.strategy(0).is_some());
        assert!(e.strategy(2).is_some());
        assert!(e.strategy(3).is_none());
        assert!(silent_class(0).is_empty());
    }

    #[test]
    fn slice_enumerator_yields_fresh_instances() {
        let e = SliceEnumerator::new("x").with(|| Box::new(SilentUser));
        let a = e.strategy(0).unwrap();
        let b = e.strategy(0).unwrap();
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn fn_enumerator_infinite() {
        let e = FnEnumerator::new("inf", None, |_i| Some(Box::new(SilentUser) as BoxedUser));
        assert_eq!(e.len(), None);
        assert!(!e.is_empty());
        assert!(e.strategy(1_000_000).is_some());
    }

    #[test]
    fn fn_enumerator_bounded_respects_len() {
        let e = FnEnumerator::new("b", Some(2), |_i| Some(Box::new(SilentUser) as BoxedUser));
        assert!(e.strategy(1).is_some());
        assert!(e.strategy(2).is_none());
    }

    #[test]
    fn chain_concatenates() {
        let e = ChainEnumerator::new(silent_class(2), silent_class(3));
        assert_eq!(e.len(), Some(5));
        assert!(e.strategy(4).is_some());
        assert!(e.strategy(5).is_none());
        assert_eq!(e.name(), "silent-x2 ++ silent-x3");
    }

    #[test]
    fn chain_with_infinite_tail() {
        let inf = FnEnumerator::new("inf", None, |_i| Some(Box::new(SilentUser) as BoxedUser));
        let e = ChainEnumerator::new(silent_class(2), inf);
        assert_eq!(e.len(), None);
        assert!(e.strategy(100).is_some());
    }

    #[test]
    fn triangular_every_index_recurs() {
        let order: Vec<usize> = TriangularSchedule::unbounded().take(50).collect();
        for idx in 0..5 {
            let occurrences = order.iter().filter(|&&i| i == idx).count();
            assert!(occurrences >= 3, "index {idx} occurred only {occurrences} times");
        }
    }

    #[test]
    fn triangular_bounded_becomes_round_robin() {
        let order: Vec<usize> = TriangularSchedule::bounded(3).take(12).collect();
        assert_eq!(order, vec![0, 0, 1, 0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn linear_bounded_saturates() {
        let order: Vec<usize> = LinearSchedule::bounded(3).take(6).collect();
        assert_eq!(order, vec![0, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn linear_unbounded_counts_up() {
        let order: Vec<usize> = LinearSchedule::unbounded().take(4).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn batch_matches_strategy_per_index() {
        let e = silent_class(3);
        let got = e.batch(&[0, 2, 3, 1]);
        assert_eq!(got.len(), 4);
        assert!(got[0].is_some());
        assert!(got[1].is_some());
        assert!(got[2].is_none(), "out-of-range index must stay None in batch");
        assert!(got[3].is_some());
    }

    #[test]
    fn boxed_enumerator_delegates() {
        let b: Box<dyn StrategyEnumerator> = Box::new(silent_class(2));
        assert_eq!(b.len(), Some(2));
        assert!(b.strategy(1).is_some());
        assert_eq!(b.name(), "silent-x2");
    }
}
