//! Deterministic randomness for strategies and experiments.
//!
//! The paper's strategies are probabilistic, and the world makes a single
//! non-deterministic choice of a probabilistic strategy (footnote 2). To keep
//! every theorem-experiment reproducible, all randomness in `goc` flows
//! through [`GocRng`], a seedable deterministic generator. Forking (see
//! [`GocRng::fork`]) derives statistically independent streams for the
//! different parties of an execution from a single experiment seed.

/// The xoshiro256++ generator state (public-domain algorithm by Blackman &
/// Vigna), seeded via SplitMix64. Implemented in-house so the generator is
/// `Clone` and byte-for-byte stable across library upgrades — experiment
/// outputs in EXPERIMENTS.md stay reproducible forever.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256 { s }
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seedable, forkable deterministic random number generator.
///
/// # Examples
///
/// ```
/// use goc_core::rng::GocRng;
///
/// let mut a = GocRng::seed_from_u64(42);
/// let mut b = GocRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's subsequent output.
/// let mut child = a.fork(0);
/// let _ = child.next_u64();
/// ```
#[derive(Clone, Debug)]
pub struct GocRng {
    inner: Xoshiro256,
    seed: u64,
}

impl GocRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        GocRng { inner: Xoshiro256::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created from.
    ///
    /// Note that after [`fork`](Self::fork) the returned value is the derived
    /// seed of the fork, not of the root generator.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw xoshiro256++ state words, for snapshotting. Together with
    /// [`seed`](Self::seed), this is the generator's complete state:
    /// [`from_state`](Self::from_state) rebuilds a generator that continues
    /// the exact same output stream.
    pub fn state(&self) -> [u64; 4] {
        self.inner.s
    }

    /// Rebuilds a generator from a [`state`](Self::state)/[`seed`](Self::seed)
    /// pair captured mid-stream.
    pub fn from_state(state: [u64; 4], seed: u64) -> Self {
        GocRng { inner: Xoshiro256 { s: state }, seed }
    }

    /// Derives an independent generator for stream `stream`.
    ///
    /// Forking is deterministic: the same parent seed and stream id always
    /// produce the same child stream, regardless of how much output the
    /// parent has produced.
    pub fn fork(&self, stream: u64) -> Self {
        // SplitMix64-style mixing of (seed, stream) into a child seed.
        let mut z = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(0x94d0_49bb_1331_11eb);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        GocRng::seed_from_u64(z)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "GocRng::below requires a positive bound");
        // Rejection sampling to avoid modulo bias.
        let rem = (u64::MAX % bound + 1) % bound;
        let zone = u64::MAX - rem;
        loop {
            let x = self.inner.next_u64();
            if x <= zone {
                return x % bound;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "GocRng::index requires a non-empty range");
        self.below(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform random byte.
    pub fn byte(&mut self) -> u8 {
        (self.inner.next_u32() & 0xff) as u8
    }

    /// A vector of `len` uniform random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }

    /// Chooses a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.index(items.len());
        &items[i]
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            p.swap(i, j);
        }
        p
    }
}

impl GocRng {
    /// Fills `dest` with uniform random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.inner.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = GocRng::seed_from_u64(7);
        let mut b = GocRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = GocRng::seed_from_u64(1);
        let mut b = GocRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let root = GocRng::seed_from_u64(99);
        let mut c1 = root.fork(3);
        let mut c2 = root.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = root.fork(4);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = GocRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        GocRng::seed_from_u64(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = GocRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = GocRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = GocRng::seed_from_u64(13);
        let p = r.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bytes_has_requested_len() {
        let mut r = GocRng::seed_from_u64(21);
        assert_eq!(r.bytes(33).len(), 33);
        assert!(r.bytes(0).is_empty());
    }

    #[test]
    fn choose_picks_member() {
        let mut r = GocRng::seed_from_u64(31);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
