//! Helpfulness and forgivingness — the theory's side conditions, checked by
//! Monte-Carlo simulation.
//!
//! - A server is **helpful** for a goal and a class of user strategies if
//!   *some* strategy in the class achieves the goal when paired with it, from
//!   any server/world start state (paper §2). [`finite_helpfulness`] and
//!   [`compact_helpfulness`] estimate this by sampling start states (seeds).
//! - A goal is **forgiving** if every finite partial history can be extended
//!   to a successful one (paper §2). [`finite_forgiving`] and
//!   [`compact_forgiving`] estimate this by running a *chaos* phase (babbling
//!   user and server) and then handing control to a known-good rescue pair.

use crate::exec::Execution;
use crate::goal::{evaluate_compact, evaluate_finite, CompactGoal, FiniteGoal};
use crate::msg::{ServerIn, ServerOut, UserIn, UserOut};
use crate::rng::GocRng;
use crate::strategy::{BoxedServer, BoxedUser, ServerStrategy, StepCtx, UserStrategy};

/// Parameters shared by the Monte-Carlo checkers in this module and in
/// [`crate::validate`].
#[derive(Clone, Debug)]
pub struct TrialConfig {
    /// Independent executions sampled per question.
    pub trials: u32,
    /// Round horizon per execution.
    pub horizon: u64,
    /// Root seed; trial `t` uses fork `t`.
    pub seed: u64,
    /// Stabilization window for compact verdicts (see
    /// [`CompactVerdict::achieved`](crate::goal::CompactVerdict::achieved)).
    pub window: u64,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig { trials: 8, horizon: 2_000, seed: 0xC0FFEE, window: 250 }
    }
}

/// Per-strategy success statistics from a helpfulness check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyStats {
    /// Index of the strategy in the enumeration.
    pub index: usize,
    /// Trials in which the goal was achieved.
    pub successes: u32,
    /// Trials run.
    pub trials: u32,
}

impl StrategyStats {
    /// `true` if the strategy achieved the goal in every sampled trial.
    pub fn always_succeeded(&self) -> bool {
        self.trials > 0 && self.successes == self.trials
    }
}

/// Result of a helpfulness check.
#[derive(Clone, Debug)]
pub struct HelpfulnessReport {
    /// `true` if some strategy achieved the goal in **all** sampled trials.
    pub helpful: bool,
    /// The first such strategy's index.
    pub witness: Option<usize>,
    /// Statistics for every strategy tried.
    pub per_strategy: Vec<StrategyStats>,
}

/// Estimates whether `server` is helpful for a finite `goal` with respect to
/// the finite strategy class `class`.
///
/// Tries every strategy in the class against fresh server/world instances
/// over `cfg.trials` seeds; the server is deemed helpful if some strategy
/// succeeded every time.
///
/// # Panics
///
/// Panics if `class` is infinite (helpfulness over infinite classes must be
/// approximated by truncation — do that explicitly at the call site).
///
/// # Examples
///
/// ```
/// use goc_core::helpful::{finite_helpfulness, TrialConfig};
/// use goc_core::prelude::*;
/// use goc_core::toy;
///
/// let goal = toy::MagicWordGoal::new("hi");
/// let report = finite_helpfulness(
///     &goal,
///     &|| Box::new(toy::RelayServer::with_shift(2)),
///     &toy::caesar_class("hi", 4, false),
///     &TrialConfig { trials: 2, horizon: 100, seed: 1, window: 20 },
/// );
/// assert!(report.helpful);
/// assert_eq!(report.witness, Some(2)); // the compensating strategy
/// ```
pub fn finite_helpfulness<G: FiniteGoal>(
    goal: &G,
    server: &dyn Fn() -> BoxedServer,
    class: &dyn crate::enumeration::StrategyEnumerator,
    cfg: &TrialConfig,
) -> HelpfulnessReport {
    let n = class.len().expect("finite_helpfulness requires a finite class");
    let mut per_strategy = Vec::with_capacity(n);
    let mut witness = None;
    for index in 0..n {
        let mut successes = 0;
        for trial in 0..cfg.trials {
            let mut rng = GocRng::seed_from_u64(cfg.seed).fork(trial as u64);
            let world = goal.spawn_world(&mut rng);
            let user = class.strategy(index).expect("index in range");
            let mut exec = Execution::new(world, server(), user, rng);
            let t = exec.run(cfg.horizon);
            if evaluate_finite(goal, &t).achieved {
                successes += 1;
            }
        }
        let stats = StrategyStats { index, successes, trials: cfg.trials };
        if stats.always_succeeded() && witness.is_none() {
            witness = Some(index);
        }
        per_strategy.push(stats);
    }
    HelpfulnessReport { helpful: witness.is_some(), witness, per_strategy }
}

/// Estimates whether `server` is helpful for a compact `goal` with respect to
/// the finite strategy class `class`.
///
/// # Panics
///
/// Panics if `class` is infinite.
pub fn compact_helpfulness<G: CompactGoal>(
    goal: &G,
    server: &dyn Fn() -> BoxedServer,
    class: &dyn crate::enumeration::StrategyEnumerator,
    cfg: &TrialConfig,
) -> HelpfulnessReport {
    let n = class.len().expect("compact_helpfulness requires a finite class");
    let mut per_strategy = Vec::with_capacity(n);
    let mut witness = None;
    for index in 0..n {
        let mut successes = 0;
        for trial in 0..cfg.trials {
            let mut rng = GocRng::seed_from_u64(cfg.seed).fork(trial as u64);
            let world = goal.spawn_world(&mut rng);
            let user = class.strategy(index).expect("index in range");
            let mut exec = Execution::new(world, server(), user, rng);
            let t = exec.run_for(cfg.horizon);
            if evaluate_compact(goal, &t).achieved(cfg.window) {
                successes += 1;
            }
        }
        let stats = StrategyStats { index, successes, trials: cfg.trials };
        if stats.always_succeeded() && witness.is_none() {
            witness = Some(index);
        }
        per_strategy.push(stats);
    }
    HelpfulnessReport { helpful: witness.is_some(), witness, per_strategy }
}

/// A user that emits random bytes on random channels — the "chaos" phase of
/// forgivingness checks.
#[derive(Clone, Debug, Default)]
pub struct BabblerUser;

impl UserStrategy for BabblerUser {
    fn step(&mut self, ctx: &mut StepCtx<'_>, _input: &UserIn) -> UserOut {
        let len = ctx.rng.index(6);
        let msg = crate::msg::Message::from_bytes(ctx.rng.bytes(len));
        if ctx.rng.chance(0.5) {
            UserOut::to_server(msg)
        } else {
            UserOut::to_world(msg)
        }
    }

    fn name(&self) -> String {
        "babbler-user".to_string()
    }
}

/// A server that emits random bytes on random channels.
#[derive(Clone, Debug, Default)]
pub struct BabblerServer;

impl ServerStrategy for BabblerServer {
    fn step(&mut self, ctx: &mut StepCtx<'_>, _input: &ServerIn) -> ServerOut {
        let len = ctx.rng.index(6);
        let msg = crate::msg::Message::from_bytes(ctx.rng.bytes(len));
        if ctx.rng.chance(0.5) {
            ServerOut::to_user(msg)
        } else {
            ServerOut::to_world(msg)
        }
    }

    fn name(&self) -> String {
        "babbler-server".to_string()
    }
}

/// Result of a forgivingness check.
#[derive(Clone, Debug)]
pub struct ForgivingReport {
    /// Trials in which the rescue pair achieved the goal after chaos.
    pub rescued: u32,
    /// Trials run.
    pub trials: u32,
}

impl ForgivingReport {
    /// `true` if every sampled chaotic prefix was recoverable.
    pub fn forgiving(&self) -> bool {
        self.trials > 0 && self.rescued == self.trials
    }
}

/// Estimates forgivingness of a finite goal: each trial babbles for a random
/// prefix of up to `max_chaos` rounds, then swaps in the rescue pair and
/// checks the goal is still achieved within `cfg.horizon` further rounds.
pub fn finite_forgiving<G: FiniteGoal>(
    goal: &G,
    rescue_user: &dyn Fn() -> BoxedUser,
    rescue_server: &dyn Fn() -> BoxedServer,
    max_chaos: u64,
    cfg: &TrialConfig,
) -> ForgivingReport {
    let mut rescued = 0;
    for trial in 0..cfg.trials {
        let mut rng = GocRng::seed_from_u64(cfg.seed).fork(1_000 + trial as u64);
        let chaos_rounds = rng.below(max_chaos.max(1));
        let world = goal.spawn_world(&mut rng);
        let mut exec =
            Execution::new(world, Box::new(BabblerServer), Box::new(BabblerUser), rng);
        exec.run(chaos_rounds);
        exec.swap_user(rescue_user());
        exec.swap_server(rescue_server());
        let t = exec.run(cfg.horizon);
        if evaluate_finite(goal, &t).achieved {
            rescued += 1;
        }
    }
    ForgivingReport { rescued, trials: cfg.trials }
}

/// Estimates forgivingness of a compact goal (see [`finite_forgiving`]).
///
/// The verdict only inspects the *post-chaos* suffix: compact success means
/// finitely many bad prefixes, so bad prefixes during chaos are forgiven by
/// definition; what matters is that the rescue pair stabilizes the run.
pub fn compact_forgiving<G: CompactGoal>(
    goal: &G,
    rescue_user: &dyn Fn() -> BoxedUser,
    rescue_server: &dyn Fn() -> BoxedServer,
    max_chaos: u64,
    cfg: &TrialConfig,
) -> ForgivingReport {
    let mut rescued = 0;
    for trial in 0..cfg.trials {
        let mut rng = GocRng::seed_from_u64(cfg.seed).fork(2_000 + trial as u64);
        let chaos_rounds = rng.below(max_chaos.max(1));
        let world = goal.spawn_world(&mut rng);
        let mut exec =
            Execution::new(world, Box::new(BabblerServer), Box::new(BabblerUser), rng);
        exec.run(chaos_rounds);
        exec.swap_user(rescue_user());
        exec.swap_server(rescue_server());
        let t = exec.run_for(cfg.horizon);
        if evaluate_compact(goal, &t).achieved(cfg.window) {
            rescued += 1;
        }
    }
    ForgivingReport { rescued, trials: cfg.trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::SilentServer;
    use crate::toy;

    fn cfg() -> TrialConfig {
        TrialConfig { trials: 4, horizon: 300, seed: 7, window: 60 }
    }

    #[test]
    fn relay_server_is_helpful_for_magic_word() {
        let goal = toy::MagicWordGoal::new("hi");
        let class = toy::caesar_class("hi", 4, false);
        let report = finite_helpfulness(
            &goal,
            &|| Box::new(toy::RelayServer::with_shift(2)) as BoxedServer,
            &class,
            &cfg(),
        );
        assert!(report.helpful);
        assert_eq!(report.witness, Some(2), "compensating index matches shift");
        assert!(report.per_strategy[2].always_succeeded());
        assert_eq!(report.per_strategy[0].successes, 0);
    }

    #[test]
    fn silent_server_is_unhelpful() {
        let goal = toy::MagicWordGoal::new("hi");
        let class = toy::caesar_class("hi", 4, false);
        let report =
            finite_helpfulness(&goal, &|| Box::new(SilentServer) as BoxedServer, &class, &cfg());
        assert!(!report.helpful);
        assert_eq!(report.witness, None);
        assert!(report.per_strategy.iter().all(|s| s.successes == 0));
    }

    #[test]
    fn compact_helpfulness_finds_persistent_witness() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let class = toy::caesar_class("hi", 4, true);
        let report = compact_helpfulness(
            &goal,
            &|| Box::new(toy::RelayServer::with_shift(1)) as BoxedServer,
            &class,
            &cfg(),
        );
        assert!(report.helpful);
        assert_eq!(report.witness, Some(1));
    }

    #[test]
    fn magic_word_goal_is_forgiving() {
        let goal = toy::MagicWordGoal::new("hi");
        let report = finite_forgiving(
            &goal,
            &|| Box::new(toy::SayThrough::new("hi")) as BoxedUser,
            &|| Box::new(toy::RelayServer::default()) as BoxedServer,
            50,
            &cfg(),
        );
        assert!(report.forgiving(), "report: {report:?}");
    }

    #[test]
    fn compact_magic_word_goal_is_forgiving() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let report = compact_forgiving(
            &goal,
            &|| Box::new(toy::SayThrough::persistent("hi")) as BoxedUser,
            &|| Box::new(toy::RelayServer::default()) as BoxedServer,
            50,
            &cfg(),
        );
        assert!(report.forgiving(), "report: {report:?}");
    }

    #[test]
    fn unforgiving_rescue_pair_fails() {
        // A rescue pair that cannot achieve the goal shows up as
        // non-forgiving evidence (the checker is about the pair + goal).
        let goal = toy::MagicWordGoal::new("hi");
        let report = finite_forgiving(
            &goal,
            &|| Box::new(crate::strategy::SilentUser) as BoxedUser,
            &|| Box::new(SilentServer) as BoxedServer,
            50,
            &cfg(),
        );
        assert!(!report.forgiving());
        assert_eq!(report.rescued, 0);
    }

    #[test]
    fn babblers_have_names() {
        assert_eq!(BabblerUser.name(), "babbler-user");
        assert_eq!(BabblerServer.name(), "babbler-server");
    }

    #[test]
    fn trial_config_default_is_sane() {
        let c = TrialConfig::default();
        assert!(c.trials > 0);
        assert!(c.horizon > 0);
        assert!(c.window > 0);
    }
}
