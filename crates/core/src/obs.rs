//! Deterministic observability: spans, events, metrics and JSONL trace
//! export for the execution engine.
//!
//! The paper's central quantities — rounds to success, candidate switches,
//! sensing verdicts, channel fault decisions — are exactly the things a
//! finished transcript cannot show. This module instruments the hot paths
//! (the round loop, the channels, the universal users, the VM cache, the
//! message pool) with a recorder that is:
//!
//! - **Zero-overhead when disabled** (the default). Every emission site is
//!   gated on [`enabled`], one-to-two relaxed atomic loads that predict
//!   perfectly; nothing allocates, locks, or formats. `ci.sh` proves the
//!   E13 steady loop still runs at 0 allocs/iter with this module compiled
//!   in.
//! - **Deterministic when enabled.** Records carry only *logical* values
//!   (round counts, candidate indices) — never wall-clock time — and
//!   [`par_map`](crate::par::par_map) captures each task's records in a
//!   per-task buffer, flushing them in **index order** exactly like its
//!   result merge. The exported stream is therefore bit-identical across
//!   `GOC_THREADS` settings; `ci.sh` byte-diffs two runs to enforce it.
//!
//! # Records and the trace file
//!
//! Setting `GOC_TRACE=path` turns the recorder on and appends JSONL records
//! to `path` (single `write_all` per batch — the same O_APPEND discipline
//! as the bench harness). Four record kinds, flat JSON, fixed key order:
//!
//! ```text
//! {"k":"task","i":3}                     task boundary (par_map index)
//! {"k":"enter","n":"exec.run","v":500}   span start; v = planned horizon
//! {"k":"exit","n":"exec.run","v":212}    span end;   v = rounds executed
//! {"k":"event","n":"universal.spawn","v":7}
//! {"k":"metric","t":"counter","n":"exec.rounds","v":212}
//! ```
//!
//! Names are static identifiers (`[a-z0-9._]`) so no JSON escaping is ever
//! needed; [`parse_line`] is the matching reader used by `goc-trace` and
//! `goc-report --trace-summary`.
//!
//! # Metrics and the determinism boundary
//!
//! The static registry holds [`Counter`]s, [`Gauge`]s and [`Histogram`]s,
//! each classified by [`Scope`]:
//!
//! - [`Scope::Deterministic`] metrics depend only on the workload (rounds
//!   executed, faults applied, candidate switches). Their totals are equal
//!   at any thread count, so [`flush_metrics`] exports them (sorted by
//!   name) into the trace file.
//! - [`Scope::Process`] metrics are true observations of *this process* —
//!   VM cache hits, pool reuse, evictions. Per-thread pools warm
//!   separately and concurrent workers race on cache misses, so these are
//!   **not** thread-count-invariant; they stay out of the trace file and
//!   are read via [`metrics_snapshot`] instead.
//!
//! Tests use [`capture`] to collect records in-memory on the calling
//! thread without touching the environment; buffers are thread-local, so
//! concurrent tests cannot pollute each other's streams.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

// ---------------------------------------------------------------------------
// Enabled state
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Resolved once from `GOC_TRACE`: `STATE_ON` iff the variable names a
/// trace file.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Number of live [`capture`] scopes, process-wide. Non-zero forces
/// [`enabled`] on so tests can record without an environment variable.
static CAPTURES: AtomicUsize = AtomicUsize::new(0);

/// Whether any emission site should record. The disabled fast path is one
/// relaxed load of [`STATE`] plus one of [`CAPTURES`] — no locks, no
/// branches that allocate — which is what keeps the steady loop at zero
/// allocations per iteration with observability compiled in.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => CAPTURES.load(Ordering::Relaxed) > 0,
        _ => init_state(),
    }
}

/// Resolves `GOC_TRACE` exactly once. Racing initializers read the same
/// environment and store the same verdict, so the race is benign.
#[cold]
fn init_state() -> bool {
    let path = match std::env::var("GOC_TRACE") {
        Ok(p) if !p.is_empty() && p != "0" => Some(PathBuf::from(p)),
        _ => None,
    };
    let on = path.is_some();
    if let Some(path) = path {
        let mut sink = lock_sink();
        if matches!(*sink, Sink::Off) {
            *sink = Sink::Unopened(path);
        }
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on || CAPTURES.load(Ordering::Relaxed) > 0
}

// ---------------------------------------------------------------------------
// Records and routing
// ---------------------------------------------------------------------------

/// One observability record. Values are logical quantities (rounds,
/// indices, counts) — never timestamps — which is what makes the stream
/// reproducible across thread counts and machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Record {
    /// Boundary marker: the records that follow (until the next `Task`)
    /// came from `par_map` task `index`. Emitted only for tasks that
    /// recorded something.
    Task {
        /// The task's `par_map` index.
        index: u64,
    },
    /// A span opened (`value` is the span's entry annotation, e.g. the
    /// planned horizon).
    Enter {
        /// Static span name, `[a-z0-9._]`.
        name: &'static str,
        /// Entry annotation.
        value: u64,
    },
    /// A span closed (`value` is the exit annotation, e.g. rounds actually
    /// executed).
    Exit {
        /// Static span name, `[a-z0-9._]`.
        name: &'static str,
        /// Exit annotation.
        value: u64,
    },
    /// A point event.
    Event {
        /// Static event name, `[a-z0-9._]`.
        name: &'static str,
        /// Event annotation (e.g. a candidate index or round).
        value: u64,
    },
}

thread_local! {
    /// The active task buffer, if this thread is inside `task_capture`.
    /// Emissions land here; otherwise they go straight to the file sink.
    static TASK_BUF: RefCell<Option<Vec<Record>>> = const { RefCell::new(None) };
}

/// Routes one record: into the active task buffer if there is one, else to
/// the file sink. Callers have already checked [`enabled`].
fn emit(rec: Record) {
    let routed = TASK_BUF.with(|b| match b.borrow_mut().as_mut() {
        Some(buf) => {
            buf.push(rec);
            true
        }
        None => false,
    });
    if !routed {
        let mut line = render_record(&rec);
        line.push('\n');
        sink_write(&line);
    }
}

/// Emits a point event if recording is enabled. Prefer the
/// [`obs_event!`](crate::obs_event) macro, which hoists the enabled check
/// around argument evaluation.
#[inline]
pub fn event(name: &'static str, value: u64) {
    if enabled() {
        emit(Record::Event { name, value });
    }
}

/// Runs `f` with a fresh task buffer installed on this thread, returning
/// its result and every record it emitted. Nests: records captured here do
/// not leak into an enclosing buffer until [`flush_task`] re-emits them.
pub fn task_capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Record>) {
    struct Restore {
        prev: Option<Option<Vec<Record>>>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                TASK_BUF.with(|b| *b.borrow_mut() = prev);
            }
        }
    }
    let prev = TASK_BUF.with(|b| b.borrow_mut().replace(Vec::new()));
    let mut restore = Restore { prev: Some(prev) };
    let value = f();
    let records = TASK_BUF.with(|b| {
        let mut slot = b.borrow_mut();
        let records = slot.take().unwrap_or_default();
        *slot = restore.prev.take().unwrap_or(None);
        records
    });
    (value, records)
}

/// Re-emits a task's captured records behind a [`Record::Task`] boundary
/// marker. `par_map` calls this in **index order** after its result merge,
/// on both the sequential and parallel paths, so the downstream stream is
/// identical at any thread count. Empty captures are skipped entirely — a
/// task that recorded nothing leaves no marker.
pub fn flush_task(index: u64, records: Vec<Record>) {
    if records.is_empty() {
        return;
    }
    let routed = TASK_BUF.with(|b| match b.borrow_mut().as_mut() {
        Some(buf) => {
            buf.push(Record::Task { index });
            buf.extend(records.iter().copied());
            true
        }
        None => false,
    });
    if routed {
        return;
    }
    let mut payload = render_record(&Record::Task { index });
    payload.push('\n');
    for rec in &records {
        payload.push_str(&render_record(rec));
        payload.push('\n');
    }
    sink_write(&payload);
}

/// Collects every record emitted by `f` (and by `par_map` tasks it spawns)
/// into an in-memory buffer on the calling thread, forcing [`enabled`] on
/// for the duration. The intended consumer is tests: no environment
/// variable, no file, and no cross-test pollution — records from other
/// threads that are not inside their own capture fall through to the file
/// sink (typically absent) instead of this buffer.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Record>) {
    CAPTURES.fetch_add(1, Ordering::SeqCst);
    struct Dec;
    impl Drop for Dec {
        fn drop(&mut self) {
            CAPTURES.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _dec = Dec;
    task_capture(f)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A RAII span: emits [`Record::Enter`] on construction (when enabled) and
/// [`Record::Exit`] on drop, with an exit annotation settable mid-flight.
#[must_use = "a span records its exit when dropped"]
pub struct Span {
    name: &'static str,
    exit: u64,
    armed: bool,
}

/// Opens a span named `name` with entry annotation `enter` (e.g. the
/// planned horizon). When recording is disabled this is two relaxed loads
/// and a trivially-constructed guard.
#[inline]
pub fn span(name: &'static str, enter: u64) -> Span {
    if !enabled() {
        return Span { name, exit: 0, armed: false };
    }
    emit(Record::Enter { name, value: enter });
    Span { name, exit: 0, armed: true }
}

impl Span {
    /// Sets the exit annotation emitted when the span drops (e.g. rounds
    /// actually executed).
    #[inline]
    pub fn set_exit(&mut self, value: u64) {
        self.exit = value;
    }

    /// Whether this span is actually recording.
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            emit(Record::Exit { name: self.name, value: self.exit });
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Determinism classification of a metric (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Workload-determined: totals are equal at any `GOC_THREADS`;
    /// exported to the trace file by [`flush_metrics`].
    Deterministic,
    /// Process-level observation (cache/pool effectiveness): legitimately
    /// varies with scheduling; never exported to the trace file.
    Process,
}

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A high-water gauge: [`Gauge::max`] ratchets upward, [`Gauge::set`]
/// overwrites.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Ratchets the gauge up to at least `v`.
    #[inline]
    pub fn max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket count: bucket `i` holds values whose bit length is
/// `i` (bucket 0 is the value 0), so 65 buckets cover all of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram with exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Index of the bucket `v` falls into (its bit length).
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one observation.
    ///
    /// The sum accumulates *saturating*: once the total reaches `u64::MAX`
    /// it pins there instead of silently wrapping (large recorded values —
    /// fuel totals, byte counts — could otherwise export a nonsense `sum`).
    /// A saturated sum is detectable via [`Histogram::saturated`] and marked
    /// in the JSONL export.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `true` once the sum has saturated at `u64::MAX`. (A genuine sum of
    /// exactly `u64::MAX` also reports saturated — at that magnitude the
    /// distinction is moot and the flag errs on the side of distrust.)
    pub fn saturated(&self) -> bool {
        self.sum() == u64::MAX
    }

    /// Non-empty buckets as `(bucket index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v > 0).then_some((i as u32, v))
            })
            .collect()
    }
}

/// The static registry. Handles are `Box::leak`'d so callsites can cache
/// `&'static` references (see the `obs_count!` macro); metrics live for
/// the process, which is the correct lifetime for a metrics registry.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, (Scope, &'static Counter)>>,
    gauges: Mutex<BTreeMap<&'static str, (Scope, &'static Gauge)>>,
    histograms: Mutex<BTreeMap<&'static str, (Scope, &'static Histogram)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

fn lock_sink() -> std::sync::MutexGuard<'static, Sink> {
    recover(SINK.lock())
}

/// Registers (or fetches) the counter `name`. The first registration fixes
/// the scope; later callers get the existing handle.
pub fn counter(name: &'static str, scope: Scope) -> &'static Counter {
    debug_assert!(name_is_safe(name), "metric name {name:?} must be [a-z0-9._]");
    recover(registry().counters.lock())
        .entry(name)
        .or_insert_with(|| (scope, Box::leak(Box::default())))
        .1
}

/// Registers (or fetches) the gauge `name`.
pub fn gauge(name: &'static str, scope: Scope) -> &'static Gauge {
    debug_assert!(name_is_safe(name), "metric name {name:?} must be [a-z0-9._]");
    recover(registry().gauges.lock())
        .entry(name)
        .or_insert_with(|| (scope, Box::leak(Box::default())))
        .1
}

/// Registers (or fetches) the histogram `name`.
pub fn histogram(name: &'static str, scope: Scope) -> &'static Histogram {
    debug_assert!(name_is_safe(name), "metric name {name:?} must be [a-z0-9._]");
    recover(registry().histograms.lock())
        .entry(name)
        .or_insert_with(|| (scope, Box::leak(Box::new(Histogram::new()))))
        .1
}

fn name_is_safe(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_')
}

/// Flat snapshot of every registered metric in `scope` (or all scopes when
/// `None`), sorted by name. Histograms flatten to `name.count` and
/// `name.sum` entries. Tests diff two snapshots to get per-run deltas;
/// counters and histogram fields are monotone, so deltas are well-defined.
pub fn metrics_snapshot(scope: Option<Scope>) -> Vec<(String, u64)> {
    let keep = |s: Scope| scope.is_none() || scope == Some(s);
    let mut out = Vec::new();
    for (name, &(s, c)) in recover(registry().counters.lock()).iter() {
        if keep(s) {
            out.push((name.to_string(), c.get()));
        }
    }
    for (name, &(s, g)) in recover(registry().gauges.lock()).iter() {
        if keep(s) {
            out.push((name.to_string(), g.get()));
        }
    }
    for (name, &(s, h)) in recover(registry().histograms.lock()).iter() {
        if keep(s) {
            out.push((format!("{name}.count"), h.count()));
            out.push((format!("{name}.sum"), h.sum()));
        }
    }
    out.sort();
    out
}

/// Appends every **deterministic** metric to the trace file as
/// `{"k":"metric",...}` lines, sorted by name. Process-scoped metrics are
/// deliberately excluded so the exported trace stays byte-identical across
/// thread counts. No-op unless `GOC_TRACE` is active.
pub fn flush_metrics() {
    if STATE.load(Ordering::Relaxed) != STATE_ON {
        return;
    }
    let mut lines: Vec<(String, String)> = Vec::new();
    for (name, &(s, c)) in recover(registry().counters.lock()).iter() {
        if s == Scope::Deterministic {
            let v = c.get();
            lines.push((name.to_string(), format!("{{\"k\":\"metric\",\"t\":\"counter\",\"n\":\"{name}\",\"v\":{v}}}\n")));
        }
    }
    for (name, &(s, g)) in recover(registry().gauges.lock()).iter() {
        if s == Scope::Deterministic {
            let v = g.get();
            lines.push((name.to_string(), format!("{{\"k\":\"metric\",\"t\":\"gauge\",\"n\":\"{name}\",\"v\":{v}}}\n")));
        }
    }
    for (name, &(s, h)) in recover(registry().histograms.lock()).iter() {
        if s == Scope::Deterministic {
            // A saturated sum is a measurement failure worth failing loudly
            // on in debug runs; release exports mark the line instead so
            // downstream tooling never mistakes the pinned sum for exact.
            debug_assert!(
                !h.saturated(),
                "histogram {name} sum saturated at u64::MAX — recorded values overflow the export"
            );
            let buckets: Vec<String> =
                h.nonzero_buckets().iter().map(|(i, c)| format!("{i}:{c}")).collect();
            let saturated = if h.saturated() { ",\"saturated\":true" } else { "" };
            lines.push((
                name.to_string(),
                format!(
                    "{{\"k\":\"metric\",\"t\":\"hist\",\"n\":\"{name}\",\"count\":{},\"sum\":{},\"buckets\":\"{}\"{saturated}}}\n",
                    h.count(),
                    h.sum(),
                    buckets.join(",")
                ),
            ));
        }
    }
    lines.sort();
    let payload: String = lines.into_iter().map(|(_, l)| l).collect();
    sink_write(&payload);
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Bumps a [`Scope::Deterministic`] counter. The registry lookup happens
/// once per callsite (cached in a `OnceLock`); the steady-state cost when
/// enabled is one relaxed `fetch_add`.
#[macro_export]
macro_rules! obs_count {
    ($name:literal, $n:expr) => {
        if $crate::obs::enabled() {
            static SLOT: ::std::sync::OnceLock<&'static $crate::obs::Counter> =
                ::std::sync::OnceLock::new();
            SLOT.get_or_init(|| $crate::obs::counter($name, $crate::obs::Scope::Deterministic))
                .add(($n) as u64);
        }
    };
}

/// Bumps a [`Scope::Process`] counter (cache/pool effectiveness — values
/// that legitimately vary with scheduling and stay out of the trace file).
#[macro_export]
macro_rules! obs_count_nd {
    ($name:literal, $n:expr) => {
        if $crate::obs::enabled() {
            static SLOT: ::std::sync::OnceLock<&'static $crate::obs::Counter> =
                ::std::sync::OnceLock::new();
            SLOT.get_or_init(|| $crate::obs::counter($name, $crate::obs::Scope::Process))
                .add(($n) as u64);
        }
    };
}

/// Ratchets a [`Scope::Process`] high-water gauge.
#[macro_export]
macro_rules! obs_gauge_max_nd {
    ($name:literal, $v:expr) => {
        if $crate::obs::enabled() {
            static SLOT: ::std::sync::OnceLock<&'static $crate::obs::Gauge> =
                ::std::sync::OnceLock::new();
            SLOT.get_or_init(|| $crate::obs::gauge($name, $crate::obs::Scope::Process))
                .max(($v) as u64);
        }
    };
}

/// Records into a [`Scope::Deterministic`] histogram.
#[macro_export]
macro_rules! obs_hist {
    ($name:literal, $v:expr) => {
        if $crate::obs::enabled() {
            static SLOT: ::std::sync::OnceLock<&'static $crate::obs::Histogram> =
                ::std::sync::OnceLock::new();
            SLOT.get_or_init(|| $crate::obs::histogram($name, $crate::obs::Scope::Deterministic))
                .record(($v) as u64);
        }
    };
}

/// Emits a point [`Record::Event`]; arguments are not evaluated when
/// recording is disabled.
#[macro_export]
macro_rules! obs_event {
    ($name:literal, $v:expr) => {
        if $crate::obs::enabled() {
            $crate::obs::event($name, ($v) as u64);
        }
    };
}

// ---------------------------------------------------------------------------
// File sink
// ---------------------------------------------------------------------------

enum Sink {
    /// No trace file configured (or it failed to open).
    Off,
    /// `GOC_TRACE` named this path; opened lazily on first write.
    Unopened(PathBuf),
    Open(File),
}

static SINK: Mutex<Sink> = Mutex::new(Sink::Off);

/// Appends `payload` (one or more complete lines) to the trace file with a
/// single `write_all` — the same append discipline as the bench harness,
/// so concurrent appenders interleave whole batches, never partial lines.
fn sink_write(payload: &str) {
    if payload.is_empty() {
        return;
    }
    let mut sink = lock_sink();
    if let Sink::Unopened(path) = &*sink {
        let path = path.clone();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(f) => *sink = Sink::Open(f),
            Err(e) => {
                eprintln!("GOC_TRACE: cannot open {}: {e}", path.display());
                *sink = Sink::Off;
            }
        }
    }
    if let Sink::Open(f) = &mut *sink {
        let _ = f.write_all(payload.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// JSONL render / parse
// ---------------------------------------------------------------------------

/// Renders one record as its flat-JSON trace line (no trailing newline).
pub fn render_record(rec: &Record) -> String {
    match rec {
        Record::Task { index } => format!("{{\"k\":\"task\",\"i\":{index}}}"),
        Record::Enter { name, value } => {
            format!("{{\"k\":\"enter\",\"n\":\"{name}\",\"v\":{value}}}")
        }
        Record::Exit { name, value } => {
            format!("{{\"k\":\"exit\",\"n\":\"{name}\",\"v\":{value}}}")
        }
        Record::Event { name, value } => {
            format!("{{\"k\":\"event\",\"n\":\"{name}\",\"v\":{value}}}")
        }
    }
}

/// A parsed trace line — the owned, reader-side mirror of [`Record`] plus
/// the metric lines [`flush_metrics`] appends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceLine {
    /// `{"k":"task",...}`
    Task {
        /// Task index.
        index: u64,
    },
    /// `{"k":"enter",...}`
    Enter {
        /// Span name.
        name: String,
        /// Entry annotation.
        value: u64,
    },
    /// `{"k":"exit",...}`
    Exit {
        /// Span name.
        name: String,
        /// Exit annotation.
        value: u64,
    },
    /// `{"k":"event",...}`
    Event {
        /// Event name.
        name: String,
        /// Event annotation.
        value: u64,
    },
    /// `{"k":"metric","t":"counter"|"gauge",...}`
    Metric {
        /// Metric name.
        name: String,
        /// `"counter"` or `"gauge"`.
        kind: String,
        /// Exported value.
        value: u64,
    },
    /// `{"k":"metric","t":"hist",...}`
    Hist {
        /// Histogram name.
        name: String,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: u64,
        /// Non-empty `(bucket, count)` pairs.
        buckets: Vec<(u32, u64)>,
        /// `true` when the exporter marked the sum as saturated at
        /// `u64::MAX` (see [`Histogram::saturated`]): the sum is a floor,
        /// not an exact total.
        saturated: bool,
    },
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    // Writer-controlled flat JSON: values contain no escapes or nesting,
    // so a plain scan is exact (same stance as the testkit JSONL parser).
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses one trace line **strictly**; `None` on anything this module didn't
/// write, including histogram lines with any malformed `buckets` pair.
pub fn parse_line(line: &str) -> Option<TraceLine> {
    parse_line_lenient(line).and_then(|(parsed, skipped)| (skipped == 0).then_some(parsed))
}

/// Parses one trace line, tolerating malformed `buckets` pairs in histogram
/// lines: bad pairs are dropped individually and *counted* instead of
/// poisoning the whole metric. Returns the parsed line plus the number of
/// pairs skipped (always 0 for non-histogram lines); `None` for lines this
/// module didn't write at all.
///
/// Trace readers that report coverage (`goc-trace --trace-summary`) use this
/// so corruption is surfaced, never silently absorbed.
pub fn parse_line_lenient(line: &str) -> Option<(TraceLine, usize)> {
    let line = line.trim();
    let parsed = match str_field(line, "k")? {
        "task" => TraceLine::Task { index: u64_field(line, "i")? },
        "enter" => TraceLine::Enter {
            name: str_field(line, "n")?.to_string(),
            value: u64_field(line, "v")?,
        },
        "exit" => TraceLine::Exit {
            name: str_field(line, "n")?.to_string(),
            value: u64_field(line, "v")?,
        },
        "event" => TraceLine::Event {
            name: str_field(line, "n")?.to_string(),
            value: u64_field(line, "v")?,
        },
        "metric" => {
            let name = str_field(line, "n")?.to_string();
            match str_field(line, "t")? {
                "hist" => {
                    let raw = str_field(line, "buckets")?;
                    let mut buckets = Vec::new();
                    let mut skipped = 0usize;
                    for pair in raw.split(',').filter(|p| !p.is_empty()) {
                        match pair
                            .split_once(':')
                            .and_then(|(i, c)| Some((i.parse().ok()?, c.parse().ok()?)))
                        {
                            Some(entry) => buckets.push(entry),
                            None => skipped += 1,
                        }
                    }
                    let hist = TraceLine::Hist {
                        name,
                        count: u64_field(line, "count")?,
                        sum: u64_field(line, "sum")?,
                        buckets,
                        saturated: line.contains("\"saturated\":true"),
                    };
                    return Some((hist, skipped));
                }
                kind @ ("counter" | "gauge") => TraceLine::Metric {
                    name,
                    kind: kind.to_string(),
                    value: u64_field(line, "v")?,
                },
                _ => return None,
            }
        }
        _ => return None,
    };
    Some((parsed, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::{par_map, with_thread_count};

    #[test]
    fn disabled_by_default_outside_captures() {
        // GOC_TRACE is unset under `cargo test` (ci.sh never sets it for
        // test runs), so the recorder must stay off.
        if std::env::var("GOC_TRACE").is_ok() {
            return;
        }
        assert!(!enabled());
        // And emission sites are inert: no panic, no state.
        event("obs.test.inert", 1);
        let mut s = span("obs.test.inert_span", 9);
        assert!(!s.is_armed());
        s.set_exit(3);
    }

    #[test]
    fn capture_records_spans_and_events_in_order() {
        let ((), records) = capture(|| {
            let mut s = span("obs.test.outer", 10);
            event("obs.test.point", 7);
            s.set_exit(42);
        });
        assert_eq!(
            records,
            vec![
                Record::Enter { name: "obs.test.outer", value: 10 },
                Record::Event { name: "obs.test.point", value: 7 },
                Record::Exit { name: "obs.test.outer", value: 42 },
            ]
        );
    }

    #[test]
    fn task_capture_nests_and_restores() {
        let ((), outer) = capture(|| {
            event("obs.test.before", 1);
            let ((), inner) = task_capture(|| event("obs.test.inner", 2));
            assert_eq!(inner, vec![Record::Event { name: "obs.test.inner", value: 2 }]);
            flush_task(5, inner);
            event("obs.test.after", 3);
        });
        assert_eq!(
            outer,
            vec![
                Record::Event { name: "obs.test.before", value: 1 },
                Record::Task { index: 5 },
                Record::Event { name: "obs.test.inner", value: 2 },
                Record::Event { name: "obs.test.after", value: 3 },
            ]
        );
    }

    #[test]
    fn par_map_merges_task_records_in_index_order() {
        let run = |threads: usize| {
            capture(|| {
                with_thread_count(threads, || {
                    par_map(16, |i| {
                        // Uneven work so parallel completion order differs
                        // from index order.
                        for _ in 0..(i % 5) * 200 {
                            std::hint::black_box(i);
                        }
                        event("obs.test.task_event", i as u64);
                        i
                    })
                })
            })
        };
        let (seq_out, seq_records) = run(1);
        let (par_out, par_records) = run(4);
        assert_eq!(seq_out, par_out);
        assert_eq!(seq_records, par_records);
        // One Task marker per task, strictly ascending.
        let tasks: Vec<u64> = seq_records
            .iter()
            .filter_map(|r| match r {
                Record::Task { index } => Some(*index),
                _ => None,
            })
            .collect();
        assert_eq!(tasks, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn silent_tasks_leave_no_marker() {
        let (_, records) = capture(|| {
            with_thread_count(4, || {
                par_map(8, |i| {
                    if i == 3 {
                        event("obs.test.only_three", i as u64);
                    }
                    i
                })
            })
        });
        assert_eq!(
            records,
            vec![
                Record::Task { index: 3 },
                Record::Event { name: "obs.test.only_three", value: 3 },
            ]
        );
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let c = counter("obs.test.counter", Scope::Deterministic);
        let before = c.get();
        c.add(3);
        assert_eq!(c.get(), before + 3);
        // Same name returns the same handle regardless of requested scope.
        assert!(std::ptr::eq(c, counter("obs.test.counter", Scope::Process)));

        let g = gauge("obs.test.gauge", Scope::Process);
        g.set(5);
        g.max(3);
        assert_eq!(g.get(), 5);
        g.max(11);
        assert_eq!(g.get(), 11);

        let h = histogram("obs.test.hist", Scope::Deterministic);
        let (c0, s0) = (h.count(), h.sum());
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count() - c0, 3);
        assert_eq!(h.sum() - s0, 1001);
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(1000), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn snapshot_separates_scopes() {
        counter("obs.test.det_only", Scope::Deterministic).add(1);
        counter("obs.test.nd_only", Scope::Process).add(1);
        let det = metrics_snapshot(Some(Scope::Deterministic));
        let nd = metrics_snapshot(Some(Scope::Process));
        assert!(det.iter().any(|(n, _)| n == "obs.test.det_only"));
        assert!(det.iter().all(|(n, _)| n != "obs.test.nd_only"));
        assert!(nd.iter().any(|(n, _)| n == "obs.test.nd_only"));
        let all = metrics_snapshot(None);
        assert!(all.len() >= det.len() + nd.len());
        // Sorted by name, so snapshots diff positionally.
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn render_parse_roundtrip() {
        let records = [
            Record::Task { index: 12 },
            Record::Enter { name: "exec.run", value: 500 },
            Record::Exit { name: "exec.run", value: 212 },
            Record::Event { name: "universal.spawn", value: 7 },
        ];
        for rec in &records {
            let line = render_record(rec);
            let parsed = parse_line(&line).expect("parses");
            let expected = match rec {
                Record::Task { index } => TraceLine::Task { index: *index },
                Record::Enter { name, value } => {
                    TraceLine::Enter { name: name.to_string(), value: *value }
                }
                Record::Exit { name, value } => {
                    TraceLine::Exit { name: name.to_string(), value: *value }
                }
                Record::Event { name, value } => {
                    TraceLine::Event { name: name.to_string(), value: *value }
                }
            };
            assert_eq!(parsed, expected);
        }
    }

    #[test]
    fn parse_metric_lines() {
        assert_eq!(
            parse_line(r#"{"k":"metric","t":"counter","n":"exec.rounds","v":99}"#),
            Some(TraceLine::Metric {
                name: "exec.rounds".into(),
                kind: "counter".into(),
                value: 99
            })
        );
        assert_eq!(
            parse_line(r#"{"k":"metric","t":"hist","n":"exec.run.rounds","count":2,"sum":30,"buckets":"4:1,5:1"}"#),
            Some(TraceLine::Hist {
                name: "exec.run.rounds".into(),
                count: 2,
                sum: 30,
                buckets: vec![(4, 1), (5, 1)],
                saturated: false,
            })
        );
        assert_eq!(parse_line("not json"), None);
        assert_eq!(parse_line(r#"{"k":"mystery"}"#), None);
    }

    #[test]
    fn parse_hist_saturated_marker() {
        let line = r#"{"k":"metric","t":"hist","n":"h","count":3,"sum":18446744073709551615,"buckets":"64:3","saturated":true}"#;
        match parse_line(line) {
            Some(TraceLine::Hist { sum, saturated, .. }) => {
                assert_eq!(sum, u64::MAX);
                assert!(saturated);
            }
            other => panic!("expected hist, got {other:?}"),
        }
    }

    #[test]
    fn parse_line_lenient_counts_bad_bucket_pairs() {
        let line = r#"{"k":"metric","t":"hist","n":"h","count":5,"sum":50,"buckets":"4:1,garbage,5:2,9:"}"#;
        // Strict parsing rejects the whole line...
        assert_eq!(parse_line(line), None);
        // ...lenient parsing keeps the good pairs and counts the bad ones.
        let (parsed, skipped) = parse_line_lenient(line).expect("line shape is valid");
        assert_eq!(skipped, 2);
        match parsed {
            TraceLine::Hist { buckets, count, sum, .. } => {
                assert_eq!(buckets, vec![(4, 1), (5, 2)]);
                assert_eq!((count, sum), (5, 50));
            }
            other => panic!("expected hist, got {other:?}"),
        }
        // Non-histogram lines always report zero skips.
        let (_, skipped) =
            parse_line_lenient(r#"{"k":"event","n":"e","v":1}"#).expect("valid event");
        assert_eq!(skipped, 0);
        assert_eq!(parse_line_lenient("not json"), None);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = histogram("obs.test.saturating_hist", Scope::Process);
        h.record(u64::MAX - 10);
        assert!(!h.saturated());
        assert_eq!(h.sum(), u64::MAX - 10);
        // One more near-max value would wrap a fetch_add; it must pin.
        h.record(u64::MAX - 3);
        assert!(h.saturated());
        assert_eq!(h.sum(), u64::MAX);
        // Further records stay pinned and keep counting.
        h.record(7);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn macros_compile_and_count_under_capture() {
        let ((), records) = capture(|| {
            crate::obs_count!("obs.test.macro_counter", 2u64);
            crate::obs_count_nd!("obs.test.macro_nd", 1usize);
            crate::obs_hist!("obs.test.macro_hist", 7u64);
            crate::obs_gauge_max_nd!("obs.test.macro_gauge", 9usize);
            crate::obs_event!("obs.test.macro_event", 4u64);
        });
        assert_eq!(records, vec![Record::Event { name: "obs.test.macro_event", value: 4 }]);
        let all = metrics_snapshot(None);
        for name in
            ["obs.test.macro_counter", "obs.test.macro_nd", "obs.test.macro_gauge"]
        {
            assert!(all.iter().any(|(n, v)| n == name && *v > 0), "{name} missing: {all:?}");
        }
        assert!(all.iter().any(|(n, v)| n == "obs.test.macro_hist.sum" && *v >= 7));
    }

    #[test]
    fn capture_is_panic_safe() {
        let before = CAPTURES.load(Ordering::SeqCst);
        let result = std::panic::catch_unwind(|| {
            capture(|| {
                event("obs.test.doomed", 1);
                panic!("boom");
            })
        });
        assert!(result.is_err());
        assert_eq!(CAPTURES.load(Ordering::SeqCst), before);
        // The thread-local buffer was restored: a fresh capture starts empty.
        let ((), records) = capture(|| event("obs.test.fresh", 2));
        assert_eq!(records, vec![Record::Event { name: "obs.test.fresh", value: 2 }]);
    }
}
