//! Messages and per-round channel profiles.
//!
//! The model of the paper is a synchronous system of three parties — *user*,
//! *server* and *world* — pairwise connected by bidirectional channels. At
//! every round each party consumes the profile of messages sent to it in the
//! previous round and emits a profile of outgoing messages.
//!
//! A [`Message`] is an arbitrary finite byte string; the empty message is
//! *silence* (the party said nothing on that channel this round).

use crate::buf::MsgBuf;
use std::fmt;

/// A single message on a channel: an arbitrary finite byte string.
///
/// The empty message denotes silence. `Message` is deliberately unstructured:
/// the whole point of the theory is that parties need not agree on a message
/// format ahead of time.
///
/// Internally the payload is a [`MsgBuf`](crate::buf::MsgBuf): small
/// messages live inline (no heap), large ones spill into a refcounted,
/// pooled buffer. Cloning a message is therefore O(1) and allocation-free —
/// the execution engine passes messages around by cheap copy-on-write
/// handles, and a [`Perfect`](crate::channel::Perfect) channel delivers the
/// identical buffer to the receiver.
///
/// # Examples
///
/// ```
/// use goc_core::msg::Message;
///
/// let m = Message::from_str("PRINT hello");
/// assert!(!m.is_silence());
/// assert_eq!(m.as_bytes(), b"PRINT hello");
/// assert!(Message::silence().is_silence());
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Message(MsgBuf);

impl Message {
    /// Creates the silent (empty) message.
    pub const fn silence() -> Self {
        Message(MsgBuf::empty())
    }

    /// Creates a message by copying raw bytes (into inline storage when they
    /// fit, else into a pooled spill buffer). To *adopt* an owned `Vec`'s
    /// allocation instead, use `Message::from(vec)`.
    pub fn from_bytes(bytes: impl AsRef<[u8]>) -> Self {
        Message(MsgBuf::from_slice(bytes.as_ref()))
    }

    /// Creates a message from a UTF-8 string.
    ///
    /// This is a convenience constructor, not an implementation of the
    /// `FromStr` trait (construction is infallible).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        Message(MsgBuf::from_slice(s.as_bytes()))
    }

    /// Returns `true` if this message is silence (empty).
    pub fn is_silence(&self) -> bool {
        self.0.is_empty()
    }

    /// The message payload as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }

    /// Consumes the message, returning the underlying bytes. Uniquely held
    /// spilled payloads are moved out without copying.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0.into_vec()
    }

    /// The payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the payload is empty (equivalent to
    /// [`is_silence`](Self::is_silence)).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Interprets the payload as UTF-8 text if possible.
    pub fn to_text(&self) -> Option<&str> {
        std::str::from_utf8(self.0.as_slice()).ok()
    }

    /// Address of the heap payload, or `None` for inline payloads. Test
    /// hook for the zero-copy guarantees (buffer identity across a
    /// `Perfect` channel, clone sharing).
    pub fn heap_ptr(&self) -> Option<*const u8> {
        self.0.heap_ptr()
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_silence() {
            return write!(f, "Message(∅)");
        }
        match self.to_text() {
            Some(t) if t.chars().all(|c| !c.is_control()) => {
                write!(f, "Message({t:?})")
            }
            _ => write!(f, "Message(0x{})", hex(self.as_bytes())),
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_silence() {
            return write!(f, "∅");
        }
        match self.to_text() {
            Some(t) if t.chars().all(|c| !c.is_control()) => write!(f, "{t}"),
            _ => write!(f, "0x{}", hex(self.as_bytes())),
        }
    }
}

impl From<Vec<u8>> for Message {
    fn from(v: Vec<u8>) -> Self {
        Message(MsgBuf::from_vec(v))
    }
}

impl From<&[u8]> for Message {
    fn from(v: &[u8]) -> Self {
        Message(MsgBuf::from_slice(v))
    }
}

impl From<&str> for Message {
    fn from(s: &str) -> Self {
        Message::from_str(s)
    }
}

impl From<String> for Message {
    fn from(s: String) -> Self {
        Message(MsgBuf::from_vec(s.into_bytes()))
    }
}

impl AsRef<[u8]> for Message {
    fn as_ref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The profile of messages a **user** receives at the start of a round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UserIn {
    /// Message sent by the server in the previous round.
    pub from_server: Message,
    /// Message sent by the world in the previous round.
    pub from_world: Message,
}

/// The profile of messages a **user** emits at the end of a round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UserOut {
    /// Message to deliver to the server next round.
    pub to_server: Message,
    /// Message to deliver to the world next round.
    pub to_world: Message,
}

/// The profile of messages a **server** receives at the start of a round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerIn {
    /// Message sent by the user in the previous round.
    pub from_user: Message,
    /// Message sent by the world in the previous round.
    pub from_world: Message,
}

/// The profile of messages a **server** emits at the end of a round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerOut {
    /// Message to deliver to the user next round.
    pub to_user: Message,
    /// Message to deliver to the world next round.
    pub to_world: Message,
}

/// The profile of messages the **world** receives at the start of a round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorldIn {
    /// Message sent by the user in the previous round.
    pub from_user: Message,
    /// Message sent by the server in the previous round.
    pub from_server: Message,
}

/// The profile of messages the **world** emits at the end of a round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorldOut {
    /// Message to deliver to the user next round.
    pub to_user: Message,
    /// Message to deliver to the server next round.
    pub to_server: Message,
}

impl UserOut {
    /// A fully silent outgoing profile.
    pub fn silence() -> Self {
        Self::default()
    }

    /// Sends only to the server.
    pub fn to_server(msg: impl Into<Message>) -> Self {
        UserOut { to_server: msg.into(), to_world: Message::silence() }
    }

    /// Sends only to the world.
    pub fn to_world(msg: impl Into<Message>) -> Self {
        UserOut { to_server: Message::silence(), to_world: msg.into() }
    }
}

impl ServerOut {
    /// A fully silent outgoing profile.
    pub fn silence() -> Self {
        Self::default()
    }

    /// Sends only to the user.
    pub fn to_user(msg: impl Into<Message>) -> Self {
        ServerOut { to_user: msg.into(), to_world: Message::silence() }
    }

    /// Sends only to the world.
    pub fn to_world(msg: impl Into<Message>) -> Self {
        ServerOut { to_user: Message::silence(), to_world: msg.into() }
    }
}

impl WorldOut {
    /// A fully silent outgoing profile.
    pub fn silence() -> Self {
        Self::default()
    }

    /// Sends only to the user.
    pub fn to_user(msg: impl Into<Message>) -> Self {
        WorldOut { to_user: msg.into(), to_server: Message::silence() }
    }

    /// Sends only to the server.
    pub fn to_server(msg: impl Into<Message>) -> Self {
        WorldOut { to_user: Message::silence(), to_server: msg.into() }
    }
}

/// One of the three parties of a goal-oriented communication system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// The party whose goal is at stake; operates "on our behalf".
    User,
    /// The party whose assistance the user seeks.
    Server,
    /// The referee's substrate: "the rest of the system" / the environment.
    World,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::User => write!(f, "user"),
            Role::Server => write!(f, "server"),
            Role::World => write!(f, "world"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_is_empty() {
        assert!(Message::silence().is_silence());
        assert!(Message::silence().is_empty());
        assert_eq!(Message::silence().len(), 0);
        assert_eq!(Message::default(), Message::silence());
    }

    #[test]
    fn from_conversions_roundtrip() {
        let m = Message::from("hello");
        assert_eq!(m.to_text(), Some("hello"));
        let m2 = Message::from(m.as_bytes());
        assert_eq!(m, m2);
        let m3: Message = m.clone().into_bytes().into();
        assert_eq!(m, m3);
        let m4 = Message::from(String::from("hello"));
        assert_eq!(m, m4);
    }

    #[test]
    fn debug_shows_text_or_hex() {
        assert_eq!(format!("{:?}", Message::from("ok")), "Message(\"ok\")");
        assert_eq!(format!("{:?}", Message::from_bytes(vec![0u8, 255])), "Message(0x00ff)");
        assert_eq!(format!("{:?}", Message::silence()), "Message(∅)");
    }

    #[test]
    fn display_shows_text_or_hex() {
        assert_eq!(Message::from("ok").to_string(), "ok");
        assert_eq!(Message::from_bytes(vec![1u8, 2]).to_string(), "0x0102");
        assert_eq!(Message::silence().to_string(), "∅");
    }

    #[test]
    fn out_profile_helpers() {
        let u = UserOut::to_server("x");
        assert_eq!(u.to_server, Message::from("x"));
        assert!(u.to_world.is_silence());
        let s = ServerOut::to_world("y");
        assert_eq!(s.to_world, Message::from("y"));
        assert!(s.to_user.is_silence());
        let w = WorldOut::to_user("z");
        assert_eq!(w.to_user, Message::from("z"));
        assert!(w.to_server.is_silence());
        assert_eq!(UserOut::silence(), UserOut::default());
        assert_eq!(ServerOut::silence(), ServerOut::default());
        assert_eq!(WorldOut::silence(), WorldOut::default());
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::User.to_string(), "user");
        assert_eq!(Role::Server.to_string(), "server");
        assert_eq!(Role::World.to_string(), "world");
    }

    #[test]
    fn message_ordering_is_lexicographic() {
        assert!(Message::from_bytes(vec![1]) < Message::from_bytes(vec![1, 0]));
        assert!(Message::from_bytes(vec![1]) < Message::from_bytes(vec![2]));
        assert!(Message::silence() < Message::from_bytes(vec![0]));
    }
}
