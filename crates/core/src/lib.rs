//! # goc-core — A Theory of Goal-Oriented Communication, executable
//!
//! This crate is a faithful, executable rendering of the model and results of
//! *A Theory of Goal-Oriented Communication* (Goldreich, Juba, Sudan;
//! PODC 2011 / ECCC TR09-075). Communication is not an end in itself: a
//! **user** interacts with an adversarially chosen **server** in front of a
//! **world**, and a **referee** judges the sequence of world states. The
//! crate provides
//!
//! - the synchronous three-party system and its execution engine
//!   ([`exec`]),
//! - goals — finite and compact — as world families plus referees
//!   ([`goal`]),
//! - **sensing** with its safety and viability properties ([`sensing`],
//!   [`validate`]),
//! - enumerable user-strategy classes ([`enumeration`]),
//! - and the paper's main theorem as code: **universal user strategies** for
//!   compact and finite goals ([`universal`]).
//!
//! ## Quickstart
//!
//! ```
//! use goc_core::prelude::*;
//! use goc_core::toy;
//!
//! // A toy finite goal: make the world hear the magic word.
//! let goal = toy::MagicWordGoal::new("xyzzy");
//!
//! // An informed user achieves it directly.
//! let mut exec = Execution::new(
//!     goal.spawn_world(&mut GocRng::seed_from_u64(1)),
//!     Box::new(toy::RelayServer::default()),
//!     Box::new(toy::SayThrough::new("xyzzy")),
//!     GocRng::seed_from_u64(1),
//! );
//! let t = exec.run(50);
//! assert!(evaluate_finite(&goal, &t).achieved);
//! ```

pub mod buf;
pub mod channel;
pub mod enumeration;
pub mod exec;
pub mod goal;
pub mod harness;
pub mod helpful;
pub mod msg;
pub mod multi;
pub mod obs;
pub mod par;
pub mod rng;
pub mod score;
pub mod sensing;
pub mod snap;
pub mod strategy;
pub mod trace;
pub mod toy;
pub mod universal;
pub mod validate;
pub mod view;
pub mod wrappers;

/// The most commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::channel::{BoxedChannel, Channel, Fault, FaultSchedule, Perfect, Scheduled};
    pub use crate::enumeration::{
        ChainEnumerator, FnEnumerator, LinearSchedule, SliceEnumerator, StrategyEnumerator,
        TriangularSchedule,
    };
    pub use crate::exec::{Execution, StopReason, Transcript, TranscriptView};
    pub use crate::goal::{
        evaluate_compact, evaluate_compact_view, evaluate_finite, evaluate_finite_view,
        CompactGoal, CompactVerdict, FiniteGoal, FiniteVerdict, Goal, GoalKind, StateOf,
    };
    pub use crate::msg::{
        Message, Role, ServerIn, ServerOut, UserIn, UserOut, WorldIn, WorldOut,
    };
    pub use crate::rng::GocRng;
    pub use crate::sensing::{BoxedSensing, Indication, Sensing, SensingFactory};
    pub use crate::snap::{ForkError, Restore, SnapError, SnapReader, SnapState, SnapWriter, Snapshot};
    pub use crate::strategy::{
        BoxedServer, BoxedUser, Halt, ServerStrategy, StepCtx, UserStrategy, WorldStrategy,
    };
    pub use crate::universal::{CompactUniversalUser, LevinUniversalUser, ResumePolicy};
    pub use crate::view::{UserView, ViewEvent};
}
