//! Monte-Carlo validators for the **safety** and **viability** of sensing.
//!
//! Theorem 1's hypotheses are properties of a sensing function relative to a
//! goal and a class of servers (paper §3):
//!
//! - *Finite safety*: positive indications are obtained only on acceptable
//!   histories. Checked by [`finite_safety`]: replay sensing along sampled
//!   executions and verify the referee accepts at every positive.
//! - *Finite viability*: with each helpful server, **some** strategy in the
//!   class obtains a positive indication. Checked by [`finite_viability`].
//! - *Compact safety*: if the current pairing does not lead to achieving the
//!   goal, negative indications keep arriving (infinitely often — at a
//!   bounded horizon: at least once in the trailing window). Checked by
//!   [`compact_safety`].
//! - *Compact viability*: with a pairing that achieves the goal, only
//!   finitely many negatives occur (none in the trailing window). Checked by
//!   [`compact_viability`].
//!
//! The validators *replay* the sensing function over recorded user views —
//! legitimate because sensing is, by definition, a function of the view.

use crate::enumeration::StrategyEnumerator;
use crate::exec::{Execution, Transcript};
use crate::goal::{evaluate_compact, evaluate_finite, CompactGoal, FiniteGoal, StateOf};
use crate::helpful::TrialConfig;
use crate::rng::GocRng;
use crate::sensing::{Indication, Sensing};
use crate::strategy::{BoxedServer, Halt};

/// A factory for fresh sensing instances.
pub type MakeSensing<'a> = &'a dyn Fn() -> Box<dyn Sensing>;

/// A factory for fresh server instances.
pub type MakeServer<'a> = &'a dyn Fn() -> BoxedServer;

/// One observed violation of a sensing property.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which strategy index was running.
    pub strategy_index: usize,
    /// The trial seed fork in which the violation occurred.
    pub trial: u32,
    /// The round of the offending indication (safety) or the horizon
    /// (viability).
    pub round: u64,
    /// Human-readable description.
    pub detail: String,
}

/// Outcome of a validator run.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Indications (safety) or pairings (viability) checked.
    pub checks: u64,
    /// Violations found (empty = property held on every sample).
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// `true` if no violation was observed.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays `sensing` over a transcript's view, returning each round's
/// indication.
pub fn replay_sensing<S: Clone + std::fmt::Debug>(
    sensing: &mut dyn Sensing,
    transcript: &Transcript<S>,
) -> Vec<Indication> {
    transcript.view.iter().map(|ev| sensing.observe(ev)).collect()
}

/// Validates **finite safety**: for every sampled (strategy, server, seed)
/// and every round at which sensing reports `Positive`, the world history up
/// to that round must be acceptable.
///
/// The referee is consulted with the user's halt verdict if the user had
/// halted by then, else with an empty halt — matching how the Levin user
/// halts on a positive.
pub fn finite_safety<G: FiniteGoal>(
    goal: &G,
    servers: &[MakeServer<'_>],
    class: &dyn StrategyEnumerator,
    sensing: MakeSensing<'_>,
    cfg: &TrialConfig,
) -> ValidationReport {
    let n = class.len().expect("finite_safety requires a finite class");
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for (server_id, make_server) in servers.iter().enumerate() {
        for index in 0..n {
            for trial in 0..cfg.trials {
                let mut rng =
                    GocRng::seed_from_u64(cfg.seed).fork((server_id as u64) << 32 | trial as u64);
                let world = goal.spawn_world(&mut rng);
                let user = class.strategy(index).expect("index in range");
                let mut exec = Execution::new(world, make_server(), user, rng);
                let t = exec.run(cfg.horizon);
                let mut s = sensing();
                for (i, ind) in replay_sensing(&mut *s, &t).into_iter().enumerate() {
                    checks += 1;
                    if ind.is_positive() {
                        // History after round i = states[..= i + 1].
                        let hist = &t.world_states[..(i + 2).min(t.world_states.len())];
                        let halt = t.halt().cloned().unwrap_or_else(Halt::empty);
                        if !goal.accepts(hist, &halt) {
                            violations.push(Violation {
                                strategy_index: index,
                                trial,
                                round: i as u64,
                                detail: format!(
                                    "positive indication on unacceptable history (server #{server_id})"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    ValidationReport { checks, violations }
}

/// Validates **finite viability**: for each server (all assumed helpful),
/// some strategy in the class obtains a positive indication in every trial.
pub fn finite_viability<G: FiniteGoal>(
    goal: &G,
    servers: &[MakeServer<'_>],
    class: &dyn StrategyEnumerator,
    sensing: MakeSensing<'_>,
    cfg: &TrialConfig,
) -> ValidationReport {
    let n = class.len().expect("finite_viability requires a finite class");
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for (server_id, make_server) in servers.iter().enumerate() {
        checks += 1;
        let mut witness = None;
        'search: for index in 0..n {
            for trial in 0..cfg.trials {
                let mut rng =
                    GocRng::seed_from_u64(cfg.seed).fork((server_id as u64) << 32 | trial as u64);
                let world = goal.spawn_world(&mut rng);
                let user = class.strategy(index).expect("index in range");
                let mut exec = Execution::new(world, make_server(), user, rng);
                let t = exec.run(cfg.horizon);
                let mut s = sensing();
                if !replay_sensing(&mut *s, &t).iter().any(|i| i.is_positive()) {
                    continue 'search; // this strategy failed a trial
                }
            }
            witness = Some(index);
            break;
        }
        if witness.is_none() {
            violations.push(Violation {
                strategy_index: usize::MAX,
                trial: 0,
                round: cfg.horizon,
                detail: format!(
                    "no strategy obtained a positive indication with server #{server_id}"
                ),
            });
        }
    }
    ValidationReport { checks, violations }
}

/// Validates **compact safety**: for every sampled pairing whose execution
/// does *not* achieve the goal, negative indications must keep arriving —
/// at least one in the trailing `cfg.window` rounds of the horizon.
pub fn compact_safety<G: CompactGoal>(
    goal: &G,
    servers: &[MakeServer<'_>],
    class: &dyn StrategyEnumerator,
    sensing: MakeSensing<'_>,
    cfg: &TrialConfig,
) -> ValidationReport {
    let n = class.len().expect("compact_safety requires a finite class");
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for (server_id, make_server) in servers.iter().enumerate() {
        for index in 0..n {
            for trial in 0..cfg.trials {
                let mut rng =
                    GocRng::seed_from_u64(cfg.seed).fork((server_id as u64) << 32 | trial as u64);
                let world = goal.spawn_world(&mut rng);
                let user = class.strategy(index).expect("index in range");
                let mut exec = Execution::new(world, make_server(), user, rng);
                let t = exec.run_for(cfg.horizon);
                if evaluate_compact(goal, &t).achieved(cfg.window) {
                    continue; // safety constrains only failing pairings
                }
                checks += 1;
                let mut s = sensing();
                let inds = replay_sensing(&mut *s, &t);
                let tail_start = inds.len().saturating_sub(cfg.window as usize);
                let neg_in_tail = inds[tail_start..].iter().any(|i| i.is_negative());
                if !neg_in_tail {
                    violations.push(Violation {
                        strategy_index: index,
                        trial,
                        round: cfg.horizon,
                        detail: format!(
                            "failing pairing with server #{server_id} produced no negative in the trailing window"
                        ),
                    });
                }
            }
        }
    }
    ValidationReport { checks, violations }
}

/// Validates **compact viability**: for each server, some strategy both
/// achieves the goal and receives no negative indication in the trailing
/// window (its negatives are finite), in every trial.
pub fn compact_viability<G: CompactGoal>(
    goal: &G,
    servers: &[MakeServer<'_>],
    class: &dyn StrategyEnumerator,
    sensing: MakeSensing<'_>,
    cfg: &TrialConfig,
) -> ValidationReport {
    let n = class.len().expect("compact_viability requires a finite class");
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for (server_id, make_server) in servers.iter().enumerate() {
        checks += 1;
        let mut witness = None;
        'search: for index in 0..n {
            for trial in 0..cfg.trials {
                let mut rng =
                    GocRng::seed_from_u64(cfg.seed).fork((server_id as u64) << 32 | trial as u64);
                let world = goal.spawn_world(&mut rng);
                let user = class.strategy(index).expect("index in range");
                let mut exec = Execution::new(world, make_server(), user, rng);
                let t = exec.run_for(cfg.horizon);
                if !evaluate_compact(goal, &t).achieved(cfg.window) {
                    continue 'search;
                }
                let mut s = sensing();
                let inds = replay_sensing(&mut *s, &t);
                let tail_start = inds.len().saturating_sub(cfg.window as usize);
                if inds[tail_start..].iter().any(|i| i.is_negative()) {
                    continue 'search;
                }
            }
            witness = Some(index);
            break;
        }
        if witness.is_none() {
            violations.push(Violation {
                strategy_index: usize::MAX,
                trial: 0,
                round: cfg.horizon,
                detail: format!(
                    "no strategy achieves the goal with eventually-positive sensing against server #{server_id}"
                ),
            });
        }
    }
    ValidationReport { checks, violations }
}

/// Convenience: judge a finite transcript (re-exported for experiment code
/// that wants verdict + sensing replay together).
pub fn finite_achieved<G: FiniteGoal>(goal: &G, t: &Transcript<StateOf<G>>) -> bool {
    evaluate_finite(goal, t).achieved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use crate::sensing::{AlwaysNegative, AlwaysPositive, Deadline};
    use crate::strategy::SilentServer;
    use crate::toy;

    fn cfg() -> TrialConfig {
        TrialConfig { trials: 2, horizon: 300, seed: 3, window: 50 }
    }

    fn relay(shift: u8) -> impl Fn() -> BoxedServer {
        move || Box::new(toy::RelayServer::with_shift(shift)) as BoxedServer
    }

    #[test]
    fn ack_sensing_is_finitely_safe() {
        let goal = toy::MagicWordGoal::new("hi");
        let class = toy::caesar_class("hi", 4, false);
        let r1 = relay(1);
        let silent = || Box::new(SilentServer) as BoxedServer;
        let servers: Vec<MakeServer<'_>> = vec![&r1, &silent];
        let report = finite_safety(
            &goal,
            &servers,
            &class,
            &|| Box::new(toy::ack_sensing()),
            &cfg(),
        );
        assert!(report.holds(), "violations: {:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn always_positive_sensing_is_unsafe() {
        let goal = toy::MagicWordGoal::new("hi");
        let class = toy::caesar_class("hi", 2, false);
        let silent = || Box::new(SilentServer) as BoxedServer;
        let servers: Vec<MakeServer<'_>> = vec![&silent];
        let report =
            finite_safety(&goal, &servers, &class, &|| Box::new(AlwaysPositive), &cfg());
        assert!(!report.holds());
    }

    #[test]
    fn ack_sensing_is_finitely_viable_with_helpful_servers() {
        let goal = toy::MagicWordGoal::new("hi");
        let class = toy::caesar_class("hi", 4, false);
        let r0 = relay(0);
        let r3 = relay(3);
        let servers: Vec<MakeServer<'_>> = vec![&r0, &r3];
        let report = finite_viability(
            &goal,
            &servers,
            &class,
            &|| Box::new(toy::ack_sensing()),
            &cfg(),
        );
        assert!(report.holds(), "violations: {:?}", report.violations);
    }

    #[test]
    fn always_negative_sensing_is_not_viable() {
        let goal = toy::MagicWordGoal::new("hi");
        let class = toy::caesar_class("hi", 4, false);
        let r0 = relay(0);
        let servers: Vec<MakeServer<'_>> = vec![&r0];
        let report =
            finite_viability(&goal, &servers, &class, &|| Box::new(AlwaysNegative), &cfg());
        assert!(!report.holds());
    }

    #[test]
    fn deadline_ack_is_compactly_safe_and_viable() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let class = toy::caesar_class("hi", 4, true);
        let r2 = relay(2);
        let servers: Vec<MakeServer<'_>> = vec![&r2];
        let mk = || Box::new(Deadline::new(toy::ack_sensing(), 8)) as Box<dyn Sensing>;
        let safety = compact_safety(&goal, &servers, &class, &mk, &cfg());
        assert!(safety.holds(), "violations: {:?}", safety.violations);
        let viability = compact_viability(&goal, &servers, &class, &mk, &cfg());
        assert!(viability.holds(), "violations: {:?}", viability.violations);
    }

    #[test]
    fn raw_ack_sensing_is_not_compactly_safe() {
        // Without the Deadline wrapper, failing pairings produce *no*
        // negatives at all — violating compact safety. This is exactly why
        // the universal construction needs negative evidence.
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let class = toy::caesar_class("hi", 4, true);
        let r2 = relay(2);
        let servers: Vec<MakeServer<'_>> = vec![&r2];
        let report = compact_safety(
            &goal,
            &servers,
            &class,
            &|| Box::new(toy::ack_sensing()),
            &cfg(),
        );
        assert!(!report.holds());
    }

    #[test]
    fn replay_matches_online_observation() {
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(5);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::new("hi")),
            rng,
        );
        let t = exec.run(50);
        let mut s = toy::ack_sensing();
        let inds = replay_sensing(&mut s, &t);
        assert_eq!(inds.len(), t.view.len());
        assert!(inds.iter().any(|i| i.is_positive()));
    }

    #[test]
    fn finite_achieved_helper() {
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(6);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::new("hi")),
            rng,
        );
        let t = exec.run(50);
        assert!(finite_achieved(&goal, &t));
    }
}
