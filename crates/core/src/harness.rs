//! One-call experiment helpers: run a (goal, server, user) triple over many
//! seeds and summarize.
//!
//! Most experiment code in this workspace follows the same skeleton — spawn
//! world, build execution, run, evaluate. This module packages that skeleton
//! so downstream experiments are one function call, with the same
//! deterministic seed-forking discipline as [`crate::helpful`] and
//! [`crate::validate`].
//!
//! Trials are independent by construction — each forks its own rng stream
//! from the root seed — so the harness fans them out over [`crate::par`].
//! Results are aggregated in trial order, which makes every report
//! bit-identical to the sequential loop regardless of `GOC_THREADS`.

use crate::exec::Execution;
use crate::goal::{evaluate_compact, evaluate_finite, CompactGoal, FiniteGoal};
use crate::par;
use crate::rng::GocRng;
use crate::strategy::{BoxedServer, BoxedUser};

/// Summary of repeated runs of one pairing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuccessReport {
    /// Trials in which the goal was achieved.
    pub successes: u32,
    /// Trials run.
    pub trials: u32,
    /// Rounds to success per successful trial (finite goals: rounds at
    /// halt; compact goals: settle round).
    pub rounds: Vec<u64>,
}

impl SuccessReport {
    /// Success fraction in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.successes as f64 / self.trials as f64
    }

    /// `true` if every trial succeeded.
    pub fn always(&self) -> bool {
        self.trials > 0 && self.successes == self.trials
    }

    /// Mean rounds-to-success over the successful trials.
    ///
    /// Returns `None` when **no** trial succeeded (`rounds` is empty): a mean
    /// over zero samples is undefined, and returning `Some(0.0)` would make a
    /// total failure look like an instant success.
    pub fn mean_rounds(&self) -> Option<f64> {
        if self.rounds.is_empty() {
            return None;
        }
        Some(self.rounds.iter().sum::<u64>() as f64 / self.rounds.len() as f64)
    }

    /// Maximum rounds-to-success over the successful trials.
    ///
    /// Returns `None` when no trial succeeded, for the same reason as
    /// [`SuccessReport::mean_rounds`].
    pub fn max_rounds(&self) -> Option<u64> {
        self.rounds.iter().max().copied()
    }

    /// 95th-percentile rounds-to-success over the successful trials
    /// (nearest-rank: the smallest recorded value ≥ 95% of the sample), or
    /// `None` when no trial succeeded.
    pub fn p95_rounds(&self) -> Option<u64> {
        if self.rounds.is_empty() {
            return None;
        }
        let mut sorted = self.rounds.clone();
        sorted.sort_unstable();
        let rank = (sorted.len() * 95).div_ceil(100).max(1);
        Some(sorted[rank - 1])
    }
}

/// Runs a finite goal `trials` times with fresh server/user instances and
/// seeds forked from `seed`; reports successes and rounds-to-halt.
///
/// # Examples
///
/// ```
/// use goc_core::harness::finite_success;
/// use goc_core::prelude::*;
/// use goc_core::toy;
///
/// let goal = toy::MagicWordGoal::new("hi");
/// let report = finite_success(
///     &goal,
///     &|| Box::new(toy::RelayServer::with_shift(2)),
///     &|| Box::new(toy::SayThrough::compensating("hi", 2)),
///     8,
///     200,
///     42,
/// );
/// assert!(report.always());
/// ```
pub fn finite_success<G: FiniteGoal + Sync>(
    goal: &G,
    server: &(dyn Fn() -> BoxedServer + Sync),
    user: &(dyn Fn() -> BoxedUser + Sync),
    trials: u32,
    horizon: u64,
    seed: u64,
) -> SuccessReport {
    let outcomes = par::par_map(trials as usize, |trial| {
        let mut span = crate::obs::span("harness.trial", trial as u64);
        let mut rng = GocRng::seed_from_u64(seed).fork(trial as u64);
        let world = goal.spawn_world(&mut rng);
        let mut exec = Execution::new(world, server(), user(), rng);
        let t = exec.run(horizon);
        let v = evaluate_finite(goal, &t);
        span.set_exit(v.rounds);
        (v.achieved, v.rounds)
    });
    collect_report(trials, outcomes)
}

/// Runs a compact goal `trials` times; success = achieved with a
/// stabilization window of `window`; "rounds" records the settle round
/// (last bad prefix).
pub fn compact_success<G: CompactGoal + Sync>(
    goal: &G,
    server: &(dyn Fn() -> BoxedServer + Sync),
    user: &(dyn Fn() -> BoxedUser + Sync),
    trials: u32,
    horizon: u64,
    window: u64,
    seed: u64,
) -> SuccessReport {
    let outcomes = par::par_map(trials as usize, |trial| {
        let mut span = crate::obs::span("harness.trial", trial as u64);
        let mut rng = GocRng::seed_from_u64(seed).fork(trial as u64);
        let world = goal.spawn_world(&mut rng);
        let mut exec = Execution::new(world, server(), user(), rng);
        let t = exec.run_for(horizon);
        let v = evaluate_compact(goal, &t);
        let settle = v.last_bad_prefix.unwrap_or(0);
        span.set_exit(settle);
        (v.achieved(window), settle)
    });
    collect_report(trials, outcomes)
}

/// Folds per-trial `(succeeded, rounds)` outcomes — already in trial order,
/// courtesy of [`par::par_map`] — into a report identical to the one the
/// sequential loop would build.
fn collect_report(trials: u32, outcomes: Vec<(bool, u64)>) -> SuccessReport {
    let mut successes = 0;
    let mut rounds = Vec::new();
    for (achieved, r) in outcomes {
        if achieved {
            successes += 1;
            rounds.push(r);
        }
    }
    SuccessReport { successes, trials, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensing::Deadline;
    use crate::strategy::SilentServer;
    use crate::toy;
    use crate::universal::CompactUniversalUser;

    #[test]
    fn finite_success_counts_and_rounds() {
        let goal = toy::MagicWordGoal::new("hi");
        let report = finite_success(
            &goal,
            &|| Box::new(toy::RelayServer::with_shift(1)),
            &|| Box::new(toy::SayThrough::compensating("hi", 1)),
            5,
            100,
            1,
        );
        assert!(report.always());
        assert_eq!(report.rate(), 1.0);
        assert_eq!(report.rounds.len(), 5);
        assert!(report.mean_rounds().unwrap() < 10.0);
        assert!(report.max_rounds().unwrap() < 10);
    }

    #[test]
    fn finite_failure_is_counted() {
        let goal = toy::MagicWordGoal::new("hi");
        let report = finite_success(
            &goal,
            &|| Box::new(SilentServer),
            &|| Box::new(toy::SayThrough::new("hi")),
            3,
            100,
            2,
        );
        assert_eq!(report.successes, 0);
        assert_eq!(report.rate(), 0.0);
        assert!(!report.always());
        assert!(report.mean_rounds().is_none());
        assert!(report.max_rounds().is_none());
    }

    #[test]
    fn compact_success_reports_settle_rounds() {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let report = compact_success(
            &goal,
            &|| Box::new(toy::RelayServer::with_shift(2)),
            &|| {
                Box::new(CompactUniversalUser::new(
                    Box::new(toy::caesar_class("hi", 4, true)),
                    Box::new(Deadline::new(toy::ack_sensing(), 8)),
                ))
            },
            3,
            3_000,
            300,
            3,
        );
        assert!(report.always(), "{report:?}");
        assert!(report.max_rounds().unwrap() < 2_700);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SuccessReport { successes: 0, trials: 0, rounds: vec![] };
        assert_eq!(r.rate(), 0.0);
        assert!(!r.always());
    }

    #[test]
    fn no_success_statistics_are_none_not_zero() {
        // All-failed reports must not masquerade as instant successes.
        let r = SuccessReport { successes: 0, trials: 7, rounds: vec![] };
        assert_eq!(r.mean_rounds(), None);
        assert_eq!(r.max_rounds(), None);
        assert_eq!(r.p95_rounds(), None);
    }

    #[test]
    fn p95_is_nearest_rank() {
        let r = |rounds: Vec<u64>| SuccessReport {
            successes: rounds.len() as u32,
            trials: rounds.len() as u32,
            rounds,
        };
        assert_eq!(r(vec![42]).p95_rounds(), Some(42));
        // 20 samples: rank ceil(0.95·20) = 19 → second-largest.
        let twenty: Vec<u64> = (1..=20).collect();
        assert_eq!(r(twenty).p95_rounds(), Some(19));
        // Unsorted input is sorted internally.
        assert_eq!(r(vec![9, 1, 5]).p95_rounds(), Some(9));
    }

    #[test]
    fn reports_are_identical_across_thread_counts() {
        let goal = toy::MagicWordGoal::new("hi");
        let run = || {
            finite_success(
                &goal,
                &|| Box::new(toy::RelayServer::with_shift(1)),
                &|| Box::new(toy::SayThrough::compensating("hi", 1)),
                8,
                100,
                11,
            )
        };
        let seq = crate::par::with_thread_count(1, run);
        let par4 = crate::par::with_thread_count(4, run);
        assert_eq!(seq, par4);
    }
}
