//! Quantitative goals: graded achievement instead of a binary referee.
//!
//! The full version of the paper (ECCC TR09-075) considers the *value* or
//! *quality* of goal achievement, not just its possibility. A [`ScoredGoal`]
//! assigns each world history a score in `[0, 1]`; binary referees are the
//! special case {0, 1}. Scores let experiments compare *how well* different
//! users achieve the same goal — e.g. the fraction of transmission
//! challenges delivered in time, or target visits per thousand rounds —
//! which is where the cost of universality (the enumeration prefix) becomes
//! visible even when everyone eventually succeeds.

use crate::exec::Transcript;
use crate::goal::{Goal, StateOf};
use crate::rng::GocRng;
use crate::strategy::{BoxedServer, BoxedUser};

/// A goal with a graded referee.
pub trait ScoredGoal: Goal {
    /// Scores a (finite) world-state history in `[0, 1]`.
    ///
    /// Implementations should be monotone in achievement quality: 0 for a
    /// worthless history, 1 for a perfect one.
    fn score(&self, history: &[StateOf<Self>]) -> f64;
}

/// Scores a transcript under a scored goal.
pub fn evaluate_score<G: ScoredGoal>(goal: &G, transcript: &Transcript<StateOf<G>>) -> f64 {
    goal.score(&transcript.world_states).clamp(0.0, 1.0)
}

/// Mean and worst-case score of a pairing across seeded trials.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreReport {
    /// Per-trial scores.
    pub scores: Vec<f64>,
}

impl ScoreReport {
    /// Mean score (0 if no trials ran).
    pub fn mean(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().sum::<f64>() / self.scores.len() as f64
    }

    /// Minimum score (0 if no trials ran).
    pub fn min(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().cloned().fold(f64::INFINITY, f64::min).clamp(0.0, 1.0)
    }
}

/// Runs `trials` seeded executions of `horizon` rounds and scores each.
///
/// # Examples
///
/// See `tests/quality.rs` and the [`ScoredGoal`] implementations on
/// `goc_goals::transmission::TransmissionGoal` and
/// `goc_goals::navigation::NavigationGoal`.
pub fn score_pairing<G: ScoredGoal>(
    goal: &G,
    server: &dyn Fn() -> BoxedServer,
    user: &dyn Fn() -> BoxedUser,
    trials: u32,
    horizon: u64,
    seed: u64,
) -> ScoreReport {
    let mut scores = Vec::with_capacity(trials as usize);
    for trial in 0..trials {
        let mut rng = GocRng::seed_from_u64(seed).fork(trial as u64);
        let world = goal.spawn_world(&mut rng);
        let mut exec = crate::exec::Execution::new(world, server(), user(), rng);
        let t = exec.run_for(horizon);
        scores.push(evaluate_score(goal, &t));
    }
    ScoreReport { scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::GoalKind;
    use crate::toy::{CompactMagicWordGoal, MagicState};

    /// Graded magic-word goal: score = fraction of window-sized intervals in
    /// which the word was heard.
    impl ScoredGoal for CompactMagicWordGoal {
        fn score(&self, history: &[MagicState]) -> f64 {
            let Some(last) = history.last() else { return 0.0 };
            if last.round == 0 {
                return 0.0;
            }
            // heard_count is cumulative; a pipelined say-every-round user
            // gets the word heard nearly every round.
            (last.heard_count as f64 / last.round as f64).clamp(0.0, 1.0)
        }
    }

    #[test]
    fn informed_user_scores_high_and_silent_user_scores_zero() {
        use crate::toy;
        let goal = CompactMagicWordGoal::new("hi", 16);
        assert_eq!(goal.kind(), GoalKind::Compact);

        let informed = score_pairing(
            &goal,
            &|| Box::new(toy::RelayServer::default()),
            &|| Box::new(toy::SayThrough::persistent("hi")),
            3,
            300,
            1,
        );
        assert!(informed.mean() > 0.8, "informed mean {}", informed.mean());
        assert!(informed.min() > 0.8);

        let silent = score_pairing(
            &goal,
            &|| Box::new(toy::RelayServer::default()),
            &|| Box::new(crate::strategy::SilentUser),
            3,
            300,
            2,
        );
        assert_eq!(silent.mean(), 0.0);
    }

    #[test]
    fn universal_user_pays_a_visible_quality_tax() {
        use crate::sensing::Deadline;
        use crate::toy;
        use crate::universal::CompactUniversalUser;
        let goal = CompactMagicWordGoal::new("hi", 16);
        // Short horizon: the enumeration prefix costs score.
        let universal = score_pairing(
            &goal,
            &|| Box::new(toy::RelayServer::with_shift(6)),
            &|| {
                Box::new(CompactUniversalUser::new(
                    Box::new(toy::caesar_class("hi", 8, true)),
                    Box::new(Deadline::new(toy::ack_sensing(), 8)),
                ))
            },
            3,
            400,
            3,
        );
        let informed = score_pairing(
            &goal,
            &|| Box::new(toy::RelayServer::with_shift(6)),
            &|| Box::new(toy::SayThrough::compensating_persistent("hi", 6)),
            3,
            400,
            3,
        );
        assert!(universal.mean() > 0.0, "universal eventually scores");
        assert!(
            universal.mean() < informed.mean(),
            "enumeration prefix must cost quality: {} vs {}",
            universal.mean(),
            informed.mean()
        );
        // At a long horizon the tax amortizes away.
        let universal_long = score_pairing(
            &goal,
            &|| Box::new(toy::RelayServer::with_shift(6)),
            &|| {
                Box::new(CompactUniversalUser::new(
                    Box::new(toy::caesar_class("hi", 8, true)),
                    Box::new(Deadline::new(toy::ack_sensing(), 8)),
                ))
            },
            3,
            8_000,
            3,
        );
        assert!(
            universal_long.mean() > 0.8,
            "amortized score {}",
            universal_long.mean()
        );
    }

    #[test]
    fn evaluate_score_clamps() {
        let goal = CompactMagicWordGoal::new("hi", 16);
        let t = Transcript {
            world_states: vec![],
            view: crate::view::UserView::new(),
            rounds: 0,
            stop: crate::exec::StopReason::HorizonExhausted,
        };
        assert_eq!(evaluate_score(&goal, &t), 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = ScoreReport { scores: vec![] };
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), 0.0);
    }
}
