//! Serializable execution checkpoints: a versioned, zero-dependency binary
//! snapshot format.
//!
//! [`Execution::fork`](crate::exec::Execution::fork) deep-checkpoints a run
//! *in memory*; this module makes the checkpoint a byte string, so a session
//! can survive a process restart or migrate across shards (ROADMAP item 1).
//! The soundness bar is the same as fork's: a restored execution must be
//! **bit-identical going forward** — same settle round, same `GOC_TRACE`
//! output, same `SuccessReport` as the uninterrupted run.
//!
//! ## Format
//!
//! A snapshot is `magic ‖ version ‖ fields`, little-endian throughout:
//!
//! | field        | encoding                                             |
//! |--------------|------------------------------------------------------|
//! | magic        | the 4 bytes [`SNAP_MAGIC`] (`"GOCS"`)                |
//! | version      | `u16` ([`SNAP_VERSION`]); unknown versions are errors|
//! | integers     | fixed-width little-endian                            |
//! | byte strings | `u64` length prefix + raw bytes                      |
//! | sequences    | `u64` count prefix + elements                        |
//! | options/enums| `u8` tag + payload                                   |
//! | party blocks | `u64` length prefix + nested fields                  |
//!
//! Decoding is **total and adversarial-input-safe**: every read is bounds
//! checked, every declared length is gated against the bytes actually
//! present (so a hostile length field cannot trigger an allocation, let
//! alone an out-of-bounds read), tags must match exactly, and malformed
//! input yields a [`SnapError`] — never a panic. In `goc-serve` these bytes
//! cross a network; the decoder treats them accordingly.
//!
//! ## Restore model
//!
//! Strategies, channels and sensing are trait objects, often closing over
//! code (closures, enumerator factories) that no byte string can rebuild.
//! Restoring therefore works **in place**: the caller reconstructs the
//! execution skeleton with the *same constructors and seed* as the saved
//! run, then [`Execution::restore`](crate::exec::Execution::restore) loads
//! the saved mutable state into the live objects. Each party block is
//! preceded by the party's diagnostic name, which must match the skeleton's
//! — a cheap integrity check that catches configuration mismatches before
//! they corrupt a session.
//!
//! Parties that cannot be checkpointed surface as
//! [`SnapError::Unsupported`], naming the blocking party — the serialized
//! cousin of [`ForkError`], which [`Execution::try_fork`]
//! (crate::exec::Execution::try_fork) reports for in-memory checkpoints.

use crate::msg::{Message, UserIn, UserOut};
use crate::strategy::Halt;
use crate::view::{UserView, ViewEvent};
use std::fmt;

/// The four magic bytes opening every snapshot.
pub const SNAP_MAGIC: [u8; 4] = *b"GOCS";

/// The current snapshot format version. Bump on **any** change to the
/// encoded layout — the golden-vector test in `tests/snap_golden.rs` fails
/// until the bump makes the change intentional.
pub const SNAP_VERSION: u16 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a snapshot could not be produced or decoded.
///
/// Decoding is total: any byte string maps to either a value or one of
/// these, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a fixed-width field.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the field needs.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The input does not start with [`SNAP_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// Version tag found in the input.
        found: u16,
        /// The version this build reads ([`SNAP_VERSION`]).
        supported: u16,
    },
    /// A declared length exceeds the bytes actually present. Gating lengths
    /// against the remaining buffer is what makes hostile snapshots unable
    /// to force allocations.
    LengthOutOfBounds {
        /// What was being read.
        context: &'static str,
        /// The length the input declared.
        declared: u64,
        /// Bytes actually remaining.
        available: usize,
    },
    /// An enum/option/bool tag byte had no meaning.
    BadTag {
        /// What was being read.
        context: &'static str,
        /// The tag byte found.
        found: u8,
    },
    /// The snapshot disagrees with the skeleton it is being restored into
    /// (wrong party name, wrong program bytes, wrong stage count, …).
    Mismatch {
        /// What was being compared.
        context: &'static str,
        /// What the skeleton expected.
        expected: String,
        /// What the snapshot contained.
        found: String,
    },
    /// A field was syntactically valid but semantically impossible
    /// (non-UTF-8 name, length not fitting `usize`, …).
    Malformed {
        /// What was being read.
        context: &'static str,
    },
    /// A party cannot be checkpointed. Produced by `save`, naming the
    /// blocking party, so callers know *which* part of the execution
    /// prevented the snapshot.
    Unsupported {
        /// The party's role ("user", "server", "world", "channel",
        /// "sensing").
        party: &'static str,
        /// The party's diagnostic name.
        name: String,
    },
    /// Decoding finished but input bytes remain — the snapshot is longer
    /// than the format allows.
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
}

impl SnapError {
    /// An [`SnapError::Unsupported`] for the given party.
    pub fn unsupported(party: &'static str, name: impl Into<String>) -> Self {
        SnapError::Unsupported { party, name: name.into() }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { context, need, have } => {
                write!(f, "snapshot truncated reading {context}: need {need} bytes, have {have}")
            }
            SnapError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:02x?}")
            }
            SnapError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported snapshot version {found} (this build reads {supported})")
            }
            SnapError::LengthOutOfBounds { context, declared, available } => write!(
                f,
                "length out of bounds reading {context}: declared {declared}, only {available} bytes available"
            ),
            SnapError::BadTag { context, found } => {
                write!(f, "bad tag byte {found:#04x} reading {context}")
            }
            SnapError::Mismatch { context, expected, found } => write!(
                f,
                "snapshot does not match this execution's {context}: expected {expected:?}, snapshot has {found:?}"
            ),
            SnapError::Malformed { context } => write!(f, "malformed snapshot field: {context}"),
            SnapError::Unsupported { party, name } => {
                write!(f, "checkpoint blocked by {party} {name:?}: it does not support snapshots")
            }
            SnapError::TrailingBytes { remaining } => {
                write!(f, "snapshot has {remaining} trailing bytes after decoding")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Why [`Execution::try_fork`](crate::exec::Execution::try_fork) could not
/// checkpoint a run: one of the parties does not implement `fork`.
///
/// The historical `fork() -> Option<Self>` swallowed this information; the
/// error names the blocking party so callers (and `save`, through
/// [`SnapError::Unsupported`]) can report it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForkError {
    /// The party's role ("user", "server", "up-channel", "down-channel").
    pub party: &'static str,
    /// The party's diagnostic name.
    pub name: String,
}

impl ForkError {
    /// A fork error for the given party.
    pub fn new(party: &'static str, name: impl Into<String>) -> Self {
        ForkError { party, name: name.into() }
    }
}

impl fmt::Display for ForkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint blocked by {} {:?}: it does not support forking", self.party, self.name)
    }
}

impl std::error::Error for ForkError {}

impl From<ForkError> for SnapError {
    fn from(e: ForkError) -> Self {
        // "up-channel"/"down-channel" collapse to the channel role.
        let party = if e.party.ends_with("channel") { "channel" } else { e.party };
        SnapError::Unsupported { party, name: e.name }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends snapshot fields to a byte buffer. Writing is infallible; the
/// `Result` plumbing exists so party hooks that *cannot* snapshot can
/// refuse.
#[derive(Debug)]
pub struct SnapWriter<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> SnapWriter<'a> {
    /// A writer appending to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        SnapWriter { out }
    }

    /// Bytes written so far (including anything already in the buffer).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// `true` if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Writes a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128` as two little-endian `u64` halves (low first).
    pub fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as a strict 0/1 byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes an `f64` by bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.out.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes a length-prefixed nested block: the closure's output is
    /// preceded by its byte length, so readers can skip or sandbox it.
    pub fn block<R>(
        &mut self,
        f: impl FnOnce(&mut SnapWriter<'_>) -> Result<R, SnapError>,
    ) -> Result<R, SnapError> {
        let at = self.out.len();
        self.out.extend_from_slice(&0u64.to_le_bytes());
        let r = f(self)?;
        let len = (self.out.len() - at - 8) as u64;
        self.out[at..at + 8].copy_from_slice(&len.to_le_bytes());
        Ok(r)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Reads snapshot fields from a byte slice. Every read is bounds checked;
/// declared lengths are gated against the bytes actually present.
#[derive(Debug, Clone)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Unconsumed byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { context, need: n, have: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a raw byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, SnapError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `u128` written as two little-endian `u64` halves (low first).
    pub fn u128(&mut self, context: &'static str) -> Result<u128, SnapError> {
        let lo = self.u64(context)? as u128;
        let hi = self.u64(context)? as u128;
        Ok(lo | (hi << 64))
    }

    /// Reads a `u64` that must fit a `usize`.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, SnapError> {
        usize::try_from(self.u64(context)?).map_err(|_| SnapError::Malformed { context })
    }

    /// Reads a strict 0/1 bool byte.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, SnapError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            found => Err(SnapError::BadTag { context, found }),
        }
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a length-prefixed byte string. The declared length is gated
    /// against the remaining input, so hostile lengths fail fast.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapError> {
        let declared = self.u64(context)?;
        if declared > self.remaining() as u64 {
            return Err(SnapError::LengthOutOfBounds {
                context,
                declared,
                available: self.remaining(),
            });
        }
        self.take(declared as usize, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes(context)?).map_err(|_| SnapError::Malformed { context })
    }

    /// Reads a sequence count. The count is gated against the remaining
    /// input (each element encodes to ≥ 1 byte), so a hostile count cannot
    /// drive an unbounded decode loop or allocation.
    pub fn count(&mut self, context: &'static str) -> Result<usize, SnapError> {
        let declared = self.u64(context)?;
        if declared > self.remaining() as u64 {
            return Err(SnapError::LengthOutOfBounds {
                context,
                declared,
                available: self.remaining(),
            });
        }
        Ok(declared as usize)
    }

    /// Reads a length-prefixed nested block as a sandboxed sub-reader: the
    /// block's decoder cannot read past the block, and the parent resumes
    /// right after it.
    pub fn block(&mut self, context: &'static str) -> Result<SnapReader<'a>, SnapError> {
        Ok(SnapReader::new(self.bytes(context)?))
    }

    /// Succeeds only if every byte was consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() > 0 {
            return Err(SnapError::TrailingBytes { remaining: self.remaining() });
        }
        Ok(())
    }
}

/// Writes the snapshot header (magic + version).
pub fn write_header(w: &mut SnapWriter<'_>) {
    w.out.extend_from_slice(&SNAP_MAGIC);
    w.u16(SNAP_VERSION);
}

/// Reads and validates the snapshot header.
pub fn read_header(r: &mut SnapReader<'_>) -> Result<(), SnapError> {
    let magic = r.take(4, "magic")?;
    if magic != SNAP_MAGIC {
        return Err(SnapError::BadMagic { found: [magic[0], magic[1], magic[2], magic[3]] });
    }
    let found = r.u16("version")?;
    if found != SNAP_VERSION {
        return Err(SnapError::UnsupportedVersion { found, supported: SNAP_VERSION });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The trait pair
// ---------------------------------------------------------------------------

/// Serializes a party's mutable state. Implemented by every forkable party:
/// the execution, both universal users, VM machines, channels, sensing.
pub trait Snapshot {
    /// Appends this value's state to `w`.
    fn snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError>;
}

/// Restores state previously written by [`Snapshot::snap`] into a live
/// value built with the *same configuration* (constructors, seed).
pub trait Restore {
    /// Loads state from `r` into `self`.
    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

// ---------------------------------------------------------------------------
// Plain-data state codec
// ---------------------------------------------------------------------------

/// Encode/decode for plain data — the state inside sensing folds, schedule
/// cursors, counters. Unlike [`Snapshot`]/[`Restore`] (in-place, for parties
/// owning unreconstructable code), `SnapState` values decode from bytes
/// alone.
pub trait SnapState: Sized {
    /// Appends this value to `w`.
    fn encode(&self, w: &mut SnapWriter<'_>);
    /// Decodes a value from `r`.
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl SnapState for () {
    fn encode(&self, _w: &mut SnapWriter<'_>) {}
    fn decode(_r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(())
    }
}

impl SnapState for bool {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.bool(*self);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.bool("bool")
    }
}

macro_rules! snap_state_int {
    ($($ty:ty => $wr:ident),* $(,)?) => {$(
        impl SnapState for $ty {
            fn encode(&self, w: &mut SnapWriter<'_>) {
                w.$wr(*self);
            }
            fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$wr(stringify!($ty))
            }
        }
    )*};
}

snap_state_int! {
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    u128 => u128,
    usize => usize,
    f64 => f64,
}

impl SnapState for i64 {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.u64("i64")? as i64)
    }
}

impl SnapState for String {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.str(self);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.str("string")?.to_string())
    }
}

impl<T: SnapState> SnapState for Option<T> {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            found => Err(SnapError::BadTag { context: "option tag", found }),
        }
    }
}

impl<T: SnapState> SnapState for Vec<T> {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.count("vec count")?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: SnapState, B: SnapState> SnapState for (A, B) {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: SnapState, B: SnapState, C: SnapState> SnapState for (A, B, C) {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: SnapState, B: SnapState, C: SnapState, D: SnapState> SnapState for (A, B, C, D) {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

impl<T: SnapState + Default + Copy, const N: usize> SnapState for [T; N] {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(r)?;
        }
        Ok(out)
    }
}

// --------------------------------------------------------- message types ----

impl SnapState for Message {
    /// Spill-aware only in the sense that it is representation-agnostic:
    /// payloads encode as plain length-prefixed bytes, and decoding through
    /// [`Message::from_bytes`] re-establishes inline or pooled-spill storage
    /// by size, exactly as the original construction did.
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.bytes(self.as_bytes());
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Message::from_bytes(r.bytes("message")?))
    }
}

impl SnapState for UserIn {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        self.from_server.encode(w);
        self.from_world.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(UserIn { from_server: Message::decode(r)?, from_world: Message::decode(r)? })
    }
}

impl SnapState for UserOut {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        self.to_server.encode(w);
        self.to_world.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(UserOut { to_server: Message::decode(r)?, to_world: Message::decode(r)? })
    }
}

impl SnapState for Halt {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        self.output.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Halt { output: Message::decode(r)? })
    }
}

impl SnapState for ViewEvent {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u64(self.round);
        self.received.encode(w);
        self.sent.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ViewEvent {
            round: r.u64("view event round")?,
            received: UserIn::decode(r)?,
            sent: UserOut::decode(r)?,
        })
    }
}

impl SnapState for UserView {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        w.u64(self.len() as u64);
        for event in self.events() {
            event.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.count("view count")?;
        let mut view = UserView::new();
        for _ in 0..n {
            view.push(ViewEvent::decode(r)?);
        }
        Ok(view)
    }
}

impl SnapState for crate::rng::GocRng {
    fn encode(&self, w: &mut SnapWriter<'_>) {
        for word in self.state() {
            w.u64(word);
        }
        w.u64(self.seed());
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let state = <[u64; 4]>::decode(r)?;
        let seed = r.u64("rng seed")?;
        Ok(crate::rng::GocRng::from_state(state, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        let mut w = SnapWriter::new(&mut buf);
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.u128((1u128 << 90) | 3);
        w.bool(true);
        w.f64(0.25);
        w.bytes(b"hello");
        w.str("goc");
        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert_eq!(r.u128("e").unwrap(), (1u128 << 90) | 3);
        assert!(r.bool("f").unwrap());
        assert_eq!(r.f64("g").unwrap(), 0.25);
        assert_eq!(r.bytes("h").unwrap(), b"hello");
        assert_eq!(r.str("i").unwrap(), "goc");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = SnapReader::new(&[1, 2]);
        assert!(matches!(r.u64("x"), Err(SnapError::Truncated { need: 8, have: 2, .. })));
    }

    #[test]
    fn hostile_length_is_gated() {
        let mut buf = Vec::new();
        SnapWriter::new(&mut buf).u64(u64::MAX); // declared length
        buf.extend_from_slice(&[0u8; 16]);
        let mut r = SnapReader::new(&buf);
        assert!(matches!(
            r.bytes("payload"),
            Err(SnapError::LengthOutOfBounds { declared: u64::MAX, .. })
        ));
    }

    #[test]
    fn hostile_count_is_gated() {
        let mut buf = Vec::new();
        SnapWriter::new(&mut buf).u64(1 << 60);
        let mut r = SnapReader::new(&buf);
        assert!(matches!(
            Vec::<u64>::decode(&mut r),
            Err(SnapError::LengthOutOfBounds { .. })
        ));
    }

    #[test]
    fn bool_tag_is_strict() {
        let mut r = SnapReader::new(&[2]);
        assert!(matches!(r.bool("flag"), Err(SnapError::BadTag { found: 2, .. })));
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let mut buf = Vec::new();
        write_header(&mut SnapWriter::new(&mut buf));
        let mut r = SnapReader::new(&buf);
        read_header(&mut r).unwrap();
        r.finish().unwrap();

        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_header(&mut SnapReader::new(&bad)),
            Err(SnapError::BadMagic { .. })
        ));

        let mut future = buf.clone();
        future[4] = 0xFF;
        future[5] = 0xFF;
        assert!(matches!(
            read_header(&mut SnapReader::new(&future)),
            Err(SnapError::UnsupportedVersion { found: 0xFFFF, .. })
        ));
    }

    #[test]
    fn blocks_sandbox_their_reader() {
        let mut buf = Vec::new();
        let mut w = SnapWriter::new(&mut buf);
        w.block(|w| {
            w.u64(42);
            Ok(())
        })
        .unwrap();
        w.u64(7);
        let mut r = SnapReader::new(&buf);
        let mut inner = r.block("inner").unwrap();
        assert_eq!(inner.u64("x").unwrap(), 42);
        inner.finish().unwrap();
        // The inner reader cannot cross the block boundary.
        assert!(inner.u8("past end").is_err());
        assert_eq!(r.u64("after block").unwrap(), 7);
        r.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = SnapReader::new(&[0u8; 3]);
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { remaining: 3 }));
    }

    #[test]
    fn compound_state_roundtrips() {
        let value: (Vec<(u64, Option<String>)>, [u64; 4], Message) = (
            vec![(1, None), (2, Some("two".into()))],
            [9, 8, 7, 6],
            Message::from_bytes(b"payload that is long enough to spill the inline buffer"),
        );
        let mut buf = Vec::new();
        value.encode(&mut SnapWriter::new(&mut buf));
        let mut r = SnapReader::new(&buf);
        let back = <(Vec<(u64, Option<String>)>, [u64; 4], Message)>::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn rng_state_roundtrips_mid_stream() {
        let mut rng = crate::rng::GocRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut buf = Vec::new();
        rng.encode(&mut SnapWriter::new(&mut buf));
        let mut r = SnapReader::new(&buf);
        let mut back = crate::rng::GocRng::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.seed(), rng.seed());
        for _ in 0..32 {
            assert_eq!(back.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn fork_error_converts_to_snap_error() {
        let e = ForkError::new("up-channel", "latency(3)");
        assert_eq!(
            SnapError::from(e),
            SnapError::Unsupported { party: "channel", name: "latency(3)".into() }
        );
    }
}
