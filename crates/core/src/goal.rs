//! Goals of communication: world families plus referees.
//!
//! A goal (paper §2) is fixed by (a) the world's **non-deterministic**
//! strategy — here, a family of probabilistic worlds from which
//! [`Goal::spawn_world`] draws one together with an arbitrary start state —
//! and (b) a **referee** predicate on sequences of world states.
//!
//! Two families of goals (paper §3):
//!
//! - **Finite goals** ([`FiniteGoal`]): the user must halt, and the referee
//!   judges the finite history (and the user's output) at that point.
//! - **Compact goals** ([`CompactGoal`]): the system runs forever, and the
//!   execution is successful iff only *finitely many* prefixes of the world
//!   history are unacceptable. At a bounded horizon this limit statement is
//!   approximated by [`CompactVerdict`]: success means the bad prefixes stop
//!   occurring well before the horizon (a *stabilization window*).

use crate::exec::{Transcript, TranscriptView};
use crate::rng::GocRng;
use crate::strategy::{Halt, WorldStrategy};

/// The referee's state snapshot type of a goal's world.
pub type StateOf<G> = <<G as Goal>::World as WorldStrategy>::State;

/// Whether a goal is finite or compact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GoalKind {
    /// The user halts; the referee judges the finite history.
    Finite,
    /// The system runs forever; success iff finitely many bad prefixes.
    Compact,
}

impl std::fmt::Display for GoalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoalKind::Finite => write!(f, "finite"),
            GoalKind::Compact => write!(f, "compact"),
        }
    }
}

/// A goal of communication: a world family and (via the sub-traits) a
/// referee.
///
/// Implementors provide one of [`FiniteGoal`] or [`CompactGoal`] (or both,
/// for goals with natural variants of each kind).
pub trait Goal {
    /// The world strategy type of this goal.
    type World: WorldStrategy;

    /// Performs the world's single non-deterministic choice (paper,
    /// footnote 2) *and* draws an arbitrary start state: the theorems
    /// quantify over executions started from any world/server state.
    fn spawn_world(&self, rng: &mut GocRng) -> Self::World;

    /// Whether this goal is finite or compact.
    fn kind(&self) -> GoalKind;

    /// A short human-readable name for diagnostics.
    fn name(&self) -> String {
        "goal".to_string()
    }
}

/// A finite goal: the referee judges the history when the user halts.
pub trait FiniteGoal: Goal {
    /// Returns `true` if the finite world-state history (initial state
    /// first) together with the user's halting verdict is acceptable.
    fn accepts(&self, history: &[StateOf<Self>], halt: &Halt) -> bool;
}

/// A compact goal: the referee (temporally) judges every prefix.
pub trait CompactGoal: Goal {
    /// Returns `true` if the given prefix of the world-state history is
    /// acceptable. An infinite execution succeeds iff this returns `false`
    /// only finitely often along the history.
    fn prefix_acceptable(&self, prefix: &[StateOf<Self>]) -> bool;
}

/// The outcome of judging a finite-goal transcript.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiniteVerdict {
    /// Did the user halt at all?
    pub halted: bool,
    /// Did the referee accept? (`false` whenever the user never halted —
    /// finite goals require halting.)
    pub achieved: bool,
    /// Rounds executed.
    pub rounds: u64,
}

/// Judges a finite-goal transcript.
///
/// # Examples
///
/// See [`crate::toy`] for a complete worked goal.
pub fn evaluate_finite<G: FiniteGoal>(goal: &G, transcript: &Transcript<StateOf<G>>) -> FiniteVerdict {
    evaluate_finite_view(goal, transcript.as_view())
}

/// [`evaluate_finite`] over a borrowing [`TranscriptView`] — no transcript
/// clone required.
pub fn evaluate_finite_view<G: FiniteGoal>(
    goal: &G,
    transcript: TranscriptView<'_, StateOf<G>>,
) -> FiniteVerdict {
    match transcript.halt() {
        Some(halt) => FiniteVerdict {
            halted: true,
            achieved: goal.accepts(transcript.world_states, halt),
            rounds: transcript.rounds,
        },
        None => FiniteVerdict { halted: false, achieved: false, rounds: transcript.rounds },
    }
}

/// The outcome of judging a compact-goal transcript at a bounded horizon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactVerdict {
    /// Number of unacceptable prefixes observed.
    pub bad_prefixes: u64,
    /// Index (in prefix length) of the last unacceptable prefix, if any.
    pub last_bad_prefix: Option<u64>,
    /// Total number of prefixes judged (= history length).
    pub total_prefixes: u64,
}

impl CompactVerdict {
    /// Bounded-horizon approximation of "finitely many bad prefixes": no
    /// prefix in the final `window` prefixes was unacceptable.
    ///
    /// Larger windows give stricter approximations; experiments should check
    /// achievement is stable as the horizon grows.
    pub fn achieved(&self, window: u64) -> bool {
        match self.last_bad_prefix {
            None => true,
            Some(last) => last + window < self.total_prefixes,
        }
    }

    /// `true` if *no* prefix was unacceptable.
    pub fn flawless(&self) -> bool {
        self.bad_prefixes == 0
    }
}

/// Judges a compact-goal transcript by evaluating the referee on every
/// prefix of the world-state history.
pub fn evaluate_compact<G: CompactGoal>(
    goal: &G,
    transcript: &Transcript<StateOf<G>>,
) -> CompactVerdict {
    evaluate_compact_view(goal, transcript.as_view())
}

/// [`evaluate_compact`] over a borrowing [`TranscriptView`] — no transcript
/// clone required.
pub fn evaluate_compact_view<G: CompactGoal>(
    goal: &G,
    transcript: TranscriptView<'_, StateOf<G>>,
) -> CompactVerdict {
    let mut bad = 0u64;
    let mut last_bad = None;
    let n = transcript.world_states.len();
    for len in 1..=n {
        if !goal.prefix_acceptable(&transcript.world_states[..len]) {
            bad += 1;
            last_bad = Some(len as u64);
        }
    }
    CompactVerdict { bad_prefixes: bad, last_bad_prefix: last_bad, total_prefixes: n as u64 }
}

/// A streaming compact-goal judge: feed world states one at a time and read
/// the verdict at any point, in O(1) memory beyond the growing prefix.
///
/// Equivalent to [`evaluate_compact`] on the same state sequence (asserted
/// by tests); preferable for very long executions where keeping the whole
/// transcript around is wasteful.
#[derive(Debug)]
pub struct CompactMonitor<'a, G: CompactGoal> {
    goal: &'a G,
    prefix: Vec<StateOf<G>>,
    bad: u64,
    last_bad: Option<u64>,
}

impl<'a, G: CompactGoal> CompactMonitor<'a, G> {
    /// A fresh monitor for `goal`.
    pub fn new(goal: &'a G) -> Self {
        CompactMonitor { goal, prefix: Vec::new(), bad: 0, last_bad: None }
    }

    /// Feeds the next world state (in history order).
    pub fn push(&mut self, state: StateOf<G>) {
        self.prefix.push(state);
        if !self.goal.prefix_acceptable(&self.prefix) {
            self.bad += 1;
            self.last_bad = Some(self.prefix.len() as u64);
        }
    }

    /// The verdict over everything fed so far.
    pub fn verdict(&self) -> CompactVerdict {
        CompactVerdict {
            bad_prefixes: self.bad,
            last_bad_prefix: self.last_bad,
            total_prefixes: self.prefix.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::StopReason;
    use crate::msg::Message;
    use crate::view::UserView;

    struct Evens;

    #[derive(Debug)]
    struct DummyWorld;

    impl WorldStrategy for DummyWorld {
        type State = u64;
        fn step(
            &mut self,
            _: &mut crate::strategy::StepCtx<'_>,
            _: &crate::msg::WorldIn,
        ) -> crate::msg::WorldOut {
            crate::msg::WorldOut::silence()
        }
        fn state(&self) -> u64 {
            0
        }
    }

    impl Goal for Evens {
        type World = DummyWorld;
        fn spawn_world(&self, _rng: &mut GocRng) -> DummyWorld {
            DummyWorld
        }
        fn kind(&self) -> GoalKind {
            GoalKind::Compact
        }
    }

    impl CompactGoal for Evens {
        fn prefix_acceptable(&self, prefix: &[u64]) -> bool {
            prefix.last().map(|s| s % 2 == 0).unwrap_or(true)
        }
    }

    impl FiniteGoal for Evens {
        fn accepts(&self, history: &[u64], halt: &Halt) -> bool {
            history.last().map(|s| s % 2 == 0).unwrap_or(false)
                && halt.output == Message::from("even")
        }
    }

    fn transcript(states: Vec<u64>, stop: StopReason) -> Transcript<u64> {
        Transcript { world_states: states, view: UserView::new(), rounds: 0, stop }
    }

    #[test]
    fn compact_counts_bad_prefixes() {
        let t = transcript(vec![0, 1, 2, 3, 4, 4, 4], StopReason::HorizonExhausted);
        let v = evaluate_compact(&Evens, &t);
        assert_eq!(v.bad_prefixes, 2); // prefixes ending in 1 and 3
        assert_eq!(v.last_bad_prefix, Some(4));
        assert_eq!(v.total_prefixes, 7);
        assert!(v.achieved(2));
        assert!(!v.achieved(3));
        assert!(!v.flawless());
    }

    #[test]
    fn compact_flawless_run() {
        let t = transcript(vec![0, 2, 4], StopReason::HorizonExhausted);
        let v = evaluate_compact(&Evens, &t);
        assert!(v.flawless());
        assert!(v.achieved(100));
        assert_eq!(v.last_bad_prefix, None);
    }

    #[test]
    fn finite_requires_halt() {
        let t = transcript(vec![0, 2], StopReason::HorizonExhausted);
        let v = evaluate_finite(&Evens, &t);
        assert!(!v.halted);
        assert!(!v.achieved);
    }

    #[test]
    fn finite_checks_referee_on_halt() {
        let good = transcript(
            vec![0, 2],
            StopReason::UserHalted(Halt::with_output("even")),
        );
        assert!(evaluate_finite(&Evens, &good).achieved);

        let wrong_output =
            transcript(vec![0, 2], StopReason::UserHalted(Halt::with_output("odd")));
        assert!(!evaluate_finite(&Evens, &wrong_output).achieved);

        let wrong_state =
            transcript(vec![0, 3], StopReason::UserHalted(Halt::with_output("even")));
        assert!(!evaluate_finite(&Evens, &wrong_state).achieved);
    }

    #[test]
    fn goal_kind_display() {
        assert_eq!(GoalKind::Finite.to_string(), "finite");
        assert_eq!(GoalKind::Compact.to_string(), "compact");
    }

    #[test]
    fn compact_monitor_matches_batch_evaluation() {
        let states = vec![0u64, 1, 2, 3, 4, 4, 7, 8];
        let t = transcript(states.clone(), StopReason::HorizonExhausted);
        let batch = evaluate_compact(&Evens, &t);
        let mut monitor = CompactMonitor::new(&Evens);
        for s in states {
            monitor.push(s);
        }
        assert_eq!(monitor.verdict(), batch);
    }

    #[test]
    fn compact_monitor_empty_is_vacuously_good() {
        let monitor = CompactMonitor::new(&Evens);
        let v = monitor.verdict();
        assert_eq!(v.total_prefixes, 0);
        assert!(v.flawless());
        assert!(v.achieved(10));
    }
}
