//! Chaos middleware: the `goc_core::channel` fault stacks mounted on the
//! socket path.
//!
//! The daemon treats each inbound frame *body* as a [`Message`] and passes
//! it through a real [`Noisy`] channel before decoding. Applying faults
//! after framing (rather than to the raw byte stream) keeps the stream
//! synchronized — a dropped frame is a skipped request, a corrupted frame
//! is a total-decode failure answered with an `Error` reply — so chaos
//! exercises exactly the hostile-input surface the adversarial decode
//! suite hardens, using the same deterministic fault machinery the
//! conformance sweeps trust.

use goc_core::channel::{Channel, Noisy};
use goc_core::prelude::*;
use goc_core::strategy::StepCtx;

/// Parsed `--chaos drop=P,corrupt=P,seed=N` specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Probability a frame is dropped (request silently skipped).
    pub drop_p: f64,
    /// Probability a surviving frame is corrupted (XOR byte mask).
    pub corrupt_p: f64,
    /// Base seed for the deterministic fault stream.
    pub seed: u64,
}

impl ChaosSpec {
    /// Parses `key=value` pairs separated by commas; keys `drop`,
    /// `corrupt`, `seed`. Missing keys default to 0.
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let mut spec = ChaosSpec { drop_p: 0.0, corrupt_p: 0.0, seed: 0 };
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("chaos: `{part}` is not key=value"))?;
            match key {
                "drop" => {
                    spec.drop_p =
                        value.parse().map_err(|_| format!("chaos: bad drop `{value}`"))?
                }
                "corrupt" => {
                    spec.corrupt_p =
                        value.parse().map_err(|_| format!("chaos: bad corrupt `{value}`"))?
                }
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("chaos: bad seed `{value}`"))?
                }
                other => return Err(format!("chaos: unknown key `{other}`")),
            }
        }
        Ok(spec)
    }
}

/// A per-connection fault stream: one [`Noisy`] channel plus its private
/// rng, forked from the spec seed by connection index so every connection
/// sees an independent but replayable fault schedule.
#[derive(Debug)]
pub struct FrameChaos {
    chan: Noisy,
    rng: GocRng,
    round: u64,
}

impl FrameChaos {
    /// Builds the fault stream for connection `conn_index`.
    pub fn new(spec: &ChaosSpec, conn_index: u64) -> FrameChaos {
        FrameChaos {
            chan: Noisy::new(spec.drop_p, spec.corrupt_p),
            rng: GocRng::seed_from_u64(spec.seed).fork(conn_index),
            round: 0,
        }
    }

    /// Passes one frame body through the channel. `None` means the frame
    /// was dropped; `Some` is the (possibly corrupted) body to decode.
    pub fn apply(&mut self, body: Vec<u8>) -> Option<Vec<u8>> {
        let msg = Message::from_bytes(&body);
        let mut ctx = StepCtx::new(self.round, &mut self.rng);
        self.round += 1;
        let out = self.chan.transmit(&mut ctx, msg);
        if out.is_silence() {
            None
        } else {
            Some(out.as_bytes().to_vec())
        }
    }
}
