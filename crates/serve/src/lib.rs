//! # goc-serve — sessions as a service
//!
//! The paper's model is a user and a server conversing over a channel
//! until the goal is achieved; this crate makes the channel a real socket
//! and the conversation a long-lived **session** hosted by a daemon. Each
//! live session is a suspended [`goc_core::exec::Execution`] — the
//! serializable-checkpoint machinery (`Execution::save`/`restore`,
//! `ResumePolicy::Resume`) means a session can be driven in time slices,
//! snapshotted over the wire, and migrated across daemons.
//!
//! Modules:
//!
//! - [`wire`] — length-prefixed frames with `goc_core::snap`-disciplined
//!   total decode (magic + version handshake, `MAX_FRAME` allocation gate).
//! - [`session`] — the scenario constructors and driving discipline shared
//!   by the CLI, the daemon shards, and the load generator.
//! - [`daemon`] — the shard-per-core host: reader threads dispatch to
//!   shard-owned session tables over real TCP/Unix sockets.
//! - [`chaos`] — `goc_core::channel` fault stacks mounted as middleware on
//!   the inbound frame path.
//! - [`client`] — a blocking, pipelining-friendly protocol client.
//!
//! Binaries: `goc-serve` (the daemon), `goc-load` (the load generator —
//! socket mode drives a daemon, in-process mode produces the reference
//! outcome the socket run must match byte-for-byte).

pub mod chaos;
pub mod client;
pub mod daemon;
pub mod session;
pub mod wire;

pub use chaos::ChaosSpec;
pub use client::Client;
pub use daemon::{start, Addr, DaemonHandle, DaemonOpts};
pub use session::Session;
pub use wire::{Frame, WireError, MAX_FRAME, WIRE_MAGIC, WIRE_VERSION};
