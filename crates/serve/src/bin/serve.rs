//! `goc-serve` — the sharded session daemon.
//!
//! ```text
//! goc-serve --listen tcp:127.0.0.1:4700 [--shards N] [--chaos drop=P,corrupt=P,seed=N] [--quiet]
//! goc-serve --listen unix:/tmp/goc.sock ...
//! ```
//!
//! Prints `listening on <resolved addr>` once the socket is bound (so
//! scripts can wait on it), then serves until a client sends `Shutdown`.

use goc_serve::daemon::{self, Addr, DaemonOpts};
use goc_serve::ChaosSpec;
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "\
usage: goc-serve --listen tcp:HOST:PORT|unix:PATH [--shards N] \
[--chaos drop=P,corrupt=P,seed=N] [--quiet]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |key: &str| -> Option<&str> {
        let flag = format!("--{key}");
        args.iter().position(|a| a == &flag).and_then(|p| args.get(p + 1)).map(String::as_str)
    };
    let Some(listen) = flag("listen") else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let addr = match Addr::parse(listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = DaemonOpts::new(addr);
    if let Some(n) = flag("shards") {
        match n.parse() {
            Ok(n) => opts.shards = n,
            Err(_) => {
                eprintln!("bad --shards `{n}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(spec) = flag("chaos") {
        match ChaosSpec::parse(spec) {
            Ok(c) => opts.chaos = Some(c),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    opts.quiet = args.iter().any(|a| a == "--quiet");
    let quiet = opts.quiet;
    let handle = match daemon::start(opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        println!("listening on {}", handle.addr());
        let _ = std::io::stdout().flush();
    }
    let stats = handle.wait();
    // The daemon's own teardown already drained the worker pool; flush
    // deterministic metric totals for `GOC_TRACE` runs.
    goc_core::obs::flush_metrics();
    if stats.errors > 0 && !quiet {
        eprintln!("goc-serve: exited with {} error replies served", stats.errors);
    }
    ExitCode::SUCCESS
}
