//! `goc-load` — the load generator and differential reference for
//! `goc-serve`.
//!
//! ```text
//! goc-load --mode socket --connect tcp:HOST:PORT|unix:PATH \
//!          --sessions N [--conns C] [--seed S] [--scenario magic|magic-compact|mix] \
//!          [--quantum N] [--horizon N] [--out FILE] [--json FILE] [--shutdown]
//! goc-load --mode inproc  ...same session flags...
//! ```
//!
//! Both modes compute the same deterministic per-session outcome lines
//! (sorted by session id); `--mode socket` earns them by driving a daemon
//! over real sockets in `--quantum`-round slices, `--mode inproc` by
//! running the identical `Session`s in this process. `cmp`-equality of the
//! two `--out` files is the CI gate's proof that the network boundary is
//! observationally inert.
//!
//! Socket mode additionally records one latency sample per `Drive`
//! round-trip and reports p50/p99 plus the failure count as a JSONL
//! record (`--json`), which `goc-report --serve-summary` renders.

use goc_serve::daemon::Addr;
use goc_serve::session::{session_seed, Session};
use goc_serve::wire::Frame;
use goc_serve::Client;
use std::collections::HashMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
usage: goc-load --mode socket|inproc [--connect ADDR] --sessions N [--conns C]
                [--seed S] [--scenario magic|magic-compact|mix]
                [--quantum N] [--horizon N] [--out FILE] [--json FILE] [--shutdown]
";

/// How many requests a connection keeps in flight before reading replies;
/// bounds both client memory and the risk of filling the daemon's socket
/// send buffer while we are not reading.
const PIPELINE_WINDOW: usize = 256;

#[derive(Clone)]
struct Opts {
    mode: String,
    connect: Option<Addr>,
    sessions: u64,
    conns: usize,
    seed: u64,
    scenario: String,
    quantum: u64,
    horizon: u64,
    out: Option<String>,
    json: Option<String>,
    shutdown: bool,
}

fn scenario_for(opts_scenario: &str, id: u64) -> &'static str {
    match opts_scenario {
        "magic" => "magic",
        "magic-compact" => "magic-compact",
        // The mix alternates flavours so both halt disciplines are under
        // load at once.
        _ => {
            if id % 2 == 0 {
                "magic"
            } else {
                "magic-compact"
            }
        }
    }
}

/// What one worker reports back: outcome lines keyed by session id,
/// latency samples (µs), drive count, and failures.
struct WorkerReport {
    lines: Vec<(u64, String)>,
    latencies_us: Vec<u64>,
    drives: u64,
    failures: u64,
}

fn outcome_line(id: u64, scenario: &str, seed: u64, round: u64, halted: bool, heard: u64) -> String {
    format!("session {id} {scenario} seed {seed}: round {round}, halted {halted}, heard {heard}")
}

/// The in-process reference arm: run every session locally to the same
/// horizon/halt discipline the daemon applies.
fn run_inproc_worker(opts: &Opts, ids: Vec<u64>) -> WorkerReport {
    let mut report =
        WorkerReport { lines: Vec::with_capacity(ids.len()), latencies_us: Vec::new(), drives: 0, failures: 0 };
    for id in ids {
        let scenario = scenario_for(&opts.scenario, id);
        let seed = session_seed(opts.seed, id);
        match Session::build(scenario, seed) {
            Some(mut s) => {
                // One step_to is equivalent to the daemon's quantum-sliced
                // drives: the halt check runs every round either way.
                s.step_to(opts.horizon);
                report.lines.push((
                    id,
                    outcome_line(id, scenario, seed, s.round(), s.halted(), s.heard()),
                ));
            }
            None => {
                report.failures += 1;
                report.lines.push((id, format!("session {id}: FAILED to build {scenario}")));
            }
        }
    }
    report
}

/// Tracks one networked session through its sweeps.
struct Live {
    scenario: &'static str,
    seed: u64,
    round: u64,
    halted: bool,
    heard: u64,
    settled: bool,
    failed: bool,
}

/// The socket arm: open every session, then sweep `Drive` quanta over the
/// unsettled ones (pipelined, replies matched by session id) until all
/// settle or fail.
fn run_socket_worker(opts: &Opts, addr: &Addr, ids: Vec<u64>) -> WorkerReport {
    let mut report =
        WorkerReport { lines: Vec::with_capacity(ids.len()), latencies_us: Vec::new(), drives: 0, failures: 0 };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            // The whole worker's sessions fail loudly; cmp + the failure
            // count both catch it.
            for id in ids {
                report.failures += 1;
                report.lines.push((id, format!("session {id}: FAILED to connect: {e}")));
            }
            return report;
        }
    };
    let mut live: HashMap<u64, Live> = ids
        .iter()
        .map(|&id| {
            let scenario = scenario_for(&opts.scenario, id);
            (
                id,
                Live {
                    scenario,
                    seed: session_seed(opts.seed, id),
                    round: 0,
                    halted: false,
                    heard: 0,
                    settled: false,
                    failed: false,
                },
            )
        })
        .collect();

    // Pipelined request/reply pump: `send` closures enqueue, replies are
    // matched by session id whenever the window fills.
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let stop_on_halt = |scenario: &str| scenario == "magic";

    macro_rules! recv_one {
        () => {{
            match client.recv() {
                Ok(Frame::Status { session, round, halted, heard }) => {
                    if let Some(sent) = in_flight.remove(&session) {
                        report
                            .latencies_us
                            .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    if let Some(l) = live.get_mut(&session) {
                        l.round = round;
                        l.halted = halted;
                        l.heard = heard;
                        if round >= opts.horizon || (stop_on_halt(l.scenario) && halted) {
                            l.settled = true;
                        }
                    }
                    true
                }
                Ok(Frame::Error { session, message }) => {
                    in_flight.remove(&session);
                    if let Some(l) = live.get_mut(&session) {
                        if !l.failed {
                            l.failed = true;
                            l.settled = true;
                            report.failures += 1;
                            report
                                .lines
                                .push((session, format!("session {session}: FAILED: {message}")));
                        }
                    }
                    true
                }
                Ok(_) | Err(_) => {
                    // A torn connection fails every outstanding session.
                    for (&id, l) in live.iter_mut() {
                        if !l.settled {
                            l.failed = true;
                            l.settled = true;
                            report.failures += 1;
                            report.lines.push((id, format!("session {id}: FAILED: connection lost")));
                        }
                    }
                    false
                }
            }
        }};
    }

    // Phase 1: open everything (the "concurrent" in concurrent sessions —
    // every session exists in the daemon before any settles).
    let mut ok = true;
    for &id in &ids {
        let l = &live[&id];
        if client
            .send(&Frame::Open { session: id, scenario: l.scenario.to_string(), seed: l.seed })
            .is_err()
        {
            ok = false;
            break;
        }
        in_flight.insert(id, Instant::now());
        if in_flight.len() >= PIPELINE_WINDOW && !recv_one!() {
            ok = false;
            break;
        }
    }
    while ok && !in_flight.is_empty() {
        if !recv_one!() {
            ok = false;
        }
    }

    // Phase 2: sweep drives until everything settles.
    while ok {
        let pending: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|id| live.get(id).map(|l| !l.settled).unwrap_or(false))
            .collect();
        if pending.is_empty() {
            break;
        }
        for id in pending {
            if live[&id].settled {
                continue; // settled by a reply received within this sweep
            }
            // Clamp the final slice so a networked session never overshoots
            // the horizon the in-process reference stops at exactly.
            let rounds = opts.quantum.min(opts.horizon.saturating_sub(live[&id].round)).max(1);
            if client.send(&Frame::Drive { session: id, rounds }).is_err() {
                ok = false;
                break;
            }
            report.drives += 1;
            in_flight.insert(id, Instant::now());
            if in_flight.len() >= PIPELINE_WINDOW && !recv_one!() {
                ok = false;
                break;
            }
        }
        while ok && !in_flight.is_empty() {
            if !recv_one!() {
                ok = false;
            }
        }
    }

    // Phase 3: close and report.
    for &id in &ids {
        let l = &live[&id];
        if !l.failed {
            report
                .lines
                .push((id, outcome_line(id, l.scenario, l.seed, l.round, l.halted, l.heard)));
            let _ = client.close(id);
        }
    }
    report
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |key: &str| -> Option<&str> {
        let flag = format!("--{key}");
        args.iter().position(|a| a == &flag).and_then(|p| args.get(p + 1)).map(String::as_str)
    };
    let num = |key: &str, default: u64| -> u64 {
        flag(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let mode = flag("mode").unwrap_or("socket").to_string();
    if mode != "socket" && mode != "inproc" {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let connect = match flag("connect") {
        Some(a) => match Addr::parse(a) {
            Ok(a) => Some(a),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if mode == "socket" && connect.is_none() {
        eprintln!("--mode socket requires --connect");
        return ExitCode::FAILURE;
    }
    let opts = Opts {
        mode: mode.clone(),
        connect,
        sessions: num("sessions", 100),
        conns: num("conns", 8) as usize,
        seed: num("seed", 42),
        scenario: flag("scenario").unwrap_or("mix").to_string(),
        quantum: num("quantum", 64),
        horizon: num("horizon", 256),
        out: flag("out").map(String::from),
        json: flag("json").map(String::from),
        shutdown: args.iter().any(|a| a == "--shutdown"),
    };

    let started = Instant::now();
    let conns = opts.conns.clamp(1, opts.sessions.max(1) as usize);
    // Contiguous id ranges per worker: deterministic partition, and each
    // session id still lands on its `id % nshards` shard server-side.
    let chunk = opts.sessions.div_ceil(conns as u64);
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(conns);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(conns);
        for w in 0..conns as u64 {
            let lo = w * chunk;
            let hi = (lo + chunk).min(opts.sessions);
            if lo >= hi {
                continue;
            }
            let ids: Vec<u64> = (lo..hi).collect();
            let opts = &opts;
            handles.push(scope.spawn(move || match opts.mode.as_str() {
                "socket" => {
                    run_socket_worker(opts, opts.connect.as_ref().expect("checked above"), ids)
                }
                _ => run_inproc_worker(opts, ids),
            }));
        }
        for h in handles {
            reports.push(h.join().expect("load worker panicked"));
        }
    });
    let wall_ms = started.elapsed().as_millis();

    let mut lines: Vec<(u64, String)> = Vec::with_capacity(opts.sessions as usize);
    let mut latencies: Vec<u64> = Vec::new();
    let mut drives = 0u64;
    let mut failures = 0u64;
    for mut r in reports {
        lines.append(&mut r.lines);
        latencies.append(&mut r.latencies_us);
        drives += r.drives;
        failures += r.failures;
    }
    lines.sort();
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    if let Some(path) = &opts.out {
        let mut body = String::with_capacity(lines.len() * 64);
        for (_, line) in &lines {
            body.push_str(line);
            body.push('\n');
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.json {
        let record = format!(
            "{{\"id\":\"serve_load\",\"mode\":\"{}\",\"scenario\":\"{}\",\"sessions\":{},\
\"conns\":{},\"quantum\":{},\"horizon\":{},\"drives\":{},\"failures\":{},\
\"p50_us\":{},\"p99_us\":{},\"wall_ms\":{}}}\n",
            opts.mode,
            opts.scenario,
            opts.sessions,
            conns,
            opts.quantum,
            opts.horizon,
            drives,
            failures,
            p50,
            p99,
            wall_ms
        );
        // Append, like target/goc-bench.jsonl: one run per line, so a
        // socket arm and its in-process control can share a summary file.
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(record.as_bytes()));
        if let Err(e) = appended {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "goc-load: mode {}, {} sessions, {} drives, {} failures, p50 {} us, p99 {} us, {} ms",
        opts.mode, opts.sessions, drives, failures, p50, p99, wall_ms
    );
    let _ = std::io::stdout().flush();

    if opts.shutdown {
        if let Some(addr) = &opts.connect {
            match Client::connect(addr).and_then(|mut c| c.shutdown()) {
                Ok(()) => {}
                Err(e) => {
                    eprintln!("shutdown failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
