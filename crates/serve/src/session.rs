//! A servable session: one suspended [`Execution`] plus the driving
//! discipline shared by the CLI (`goc snapshot` / `goc resume`), the
//! daemon shards, and the in-process arm of `goc-load`.
//!
//! Restoring a snapshot requires the *same constructors and seed* as the
//! saved run (see [`goc_core::snap`]), so scenarios here are deliberately
//! deterministic functions of `(name, seed)` — and this module is the one
//! place those constructors live: the CLI and the daemon build sessions
//! through the same code, which is what makes the networked settle outcome
//! byte-comparable to the in-process one.

use goc_core::prelude::*;
use goc_core::sensing::Deadline;
use goc_core::toy;

/// Snapshot-capable scenario names, in the order `goc list` shows them.
pub const SCENARIOS: [&str; 2] = ["magic", "magic-compact"];

/// One live session: an [`Execution`] over the toy magic-word world plus
/// the halt discipline its goal flavour implies.
pub struct Session {
    exec: Execution<toy::MagicWorld>,
    stop_on_halt: bool,
    label: String,
}

impl Session {
    /// Builds a session from `(scenario, seed)`; `None` for unknown names.
    ///
    /// `stop_on_halt` is true for finite-goal scenarios (the driver stops
    /// once the user halts) and false for compact ones (the system runs
    /// the full horizon regardless).
    pub fn build(scenario: &str, seed: u64) -> Option<Session> {
        let mut rng = GocRng::seed_from_u64(seed);
        match scenario {
            "magic" => {
                let goal = toy::MagicWordGoal::new("xyzzy");
                let user = LevinUniversalUser::round_robin(
                    Box::new(toy::caesar_class("xyzzy", 16, false)),
                    Box::new(toy::ack_sensing()),
                    8,
                );
                let shift = (rng.below(16)) as u8;
                let exec = Execution::new(
                    goal.spawn_world(&mut rng),
                    Box::new(toy::RelayServer::with_shift(shift)),
                    Box::new(user),
                    rng,
                );
                Some(Session {
                    exec,
                    stop_on_halt: true,
                    label: format!("magic word via Caesar relay (+{shift})"),
                })
            }
            "magic-compact" => {
                let goal = toy::CompactMagicWordGoal::new("xyzzy", 16);
                let user = CompactUniversalUser::new(
                    Box::new(toy::caesar_class("xyzzy", 16, true)),
                    Box::new(Deadline::new(toy::ack_sensing(), 16)),
                );
                let shift = (rng.below(16)) as u8;
                let exec = Execution::new(
                    goal.spawn_world(&mut rng),
                    Box::new(toy::RelayServer::with_shift(shift)),
                    Box::new(user),
                    rng,
                );
                Some(Session {
                    exec,
                    stop_on_halt: false,
                    label: format!("compact magic word via Caesar relay (+{shift})"),
                })
            }
            _ => None,
        }
    }

    /// The scenario's human-readable label (includes the sampled server).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the driver stops at the user's halt (finite goals).
    pub fn stop_on_halt(&self) -> bool {
        self.stop_on_halt
    }

    /// Current round index.
    pub fn round(&self) -> u64 {
        self.exec.round()
    }

    /// Whether the user has halted.
    pub fn halted(&self) -> bool {
        self.exec.user().halted().is_some()
    }

    /// The world's heard-count — the referee-visible outcome signal.
    pub fn heard(&self) -> u64 {
        self.exec.world_states().last().map(|s| s.heard_count).unwrap_or(0)
    }

    /// Steps until round `target` (or the user halts, when
    /// `stop_on_halt`). Driving in quanta composes: `step_to(64)` then
    /// `step_to(128)` settles identically to `step_to(128)` in one call,
    /// because the halt check runs every round either way — this is what
    /// lets the daemon drive sessions in time slices without perturbing
    /// the outcome.
    pub fn step_to(&mut self, target: u64) {
        while self.exec.round() < target {
            if self.stop_on_halt && self.halted() {
                break;
            }
            self.exec.step();
        }
    }

    /// Steps forward by up to `rounds` more rounds and reports the
    /// resulting `(round, halted, heard)` status triple.
    pub fn drive(&mut self, rounds: u64) -> (u64, bool, u64) {
        let target = self.exec.round().saturating_add(rounds);
        self.step_to(target);
        (self.round(), self.halted(), self.heard())
    }

    /// Whether driving to `horizon` has nothing left to do.
    pub fn settled(&self, horizon: u64) -> bool {
        self.round() >= horizon || (self.stop_on_halt && self.halted())
    }

    /// The deterministic end-of-run summary line; byte equality of this
    /// line is what CI's differential gates compare between in-process,
    /// interrupted, and networked runs.
    pub fn outcome_line(&self) -> String {
        format!(
            "{}: round {}, halted {}, heard {}",
            self.label,
            self.round(),
            self.halted(),
            self.heard()
        )
    }

    /// Serializes the session (see [`Execution::save_to_vec`]).
    pub fn save_to_vec(&self) -> Result<Vec<u8>, SnapError> {
        self.exec.save_to_vec()
    }

    /// Restores a checkpoint saved from the same `(scenario, seed)`.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        self.exec.restore(bytes)
    }

    /// The underlying execution, for callers that need the full API.
    pub fn exec(&self) -> &Execution<toy::MagicWorld> {
        &self.exec
    }

    /// Mutable access to the underlying execution.
    pub fn exec_mut(&mut self) -> &mut Execution<toy::MagicWorld> {
        &mut self.exec
    }
}

/// The per-session seed used by `goc-load` and the CI gate: a splitmix64
/// finalizer over `(base, id)` so neighbouring ids land on unrelated
/// server shifts.
pub fn session_seed(base: u64, id: u64) -> u64 {
    let mut z = base ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
