//! A blocking client for the `goc-serve` wire protocol.
//!
//! One [`Client`] is one connection; many sessions can multiplex over it
//! (every request and reply carries its session id). Requests to distinct
//! sessions may be pipelined — send a batch, then collect the replies and
//! match them by id — which is how `goc-load` keeps thousands of sessions
//! in flight over a handful of sockets.

use crate::daemon::{Addr, Stream};
use crate::wire::{self, Frame, WireError};
use std::io::BufReader;

/// A connected, handshaken client.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to `addr` and performs the handshake both ways.
    pub fn connect(addr: &Addr) -> Result<Client, WireError> {
        let stream = Stream::connect(addr)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        wire::write_handshake(&mut writer)?;
        wire::read_handshake(&mut reader)?;
        Ok(Client { reader, writer })
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        wire::write_frame(&mut self.writer, frame)
    }

    /// Receives one frame.
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        wire::read_frame(&mut self.reader)
    }

    /// Sends one frame and waits for one reply (no pipelining).
    pub fn request(&mut self, frame: &Frame) -> Result<Frame, WireError> {
        self.send(frame)?;
        self.recv()
    }

    /// Opens a session; returns its initial `(round, halted, heard)`.
    pub fn open(
        &mut self,
        session: u64,
        scenario: &str,
        seed: u64,
    ) -> Result<(u64, bool, u64), WireError> {
        expect_status(
            session,
            self.request(&Frame::Open { session, scenario: to_owned(scenario), seed })?,
        )
    }

    /// Drives a session and returns the resulting status triple.
    pub fn drive(&mut self, session: u64, rounds: u64) -> Result<(u64, bool, u64), WireError> {
        expect_status(session, self.request(&Frame::Drive { session, rounds })?)
    }

    /// Fetches a session's serialized checkpoint.
    pub fn snap(&mut self, session: u64) -> Result<Vec<u8>, WireError> {
        match self.request(&Frame::Snap { session })? {
            Frame::SnapData { session: s, snap } if s == session => Ok(snap),
            other => Err(unexpected(other)),
        }
    }

    /// Creates a session from a checkpoint saved under `(scenario, seed)`.
    pub fn restore(
        &mut self,
        session: u64,
        scenario: &str,
        seed: u64,
        snap: Vec<u8>,
    ) -> Result<(u64, bool, u64), WireError> {
        expect_status(
            session,
            self.request(&Frame::Restore { session, scenario: to_owned(scenario), seed, snap })?,
        )
    }

    /// Closes a session.
    pub fn close(&mut self, session: u64) -> Result<(), WireError> {
        match self.request(&Frame::Close { session })? {
            Frame::Closed { session: s } if s == session => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down; resolves on its `Bye`.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.request(&Frame::Shutdown)? {
            Frame::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn to_owned(s: &str) -> String {
    s.to_string()
}

fn expect_status(session: u64, frame: Frame) -> Result<(u64, bool, u64), WireError> {
    match frame {
        Frame::Status { session: s, round, halted, heard } if s == session => {
            Ok((round, halted, heard))
        }
        other => Err(unexpected(other)),
    }
}

fn unexpected(frame: Frame) -> WireError {
    WireError::Protocol(match frame {
        Frame::Error { session, message } => format!("server error (session {session}): {message}"),
        other => format!("unexpected reply {other:?}"),
    })
}
