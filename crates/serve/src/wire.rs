//! The `goc-serve` wire format: length-prefixed frames over a byte stream.
//!
//! The framing reuses the [`goc_core::snap`] codec discipline wholesale:
//! a magic + version handshake opens every connection, every frame body is
//! encoded with [`SnapWriter`] and decoded **totally** with [`SnapReader`]
//! (no panic, no over-allocation, every declared length gated against what
//! is actually present), and decode failures are ordinary values — a hostile
//! peer can at worst earn itself an [`Frame::Error`] reply.
//!
//! Stream layout:
//!
//! ```text
//! handshake  := WIRE_MAGIC (4 bytes) ++ WIRE_VERSION (u16 LE)      // both directions
//! frame      := len (u32 LE, 0 < len <= MAX_FRAME) ++ body[len]
//! body       := tag (u8) ++ fields (SnapWriter encoding) — decoded to exhaustion
//! ```
//!
//! The length prefix is checked against [`MAX_FRAME`] *before* any
//! allocation, so a hostile 4 GiB declaration costs the server 4 bytes of
//! reading, not 4 GiB of memory. Because every body is delimited up front,
//! a frame whose *body* fails to decode never desynchronizes the stream:
//! the connection skips to the next length prefix and keeps serving.

use goc_core::snap::{SnapError, SnapReader, SnapWriter};
use std::io::{Read, Write};

/// First bytes of every connection, both directions: `GOCW`.
pub const WIRE_MAGIC: [u8; 4] = *b"GOCW";
/// Wire format version, bumped on any frame layout change.
pub const WIRE_VERSION: u16 = 1;
/// Hard ceiling on a frame body. Larger declared lengths are rejected
/// before allocation. Snapshots of toy sessions are a few KiB; 16 MiB
/// leaves two orders of magnitude of headroom.
pub const MAX_FRAME: usize = 1 << 24;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// A frame body failed its total decode.
    Snap(SnapError),
    /// A length prefix declared more than [`MAX_FRAME`] bytes.
    FrameTooLarge(usize),
    /// The peer's handshake did not start with [`WIRE_MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a wire version we do not.
    UnsupportedVersion(u16),
    /// The peer closed the stream cleanly (EOF at a frame boundary).
    Closed,
    /// The peer answered with something the protocol does not allow here
    /// (an `Error` reply, or a response of the wrong shape).
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Snap(e) => write!(f, "decode: {e}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "declared frame of {n} bytes exceeds the {MAX_FRAME} cap")
            }
            WireError::BadMagic(m) => write!(f, "bad handshake magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e)
        }
    }
}

impl From<SnapError> for WireError {
    fn from(e: SnapError) -> Self {
        WireError::Snap(e)
    }
}

/// One protocol message. Requests flow client→server, responses
/// server→client; every session-scoped frame carries its session id so
/// many sessions can multiplex over one connection (replies are matched
/// by id, not by order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Create session `session` from `(scenario, seed)`.
    Open { session: u64, scenario: String, seed: u64 },
    /// Step session `session` forward by up to `rounds` rounds (stops
    /// early if a finite-goal user halts). Replies with [`Frame::Status`].
    Drive { session: u64, rounds: u64 },
    /// Serialize session `session`; replies with [`Frame::SnapData`].
    Snap { session: u64 },
    /// Recreate session `session` from `(scenario, seed)` and restore the
    /// `snap` checkpoint into it (the snap discipline: same constructors
    /// and seed as the saved run).
    Restore { session: u64, scenario: String, seed: u64, snap: Vec<u8> },
    /// Discard session `session`. Replies with [`Frame::Closed`].
    Close { session: u64 },
    /// Stop the daemon: drain shards, drain the worker pool, exit.
    Shutdown,
    /// The deterministic per-session outcome triple (plus the round).
    Status { session: u64, round: u64, halted: bool, heard: u64 },
    /// A serialized session checkpoint.
    SnapData { session: u64, snap: Vec<u8> },
    /// Acknowledges a [`Frame::Close`].
    Closed { session: u64 },
    /// The request for `session` failed; `message` says why. Session 0 is
    /// used when the failure predates knowing a session id (decode errors).
    Error { session: u64, message: String },
    /// Acknowledges a [`Frame::Shutdown`]; the daemon is going down.
    Bye,
}

const TAG_OPEN: u8 = 1;
const TAG_DRIVE: u8 = 2;
const TAG_SNAP: u8 = 3;
const TAG_RESTORE: u8 = 4;
const TAG_CLOSE: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_STATUS: u8 = 7;
const TAG_SNAPDATA: u8 = 8;
const TAG_CLOSED: u8 = 9;
const TAG_ERROR: u8 = 10;
const TAG_BYE: u8 = 11;

impl Frame {
    /// The session id this frame is scoped to, if any.
    pub fn session(&self) -> Option<u64> {
        match self {
            Frame::Open { session, .. }
            | Frame::Drive { session, .. }
            | Frame::Snap { session }
            | Frame::Restore { session, .. }
            | Frame::Close { session }
            | Frame::Status { session, .. }
            | Frame::SnapData { session, .. }
            | Frame::Closed { session }
            | Frame::Error { session, .. } => Some(*session),
            Frame::Shutdown | Frame::Bye => None,
        }
    }

    /// Encodes this frame's body (tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = SnapWriter::new(&mut out);
        match self {
            Frame::Open { session, scenario, seed } => {
                w.u8(TAG_OPEN);
                w.u64(*session);
                w.str(scenario);
                w.u64(*seed);
            }
            Frame::Drive { session, rounds } => {
                w.u8(TAG_DRIVE);
                w.u64(*session);
                w.u64(*rounds);
            }
            Frame::Snap { session } => {
                w.u8(TAG_SNAP);
                w.u64(*session);
            }
            Frame::Restore { session, scenario, seed, snap } => {
                w.u8(TAG_RESTORE);
                w.u64(*session);
                w.str(scenario);
                w.u64(*seed);
                w.bytes(snap);
            }
            Frame::Close { session } => {
                w.u8(TAG_CLOSE);
                w.u64(*session);
            }
            Frame::Shutdown => w.u8(TAG_SHUTDOWN),
            Frame::Status { session, round, halted, heard } => {
                w.u8(TAG_STATUS);
                w.u64(*session);
                w.u64(*round);
                w.bool(*halted);
                w.u64(*heard);
            }
            Frame::SnapData { session, snap } => {
                w.u8(TAG_SNAPDATA);
                w.u64(*session);
                w.bytes(snap);
            }
            Frame::Closed { session } => {
                w.u8(TAG_CLOSED);
                w.u64(*session);
            }
            Frame::Error { session, message } => {
                w.u8(TAG_ERROR);
                w.u64(*session);
                w.str(message);
            }
            Frame::Bye => w.u8(TAG_BYE),
        }
        out
    }

    /// Decodes a frame body. Total: any byte string returns `Ok` or a
    /// [`WireError`], never panics, and allocates no more than the body's
    /// own length (every `bytes`/`str` read is gated by the reader).
    pub fn decode(body: &[u8]) -> Result<Frame, WireError> {
        let mut r = SnapReader::new(body);
        let tag = r.u8("frame tag")?;
        let frame = match tag {
            TAG_OPEN => Frame::Open {
                session: r.u64("open session")?,
                scenario: r.str("open scenario")?.to_string(),
                seed: r.u64("open seed")?,
            },
            TAG_DRIVE => {
                Frame::Drive { session: r.u64("drive session")?, rounds: r.u64("drive rounds")? }
            }
            TAG_SNAP => Frame::Snap { session: r.u64("snap session")? },
            TAG_RESTORE => Frame::Restore {
                session: r.u64("restore session")?,
                scenario: r.str("restore scenario")?.to_string(),
                seed: r.u64("restore seed")?,
                snap: r.bytes("restore snap")?.to_vec(),
            },
            TAG_CLOSE => Frame::Close { session: r.u64("close session")? },
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_STATUS => Frame::Status {
                session: r.u64("status session")?,
                round: r.u64("status round")?,
                halted: r.bool("status halted")?,
                heard: r.u64("status heard")?,
            },
            TAG_SNAPDATA => Frame::SnapData {
                session: r.u64("snapdata session")?,
                snap: r.bytes("snapdata snap")?.to_vec(),
            },
            TAG_CLOSED => Frame::Closed { session: r.u64("closed session")? },
            TAG_ERROR => Frame::Error {
                session: r.u64("error session")?,
                message: r.str("error message")?.to_string(),
            },
            TAG_BYE => Frame::Bye,
            other => {
                return Err(WireError::Snap(SnapError::BadTag {
                    context: "frame tag",
                    found: other,
                }))
            }
        };
        // Trailing bytes are as much a decode failure as missing ones:
        // a spliced frame must not round-trip as its prefix.
        r.finish()?;
        Ok(frame)
    }
}

/// Sends our side of the handshake.
pub fn write_handshake(w: &mut impl Write) -> Result<(), WireError> {
    let mut buf = [0u8; 6];
    buf[..4].copy_from_slice(&WIRE_MAGIC);
    buf[4..].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Validates the peer's handshake.
pub fn read_handshake(r: &mut impl Read) -> Result<(), WireError> {
    let mut buf = [0u8; 6];
    r.read_exact(&mut buf)?;
    let magic: [u8; 4] = buf[..4].try_into().expect("4-byte slice");
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(buf[4..].try_into().expect("2-byte slice"));
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Reads one raw frame body. The declared length is gated against
/// [`MAX_FRAME`] before any allocation; zero-length frames are rejected
/// (every body carries at least a tag). EOF *between* frames is
/// [`WireError::Closed`]; EOF mid-frame is a real I/O error.
pub fn read_frame_body(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    // Distinguish a clean close (no bytes of the next frame) from a
    // truncated frame (some bytes, then EOF).
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Io(e) // mid-frame EOF is not a clean close
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(body)
}

/// Writes one already-encoded frame body with its length prefix. Prefix
/// and body go out in a single write: one syscall, and no small
/// head-of-frame segment for Nagle's algorithm to hold back.
pub fn write_frame_body(w: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME);
    let len = u32::try_from(body.len()).expect("MAX_FRAME fits in u32");
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(body);
    w.write_all(&framed)?;
    w.flush()?;
    Ok(())
}

/// Encodes and writes one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    write_frame_body(w, &frame.encode())
}

/// Reads and decodes one frame (no chaos middleware in between).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let body = read_frame_body(r)?;
    Frame::decode(&body)
}
