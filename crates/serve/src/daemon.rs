//! The `goc-serve` daemon: a shard-per-core session host over real sockets.
//!
//! ## Shard model
//!
//! Sessions are partitioned by `session_id % nshards`; each shard is one
//! thread owning a `HashMap<u64, Session>` and a work queue. Per-connection
//! reader threads do the blocking socket reads, run the chaos middleware,
//! decode frames totally, and dispatch each request to its shard's queue;
//! shards execute requests in arrival order and write replies through the
//! originating connection's mutex-guarded writer. Because a session id
//! always maps to the same shard, per-session request order is preserved
//! even though many sessions multiplex over one connection — while distinct
//! sessions proceed in parallel across shards.
//!
//! ## Teardown
//!
//! A [`Frame::Shutdown`] (or [`DaemonHandle::stop`]) flips the shutdown
//! flag, wakes the acceptor with a loopback connect, sends every shard a
//! stop marker, joins the shard threads, and then calls
//! [`goc_core::par::pool::drain`] so background jobs the executions queued
//! (prewarm, etc.) complete before the process exits — the lifetime
//! discipline the detached-worker pool used to lack.

use crate::chaos::{ChaosSpec, FrameChaos};
use crate::session::Session;
use crate::wire::{
    self, read_frame_body, write_frame, Frame, WireError,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A listen/connect address: `tcp:HOST:PORT` or `unix:PATH`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// TCP socket address, e.g. `tcp:127.0.0.1:4700` (port 0 binds an
    /// ephemeral port; the resolved address is reported back).
    Tcp(String),
    /// Unix-domain socket path, e.g. `unix:/tmp/goc.sock`.
    Unix(PathBuf),
}

impl Addr {
    /// Parses `tcp:HOST:PORT` / `unix:PATH`.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            Ok(Addr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            Ok(Addr::Unix(PathBuf::from(rest)))
        } else {
            Err(format!("address `{s}` must start with tcp: or unix:"))
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(a) => write!(f, "tcp:{a}"),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected socket of either family.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `addr`. TCP connections disable Nagle's algorithm:
    /// the protocol is small request/reply frames, exactly the traffic
    /// pattern delayed ACKs + Nagle stall by ~40ms per round trip.
    pub fn connect(addr: &Addr) -> std::io::Result<Stream> {
        match addr {
            Addr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Addr::Unix(p) => UnixStream::connect(p).map(Stream::Unix),
        }
    }

    /// An independent handle to the same connection.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true); // see Stream::connect
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// The reply side of one connection: shards on different threads serialize
/// their frame writes through this mutex so replies never interleave
/// mid-frame.
struct ConnWriter {
    stream: Mutex<Stream>,
}

impl ConnWriter {
    fn send(&self, frame: &Frame) -> Result<(), WireError> {
        let mut guard = self.stream.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        write_frame(&mut *guard, frame)
    }
}

/// One unit of shard work: a decoded request plus where to send the reply.
enum ShardMsg {
    Request { conn: Arc<ConnWriter>, frame: Frame },
    Stop,
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonOpts {
    /// Where to listen.
    pub addr: Addr,
    /// Number of session shards (threads). 0 means one per core.
    pub shards: usize,
    /// Optional fault injection on the inbound frame path.
    pub chaos: Option<ChaosSpec>,
    /// Suppress the teardown stats line.
    pub quiet: bool,
}

impl DaemonOpts {
    /// Defaults: one shard per core, no chaos.
    pub fn new(addr: Addr) -> DaemonOpts {
        DaemonOpts { addr, shards: 0, chaos: None, quiet: false }
    }
}

/// Counters reported at teardown. All monotone, so the totals are
/// deterministic for a deterministic client schedule even though the
/// interleaving is not.
#[derive(Debug, Default)]
pub struct Stats {
    /// Sessions opened (Open + Restore).
    pub opened: AtomicU64,
    /// Sessions closed by request.
    pub closed: AtomicU64,
    /// Requests executed by shards.
    pub requests: AtomicU64,
    /// Error replies sent (decode failures + unknown sessions).
    pub errors: AtomicU64,
    /// Frames dropped by the chaos middleware.
    pub chaos_dropped: AtomicU64,
}

impl Stats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            opened: self.opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            chaos_dropped: self.chaos_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`Stats`], returned from [`DaemonHandle::wait`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sessions opened (Open + Restore).
    pub opened: u64,
    /// Sessions closed by request.
    pub closed: u64,
    /// Requests executed by shards.
    pub requests: u64,
    /// Error replies sent.
    pub errors: u64,
    /// Frames dropped by the chaos middleware.
    pub chaos_dropped: u64,
}

/// A running daemon: resolved address plus the join/stop surface.
pub struct DaemonHandle {
    addr: Addr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
    accept_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    shard_txs: Vec<Sender<ShardMsg>>,
    quiet: bool,
}

impl DaemonHandle {
    /// The resolved listen address (ephemeral TCP ports filled in).
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The daemon's counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Requests shutdown from outside a connection (tests, signal
    /// handlers). Idempotent; `wait` still performs the teardown.
    pub fn stop(&self) {
        trigger_shutdown(&self.shutdown, &self.addr);
    }

    /// Blocks until the daemon has shut down, then drains shards and the
    /// background worker pool. Returns the final stats.
    pub fn wait(mut self) -> StatsSnapshot {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The acceptor is down: no new connections, no new shard work from
        // it. Stop markers flush behind any requests already queued.
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg::Stop);
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        // The lifetime fix this daemon forced: background jobs the
        // executions queued (prewarm etc.) either finish or are observed
        // finished before we report done — nothing is lost mid-write.
        goc_core::par::pool::drain();
        if let Addr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
        let stats = self.stats.snapshot();
        if !self.quiet {
            eprintln!(
                "goc-serve: {} opened, {} closed, {} requests, {} errors, {} chaos-dropped",
                stats.opened, stats.closed, stats.requests, stats.errors, stats.chaos_dropped,
            );
        }
        stats
    }
}

/// Wakes a blocking `accept` so the acceptor thread can observe the
/// shutdown flag: flip the flag, then make one throwaway connection.
fn trigger_shutdown(flag: &AtomicBool, addr: &Addr) {
    if flag.swap(true, Ordering::SeqCst) {
        return; // already triggered; the wake-up connect already happened
    }
    let _ = Stream::connect(addr);
}

/// Binds, spawns the shards and the acceptor, and returns immediately.
pub fn start(opts: DaemonOpts) -> std::io::Result<DaemonHandle> {
    let listener = match &opts.addr {
        Addr::Tcp(a) => Listener::Tcp(TcpListener::bind(a)?),
        Addr::Unix(p) => {
            // A stale socket file from a dead daemon would fail the bind.
            let _ = std::fs::remove_file(p);
            Listener::Unix(UnixListener::bind(p)?)
        }
    };
    // Report the *resolved* address so `tcp:127.0.0.1:0` is connectable.
    let addr = match (&opts.addr, &listener) {
        (Addr::Tcp(_), Listener::Tcp(l)) => Addr::Tcp(l.local_addr()?.to_string()),
        _ => opts.addr.clone(),
    };

    let nshards = if opts.shards == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    } else {
        opts.shards
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Stats::default());

    let mut shard_txs = Vec::with_capacity(nshards);
    let mut shard_threads = Vec::with_capacity(nshards);
    for shard_index in 0..nshards {
        let (tx, rx) = channel::<ShardMsg>();
        let stats = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name(format!("goc-shard-{shard_index}"))
            .spawn(move || {
                let mut sessions: HashMap<u64, Session> = HashMap::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ShardMsg::Stop => break,
                        ShardMsg::Request { conn, frame } => {
                            stats.requests.fetch_add(1, Ordering::Relaxed);
                            let reply = handle_request(&mut sessions, frame, &stats);
                            // A peer that vanished mid-reply is its own
                            // problem; the shard keeps serving others.
                            let _ = conn.send(&reply);
                        }
                    }
                }
            })
            .expect("spawn shard thread");
        shard_txs.push(tx);
        shard_threads.push(thread);
    }

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let shard_txs = shard_txs.clone();
        let chaos = opts.chaos;
        let accept_addr = addr.clone();
        Some(
            std::thread::Builder::new()
                .name("goc-accept".to_string())
                .spawn(move || {
                    let mut conn_index = 0u64;
                    loop {
                        let stream = match listener.accept() {
                            Ok(s) => s,
                            Err(_) if shutdown.load(Ordering::SeqCst) => break,
                            Err(_) => continue,
                        };
                        if shutdown.load(Ordering::SeqCst) {
                            break; // the wake-up connect, or a late client
                        }
                        conn_index += 1;
                        let shard_txs = shard_txs.clone();
                        let shutdown = Arc::clone(&shutdown);
                        let stats = Arc::clone(&stats);
                        let chaos = chaos.as_ref().map(|c| FrameChaos::new(c, conn_index));
                        let accept_addr = accept_addr.clone();
                        let _ = std::thread::Builder::new()
                            .name(format!("goc-conn-{conn_index}"))
                            .spawn(move || {
                                serve_connection(
                                    stream, shard_txs, shutdown, accept_addr, stats, chaos,
                                );
                            });
                    }
                })
                .expect("spawn accept thread"),
        )
    };

    Ok(DaemonHandle {
        addr,
        shutdown,
        stats,
        accept_thread,
        shard_threads,
        shard_txs,
        quiet: opts.quiet,
    })
}

/// One connection's read loop: handshake, then frames until EOF, error,
/// or shutdown. Runs on its own thread so a stalled peer never blocks
/// another connection.
fn serve_connection(
    stream: Stream,
    shard_txs: Vec<Sender<ShardMsg>>,
    shutdown: Arc<AtomicBool>,
    accept_addr: Addr,
    stats: Arc<Stats>,
    mut chaos: Option<FrameChaos>,
) {
    let mut reader = stream;
    let writer = match reader.try_clone() {
        Ok(w) => Arc::new(ConnWriter { stream: Mutex::new(w) }),
        Err(_) => return,
    };
    // Handshake both ways before any frame. A peer that opens with the
    // wrong magic or version is cut off before it can spend shard time.
    if wire::write_handshake(&mut *writer.stream.lock().unwrap_or_else(
        std::sync::PoisonError::into_inner,
    ))
    .is_err()
    {
        return;
    }
    if wire::read_handshake(&mut reader).is_err() {
        return;
    }
    loop {
        let body = match read_frame_body(&mut reader) {
            Ok(b) => b,
            Err(WireError::FrameTooLarge(_)) => {
                // The declared length was hostile; the stream position is
                // unrecoverable, so answer and hang up.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = writer.send(&Frame::Error {
                    session: 0,
                    message: "frame exceeds MAX_FRAME".to_string(),
                });
                return;
            }
            Err(_) => return, // clean close or broken socket
        };
        let body = match chaos.as_mut() {
            Some(c) => match c.apply(body) {
                Some(b) => b,
                None => {
                    stats.chaos_dropped.fetch_add(1, Ordering::Relaxed);
                    continue; // the request was "lost in the network"
                }
            },
            None => body,
        };
        // Total decode: hostile bytes produce an Error reply, never a
        // panic, and the framing keeps the stream in sync for the next
        // request.
        let frame = match Frame::decode(&body) {
            Ok(f) => f,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = writer
                    .send(&Frame::Error { session: 0, message: format!("bad frame: {e}") });
                continue;
            }
        };
        match frame {
            Frame::Shutdown => {
                let _ = writer.send(&Frame::Bye);
                trigger_shutdown(&shutdown, &accept_addr);
                return;
            }
            f => {
                let Some(session) = f.session() else {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = writer.send(&Frame::Error {
                        session: 0,
                        message: "unexpected frame direction".to_string(),
                    });
                    continue;
                };
                let shard = (session % shard_txs.len() as u64) as usize;
                if shard_txs[shard]
                    .send(ShardMsg::Request { conn: Arc::clone(&writer), frame: f })
                    .is_err()
                {
                    return; // shards are gone: shutdown won the race
                }
            }
        }
    }
}

/// Executes one decoded request against a shard's session table.
fn handle_request(sessions: &mut HashMap<u64, Session>, frame: Frame, stats: &Stats) -> Frame {
    let err = |session: u64, message: String| {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        Frame::Error { session, message }
    };
    match frame {
        Frame::Open { session, scenario, seed } => match Session::build(&scenario, seed) {
            Some(s) => {
                stats.opened.fetch_add(1, Ordering::Relaxed);
                let status = Frame::Status {
                    session,
                    round: s.round(),
                    halted: s.halted(),
                    heard: s.heard(),
                };
                sessions.insert(session, s);
                status
            }
            None => err(session, format!("unknown scenario `{scenario}`")),
        },
        Frame::Drive { session, rounds } => match sessions.get_mut(&session) {
            Some(s) => {
                let (round, halted, heard) = s.drive(rounds);
                Frame::Status { session, round, halted, heard }
            }
            None => err(session, "no such session".to_string()),
        },
        Frame::Snap { session } => match sessions.get(&session) {
            Some(s) => match s.save_to_vec() {
                Ok(snap) => Frame::SnapData { session, snap },
                Err(e) => err(session, format!("snapshot failed: {e}")),
            },
            None => err(session, "no such session".to_string()),
        },
        Frame::Restore { session, scenario, seed, snap } => {
            match Session::build(&scenario, seed) {
                Some(mut s) => match s.restore(&snap) {
                    Ok(()) => {
                        stats.opened.fetch_add(1, Ordering::Relaxed);
                        let status = Frame::Status {
                            session,
                            round: s.round(),
                            halted: s.halted(),
                            heard: s.heard(),
                        };
                        sessions.insert(session, s);
                        status
                    }
                    Err(e) => err(session, format!("restore failed: {e}")),
                },
                None => err(session, format!("unknown scenario `{scenario}`")),
            }
        }
        Frame::Close { session } => {
            if sessions.remove(&session).is_some() {
                stats.closed.fetch_add(1, Ordering::Relaxed);
                Frame::Closed { session }
            } else {
                err(session, "no such session".to_string())
            }
        }
        // Responses arriving as requests (or Shutdown, which the reader
        // handles) are protocol violations.
        other => err(
            other.session().unwrap_or(0),
            "unexpected frame direction".to_string(),
        ),
    }
}
