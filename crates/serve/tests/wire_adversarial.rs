//! Adversarial decode totality for the `goc-serve` wire framing.
//!
//! A frame crosses a trust boundary harder than a snapshot file: any
//! process that can reach the socket can write arbitrary bytes. These
//! tests mirror `crates/core/tests/snap_adversarial.rs` for the framing
//! layer — truncations, byte stomps, hostile declared lengths, splices,
//! raw garbage — and assert the same contract: **decoding is total**.
//! Every body either decodes to a [`Frame`] or returns a [`WireError`],
//! never a panic; and no declared length costs the server more memory
//! than the bytes actually on the wire.

use goc_serve::wire::{
    self, read_frame_body, Frame, WireError, MAX_FRAME, WIRE_MAGIC, WIRE_VERSION,
};
use goc_testkit::{check, gens, CaseError};

/// One frame of every variant, with bodies exercising every field shape
/// (ids, strings, blobs, bools), plus edge values.
fn corpus() -> Vec<Frame> {
    vec![
        Frame::Open { session: 0, scenario: "magic".to_string(), seed: 42 },
        Frame::Open { session: u64::MAX, scenario: String::new(), seed: u64::MAX },
        Frame::Drive { session: 7, rounds: 64 },
        Frame::Snap { session: 1 },
        Frame::Restore {
            session: 9,
            scenario: "magic-compact".to_string(),
            seed: 3,
            snap: vec![0xAB; 257],
        },
        Frame::Restore { session: 0, scenario: "m".to_string(), seed: 0, snap: Vec::new() },
        Frame::Close { session: 3 },
        Frame::Shutdown,
        Frame::Status { session: 5, round: 500, halted: true, heard: 12 },
        Frame::SnapData { session: 5, snap: (0..=255u8).collect() },
        Frame::Closed { session: 2 },
        Frame::Error { session: 0, message: "bad frame: tag 200".to_string() },
        Frame::Bye,
    ]
}

/// The totality oracle: decoding must not panic; on success the decoded
/// frame must survive a re-encode/re-decode round trip (no value that
/// later violates the codec's own invariants).
fn decode_is_total(body: &[u8]) -> Result<bool, String> {
    match Frame::decode(body) {
        Err(_) => Ok(false),
        Ok(frame) => {
            let re = frame.encode();
            let again = Frame::decode(&re)
                .map_err(|e| format!("decoded frame fails to re-decode: {e}"))?;
            if again != frame {
                return Err(format!("re-decode mismatch: {frame:?} vs {again:?}"));
            }
            Ok(true)
        }
    }
}

/// Every corpus frame round-trips exactly.
#[test]
fn corpus_roundtrips() {
    for frame in corpus() {
        let body = frame.encode();
        let back = Frame::decode(&body).expect("honest body must decode");
        assert_eq!(back, frame);
    }
}

/// Every strict prefix of every corpus body fails to decode: truncation
/// never yields a shorter valid frame.
#[test]
fn truncations_always_err() {
    for frame in corpus() {
        let body = frame.encode();
        for len in 0..body.len() {
            assert!(
                Frame::decode(&body[..len]).is_err(),
                "{frame:?}: {len}-byte prefix of a {}-byte body decoded",
                body.len()
            );
        }
    }
}

/// Trailing bytes after a valid body fail: a splice of two frames cannot
/// masquerade as its first half.
#[test]
fn trailing_bytes_always_err() {
    for frame in corpus() {
        let mut body = frame.encode();
        body.push(0);
        assert!(Frame::decode(&body).is_err(), "{frame:?}: trailing byte accepted");
    }
}

/// Stomping any single byte to `0xFF` decodes totally. The sweep hits
/// every tag, length prefix and field byte in every variant.
#[test]
fn byte_stomps_decode_totally() {
    for frame in corpus() {
        let body = frame.encode();
        for i in 0..body.len() {
            if body[i] == 0xFF {
                continue;
            }
            let mut hostile = body.clone();
            hostile[i] = 0xFF;
            decode_is_total(&hostile)
                .unwrap_or_else(|e| panic!("{frame:?}: stomp at byte {i}: {e}"));
        }
    }
}

/// A declared string/blob length larger than the remaining body is an
/// error, not an allocation: the reader gates every length against what
/// is actually present.
#[test]
fn hostile_interior_lengths_err_without_allocating() {
    // A Restore body whose snap-length word is inflated to ~4 GiB.
    let frame = Frame::Restore {
        session: 1,
        scenario: "magic".to_string(),
        seed: 2,
        snap: vec![1, 2, 3, 4],
    };
    let body = frame.encode();
    // The snap blob is the final field: its length prefix sits 8 bytes
    // before the end (u64 length, snap codec) followed by 4 payload bytes.
    let len_pos = body.len() - 4 - 8;
    let mut hostile = body.clone();
    hostile[len_pos..len_pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    match Frame::decode(&hostile) {
        Err(WireError::Snap(_)) => {}
        other => panic!("inflated length must be a decode error, got {other:?}"),
    }
}

/// Random single-bit flips decode totally (property-tested with
/// shrinking: a failure reports the minimal flip).
#[test]
fn bit_flips_decode_totally() {
    let bodies: Vec<Vec<u8>> = corpus().iter().map(Frame::encode).collect();
    let max_len = bodies.iter().map(Vec::len).max().unwrap();
    check(
        "wire_bit_flip_totality",
        gens::tuple3(
            gens::usize_in(0, bodies.len() - 1),
            gens::usize_in(0, max_len - 1),
            gens::u8_in(0, 7),
        ),
        |&(which, byte, bit): &(usize, usize, u8)| {
            let base = &bodies[which];
            let byte = byte % base.len();
            let mut hostile = base.clone();
            hostile[byte] ^= 1 << bit;
            decode_is_total(&hostile).map_err(CaseError::fail)?;
            Ok(())
        },
    );
}

/// Splicing chunks between two honest bodies decodes totally.
#[test]
fn chunk_splices_decode_totally() {
    let a = Frame::Restore {
        session: 11,
        scenario: "magic-compact".to_string(),
        seed: 5,
        snap: vec![0x5A; 64],
    }
    .encode();
    let b = Frame::Error { session: 3, message: "x".repeat(64) }.encode();
    check(
        "wire_splice_totality",
        gens::tuple3(
            gens::usize_in(0, a.len() - 1),
            gens::usize_in(0, b.len() - 1),
            gens::usize_in(1, 32),
        ),
        |&(start_a, start_b, span): &(usize, usize, usize)| {
            let mut hostile = a.clone();
            for o in 0..span {
                if start_a + o < hostile.len() && start_b + o < b.len() {
                    hostile[start_a + o] = b[start_b + o];
                }
            }
            decode_is_total(&hostile).map_err(CaseError::fail)?;
            Ok(())
        },
    );
}

/// Outright random garbage decodes totally.
#[test]
fn garbage_decodes_totally() {
    check("wire_garbage_totality", gens::bytes(0, 512), |junk: &Vec<u8>| {
        decode_is_total(junk).map_err(CaseError::fail)?;
        Ok(())
    });
}

/// The stream framing: a declared frame length beyond [`MAX_FRAME`] (or
/// zero) is rejected from the 4-byte prefix alone — before any body
/// allocation, which is what makes a hostile 4 GiB declaration cost the
/// server 4 bytes of reading.
#[test]
fn hostile_stream_lengths_are_gated() {
    for declared in [0u32, (MAX_FRAME as u32) + 1, u32::MAX] {
        let mut stream: &[u8] = &{
            let mut v = declared.to_le_bytes().to_vec();
            v.extend_from_slice(&[0u8; 16]); // far fewer bytes than declared
            v
        };
        match read_frame_body(&mut stream) {
            Err(WireError::FrameTooLarge(n)) => assert_eq!(n, declared as usize),
            other => panic!("declared length {declared}: expected FrameTooLarge, got {other:?}"),
        }
    }
}

/// A body that fails to decode does not desynchronize the stream: the
/// next length-prefixed frame still reads and decodes cleanly.
#[test]
fn bad_body_does_not_desync_the_stream() {
    let good = Frame::Drive { session: 1, rounds: 8 };
    let mut stream_bytes = Vec::new();
    wire::write_frame_body(&mut stream_bytes, &[0xEE; 13]).unwrap(); // hostile body
    wire::write_frame(&mut stream_bytes, &good).unwrap();
    let mut stream: &[u8] = &stream_bytes;
    let first = read_frame_body(&mut stream).expect("framing reads the hostile body");
    assert!(Frame::decode(&first).is_err(), "0xEE bytes must not decode");
    let second = read_frame_body(&mut stream).expect("stream stays in sync");
    assert_eq!(Frame::decode(&second).expect("honest frame decodes"), good);
}

/// EOF between frames is a clean close; EOF inside a frame is not.
#[test]
fn eof_positions_are_distinguished() {
    let mut empty: &[u8] = &[];
    assert!(matches!(read_frame_body(&mut empty), Err(WireError::Closed)));
    let full = {
        let mut v = Vec::new();
        wire::write_frame(&mut v, &Frame::Bye).unwrap();
        v
    };
    for cut in 1..full.len() {
        let mut truncated: &[u8] = &full[..cut];
        match read_frame_body(&mut truncated) {
            Err(WireError::Io(_)) => {}
            other => panic!("cut at {cut}: expected a mid-frame Io error, got {other:?}"),
        }
    }
}

/// Handshake rejection: bad magic and unknown versions are refused with
/// the specific error, and the good handshake round-trips.
#[test]
fn handshake_validates_magic_and_version() {
    let mut good = Vec::new();
    wire::write_handshake(&mut good).unwrap();
    assert_eq!(good.len(), 6);
    assert_eq!(&good[..4], &WIRE_MAGIC);
    wire::read_handshake(&mut good.as_slice()).expect("own handshake accepted");

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0x20;
    assert!(matches!(
        wire::read_handshake(&mut bad_magic.as_slice()),
        Err(WireError::BadMagic(_))
    ));

    let mut bad_version = good.clone();
    bad_version[4] = (WIRE_VERSION + 1) as u8;
    assert!(matches!(
        wire::read_handshake(&mut bad_version.as_slice()),
        Err(WireError::UnsupportedVersion(_))
    ));

    let mut short: &[u8] = &good[..3];
    assert!(wire::read_handshake(&mut short).is_err());
}
