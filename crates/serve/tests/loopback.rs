//! Loopback round trips: a networked session must settle **byte-identically**
//! to the in-process `Execution` it suspends — across TCP and Unix sockets,
//! across thread counts, across a snapshot migration between daemons, and
//! in the presence of hostile bytes and chaos faults on the wire.

use goc_core::par::with_thread_count;
use goc_serve::chaos::{ChaosSpec, FrameChaos};
use goc_serve::daemon::{self, Addr, DaemonOpts, Stream};
use goc_serve::session::{session_seed, Session};
use goc_serve::wire::{self, Frame};
use goc_serve::Client;
use goc_testkit::{check, gens, CaseError};

fn start_daemon(addr: Addr) -> daemon::DaemonHandle {
    let mut opts = DaemonOpts::new(addr);
    opts.shards = 4;
    opts.quiet = true;
    daemon::start(opts).expect("daemon binds")
}

fn tcp_daemon() -> daemon::DaemonHandle {
    start_daemon(Addr::parse("tcp:127.0.0.1:0").unwrap())
}

/// Drives `(scenario, seed)` against a daemon in `quantum`-round slices
/// to `horizon`, returning the outcome triple.
fn settle_over_socket(
    client: &mut Client,
    session: u64,
    scenario: &str,
    seed: u64,
    quantum: u64,
    horizon: u64,
) -> (u64, bool, u64) {
    let mut status = client.open(session, scenario, seed).expect("open");
    let stop_on_halt = scenario == "magic";
    loop {
        let (round, halted, _) = status;
        if round >= horizon || (stop_on_halt && halted) {
            break;
        }
        // Clamp the final slice: the in-process reference stops exactly at
        // `horizon`, so the socket arm must not overshoot it.
        let rounds = quantum.min(horizon - round).max(1);
        status = client.drive(session, rounds).expect("drive");
    }
    client.close(session).expect("close");
    status
}

/// The reference: the same session run entirely in this process.
fn settle_in_process(scenario: &str, seed: u64, horizon: u64) -> (u64, bool, u64) {
    let mut s = Session::build(scenario, seed).expect("known scenario");
    s.step_to(horizon);
    (s.round(), s.halted(), s.heard())
}

/// TCP round trip: networked settle equals the in-process settle, with the
/// in-process arm computed at both one and four worker threads — the
/// network boundary and the thread count are both observationally inert.
#[test]
fn tcp_settle_matches_in_process_at_1_and_4_threads() {
    let handle = tcp_daemon();
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (i, scenario) in ["magic", "magic-compact"].iter().enumerate() {
        let seed = session_seed(9, i as u64);
        let over_socket = settle_over_socket(&mut client, i as u64, scenario, seed, 64, 256);
        let at_one = with_thread_count(1, || settle_in_process(scenario, seed, 256));
        let at_four = with_thread_count(4, || settle_in_process(scenario, seed, 256));
        assert_eq!(over_socket, at_one, "{scenario}: socket vs 1-thread in-process");
        assert_eq!(over_socket, at_four, "{scenario}: socket vs 4-thread in-process");
    }
    client.shutdown().expect("shutdown");
    let stats = handle.wait();
    assert_eq!(stats.opened, 2);
    assert_eq!(stats.closed, 2);
    assert_eq!(stats.errors, 0);
}

/// The same identity over a Unix-domain socket.
#[test]
fn unix_settle_matches_in_process() {
    let path = std::env::temp_dir().join(format!("goc-loopback-{}.sock", std::process::id()));
    let handle = start_daemon(Addr::Unix(path.clone()));
    let mut client = Client::connect(handle.addr()).expect("connect");
    let seed = session_seed(11, 0);
    let over_socket = settle_over_socket(&mut client, 0, "magic", seed, 32, 256);
    assert_eq!(over_socket, settle_in_process("magic", seed, 256));
    client.shutdown().expect("shutdown");
    handle.wait();
    assert!(!path.exists(), "daemon teardown removes its socket file");
}

/// Property: for random seeds and quanta, the networked settle equals the
/// in-process settle. Quantum slicing composes because the halt check runs
/// every round on both sides.
#[test]
fn settle_identity_is_seed_and_quantum_independent() {
    let handle = tcp_daemon();
    let addr = handle.addr().clone();
    check(
        "loopback_settle_identity",
        gens::tuple3(gens::any_u64(), gens::u64_in(1, 96), gens::u64_in(0, 1)),
        move |&(seed, quantum, which): &(u64, u64, u64)| {
            let scenario = if which == 0 { "magic" } else { "magic-compact" };
            let mut client = Client::connect(&addr).map_err(|e| CaseError::fail(e.to_string()))?;
            let over_socket = settle_over_socket(&mut client, seed, scenario, seed, quantum, 192);
            let in_process = settle_in_process(scenario, seed, 192);
            if over_socket != in_process {
                return Err(CaseError::fail(format!(
                    "{scenario} seed {seed} quantum {quantum}: {over_socket:?} != {in_process:?}"
                )));
            }
            Ok(())
        },
    );
    handle.stop();
    let stats = handle.wait();
    assert_eq!(stats.errors, 0);
}

/// A session snapshotted over the wire from one daemon restores into a
/// *different* daemon and settles exactly like an unmigrated run.
#[test]
fn snapshot_migrates_across_daemons() {
    let seed = session_seed(13, 1);
    let first = tcp_daemon();
    let mut c1 = Client::connect(first.addr()).expect("connect first");
    c1.open(1, "magic-compact", seed).expect("open");
    c1.drive(1, 100).expect("drive");
    let snap = c1.snap(1).expect("snap over the wire");
    c1.shutdown().expect("shutdown first");
    first.wait();

    let second = tcp_daemon();
    let mut c2 = Client::connect(second.addr()).expect("connect second");
    let restored = c2.restore(1, "magic-compact", seed, snap).expect("restore");
    assert_eq!(restored.0, 100, "restored session resumes at its checkpoint round");
    let mut status = restored;
    while status.0 < 256 {
        status = c2.drive(1, 64.min(256 - status.0)).expect("drive restored");
    }
    assert_eq!(status, settle_in_process("magic-compact", seed, 256));
    c2.shutdown().expect("shutdown second");
    second.wait();
}

/// Hostile bytes on a live connection: garbage frames earn `Error` replies
/// and the daemon keeps serving the *same* connection afterwards.
#[test]
fn garbage_frames_get_error_replies_and_service_continues() {
    let handle = tcp_daemon();
    let mut stream = Stream::connect(handle.addr()).expect("connect");
    wire::write_handshake(&mut stream).expect("handshake out");
    wire::read_handshake(&mut stream).expect("handshake in");
    for junk in [vec![0u8; 1], vec![0xEE; 40], (0..=255u8).collect::<Vec<_>>()] {
        wire::write_frame_body(&mut stream, &junk).expect("send junk");
        match wire::read_frame(&mut stream).expect("survive junk") {
            Frame::Error { session: 0, .. } => {}
            other => panic!("junk must earn an Error reply, got {other:?}"),
        }
    }
    // The stream is still in sync: a real session works.
    wire::write_frame(
        &mut stream,
        &Frame::Open { session: 4, scenario: "magic".to_string(), seed: 4 },
    )
    .expect("send open");
    match wire::read_frame(&mut stream).expect("open reply") {
        Frame::Status { session: 4, .. } => {}
        other => panic!("expected Status, got {other:?}"),
    }
    handle.stop();
    let stats = handle.wait();
    assert_eq!(stats.errors, 3);
    assert_eq!(stats.opened, 1);
}

/// A hostile declared *stream* length (beyond `MAX_FRAME`) earns a final
/// `Error` reply and a hangup, never an allocation.
#[test]
fn oversized_frame_declaration_is_refused() {
    let handle = tcp_daemon();
    let mut stream = Stream::connect(handle.addr()).expect("connect");
    wire::write_handshake(&mut stream).expect("handshake out");
    wire::read_handshake(&mut stream).expect("handshake in");
    use std::io::Write as _;
    stream.write_all(&u32::MAX.to_le_bytes()).expect("hostile length");
    stream.flush().expect("flush");
    match wire::read_frame(&mut stream).expect("error reply before hangup") {
        Frame::Error { session: 0, message } => {
            assert!(message.contains("MAX_FRAME"), "unexpected message {message:?}")
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // The daemon hung up on us; the next read sees a closed stream.
    assert!(wire::read_frame(&mut stream).is_err());
    handle.stop();
    handle.wait();
}

/// Chaos middleware on the socket path: with a deterministic fault stream,
/// the client can mirror the daemon's chaos state and predict exactly
/// which requests are dropped (no reply), which are corrupted (an `Error`
/// or a misdirected request), and which get through — and the daemon
/// survives all of it with the session settling to the true outcome.
#[test]
fn chaos_faults_compose_onto_the_socket_path() {
    let spec = ChaosSpec { drop_p: 0.25, corrupt_p: 0.25, seed: 99 };
    let mut opts = DaemonOpts::new(Addr::parse("tcp:127.0.0.1:0").unwrap());
    opts.shards = 2;
    opts.chaos = Some(spec);
    opts.quiet = true;
    let handle = daemon::start(opts).expect("daemon binds");

    let mut stream = Stream::connect(handle.addr()).expect("connect");
    wire::write_handshake(&mut stream).expect("handshake out");
    wire::read_handshake(&mut stream).expect("handshake in");
    // This is the daemon's first connection, so its fault stream is
    // FrameChaos::new(spec, 1); mirroring it makes every drop/corrupt
    // decision predictable.
    let mut mirror = FrameChaos::new(&spec, 1);

    let seed = session_seed(17, 3);
    let horizon = 128;
    // Sends `frame`, consuming mirrored chaos; returns the predicted
    // fate: None = dropped (no reply), Some(decodes) = a reply is owed.
    let mut send_through_chaos = |stream: &mut Stream, frame: &Frame| -> Option<bool> {
        let body = frame.encode();
        wire::write_frame_body(stream, &body).expect("send");
        let predicted = mirror.apply(body)?;
        match Frame::decode(&predicted) {
            Ok(Frame::Shutdown) => {
                panic!("seed 99 corrupts a frame into Shutdown; pick another seed")
            }
            Ok(_) => Some(true),
            Err(_) => Some(false),
        }
    };

    let mut status = None;
    let mut opened = false;
    let mut retries = 0u32;
    loop {
        let frame = if !opened {
            Frame::Open { session: 8, scenario: "magic-compact".to_string(), seed }
        } else {
            Frame::Drive { session: 8, rounds: 16 }
        };
        match send_through_chaos(&mut stream, &frame) {
            None => {} // dropped in the "network": resend
            Some(_) => match wire::read_frame(&mut stream).expect("predicted reply") {
                Frame::Status { session: 8, round, halted, heard } => {
                    opened = true;
                    status = Some((round, halted, heard));
                    if round >= horizon {
                        break;
                    }
                }
                Frame::Error { .. } => {} // corrupted request: resend
                other => panic!("unexpected reply {other:?}"),
            },
        }
        retries += 1;
        assert!(retries < 10_000, "chaos session never settled");
    }
    assert_eq!(
        status.expect("session settled"),
        settle_in_process("magic-compact", seed, horizon),
        "a lossy, corrupting network must not change what the session settles to"
    );
    handle.stop();
    let stats = handle.wait();
    assert!(stats.chaos_dropped > 0, "drop_p 0.25 over {retries} sends never dropped");
}

/// Teardown discipline: `wait` completes (shards joined, worker pool
/// drained) even when sessions are left open, and an externally triggered
/// `stop` is equivalent to a client `Shutdown`.
#[test]
fn teardown_drains_with_sessions_left_open() {
    let handle = tcp_daemon();
    let mut client = Client::connect(handle.addr()).expect("connect");
    for id in 0..6u64 {
        client.open(id, "magic", session_seed(23, id)).expect("open");
        client.drive(id, 32).expect("drive");
    }
    // No Close, no client Shutdown: stop from outside, sessions still live.
    handle.stop();
    let stats = handle.wait();
    assert_eq!(stats.opened, 6);
    assert_eq!(stats.closed, 0);
    assert_eq!(stats.errors, 0);
}
