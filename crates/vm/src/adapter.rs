//! Adapters running VM programs as `goc-core` strategies.
//!
//! Channel mapping: **A** is the peer (server for a user program, user for a
//! server program); **B** is the world. The same program text can therefore
//! be mounted in either role.

use crate::arena;
use crate::batch::{self, BatchVm};
use crate::cache::{self, CachedRound, RoundKey};
use crate::instr::REG_COUNT;
use crate::machine::{DecodedProgram, Machine, RoundIo};
use crate::predict;
use crate::program::Program;
use goc_core::msg::{Message, ServerIn, ServerOut, UserIn, UserOut};
use goc_core::snap::{SnapError, SnapReader, SnapWriter};
use goc_core::strategy::{Halt, ServerStrategy, StepCtx, UserStrategy};
use std::sync::Arc;

/// A user strategy interpreting a VM [`Program`].
///
/// # Examples
///
/// ```
/// use goc_vm::adapter::VmUser;
/// use goc_vm::instr::Instr;
/// use goc_vm::program::Program;
/// use goc_core::strategy::{StepCtx, UserStrategy};
/// use goc_core::msg::UserIn;
/// use goc_core::rng::GocRng;
///
/// let greet = Program::assemble(&[Instr::EmitA(b'h'), Instr::EmitA(b'i')]);
/// let mut user = VmUser::new(greet);
/// let mut rng = GocRng::seed_from_u64(0);
/// let mut ctx = StepCtx::new(0, &mut rng);
/// let out = user.step(&mut ctx, &UserIn::default());
/// assert_eq!(out.to_server.as_bytes(), b"hi");
/// ```
#[derive(Clone, Debug)]
pub struct VmUser {
    machine: Machine,
    /// Whether steps go through the [`crate::cache`] candidate cache.
    use_cache: bool,
    /// Precomputed [`cache::program_hash`] of the program bytes.
    program_hash: u64,
    /// Rolling hash of every inbox seen so far ([`cache::extend_prefix`]).
    prefix_hash: u128,
    /// Inputs of rounds served from the cache that the machine has not
    /// executed yet; replayed in order on the next cache miss.
    pending_replay: Vec<(Vec<u8>, Vec<u8>)>,
    /// Halt state as observed through the cache (mirrors what
    /// `machine.halted()` would be after replay).
    halted_view: Option<Vec<u8>>,
    /// Reusable round buffers: one `RoundIo` lives as long as the candidate,
    /// so steady-state rounds reuse its allocations instead of building
    /// fresh `Vec`s. Arena-backed under batch mode (recycled on drop).
    io: RoundIo,
    /// The program's jump-table decode, shared across rounds (and, when the
    /// enumerator spawned this candidate in a batch, across every candidate
    /// of the generation running the same program text). `None` until batch
    /// mode first needs it.
    decoded: Option<Arc<DecodedProgram>>,
    /// Cached rounds stepped so far — drives first-round signature capture
    /// for the [`predict`] continuation predictor. Telemetry, not semantics:
    /// not serialized in snapshots.
    rounds_seen: u32,
    /// [`predict::signature`] of the round-0 outputs, once round 0 ran.
    first_sig: Option<u64>,
}

impl VmUser {
    /// Mounts `program` as a user strategy (default fuel).
    pub fn new(program: Program) -> Self {
        Self::with_fuel(program, crate::machine::DEFAULT_FUEL)
    }

    /// Mounts `program` with an explicit per-round fuel budget.
    ///
    /// # Panics
    ///
    /// Panics if `fuel == 0`.
    pub fn with_fuel(program: Program, fuel: u32) -> Self {
        let program_hash = cache::program_hash(program.as_bytes());
        let io = if batch::enabled() { arena::take_io() } else { RoundIo::default() };
        VmUser {
            machine: Machine::with_fuel(program, fuel),
            use_cache: cache::enabled_by_env(),
            program_hash,
            prefix_hash: cache::PREFIX_EMPTY,
            pending_replay: Vec::new(),
            halted_view: None,
            io,
            decoded: None,
            rounds_seen: 0,
            first_sig: None,
        }
    }

    /// Pins candidate-cache use for this instance, overriding the
    /// `GOC_VM_CACHE` default. Cached and uncached users are observably
    /// identical (the VM is a deterministic transducer); the switch exists
    /// for tests and apples-to-apples benchmarks.
    pub fn with_cache_enabled(mut self, enabled: bool) -> Self {
        self.use_cache = enabled;
        self
    }

    /// The underlying machine (registers, program, counters).
    ///
    /// When the candidate cache is on, rounds served from it are *not*
    /// executed eagerly, so the machine's registers and retired-instruction
    /// counter may lag the interaction until the next cache miss replays
    /// them. Outputs and halt state (via [`UserStrategy::halted`]) are
    /// unaffected.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    fn round_key(&self) -> RoundKey {
        RoundKey {
            program_hash: self.program_hash,
            fuel: self.machine.fuel_per_round(),
            prefix_hash: self.prefix_hash,
        }
    }

    /// One machine round on `self.io` through the active interpreter:
    /// jump-table dispatch via the (possibly generation-shared) decode under
    /// batch mode, the plain scalar loop otherwise. The two are observably
    /// identical — outputs, registers, halt payload, retired count.
    fn run_round(&mut self) {
        if batch::enabled() {
            if self.decoded.is_none() {
                self.decoded = Some(Arc::new(DecodedProgram::new(self.machine.program())));
            }
            let decoded = self.decoded.as_deref().expect("just populated");
            self.machine.round_decoded(decoded, &mut self.io);
        } else {
            self.machine.round(&mut self.io);
        }
    }

    /// Executes one round through the cache: hash the inbox into the prefix,
    /// serve a memoised round if one exists, otherwise replay any skipped
    /// rounds and run this one for real, recording it.
    ///
    /// Also feeds the [`predict`] continuation predictor: round 0's outputs
    /// define the candidate's first-output class, and round 1's inbox is the
    /// class's observed continuation (scored against the top-K prediction,
    /// counting `vm.prewarm.mispredict`).
    fn cached_round(&mut self, in_a: &[u8], in_b: &[u8]) -> (Vec<u8>, Vec<u8>) {
        if self.halted_view.is_some() {
            // A halted machine is inert; don't grow the prefix or the cache.
            return (Vec::new(), Vec::new());
        }
        if self.rounds_seen == 1 {
            if let Some(sig) = self.first_sig {
                predict::record_outcome(sig, in_a, in_b);
            }
        }
        self.prefix_hash = cache::extend_prefix(self.prefix_hash, in_a, in_b);
        let key = self.round_key();
        let program = self.machine.program().as_bytes();
        let result = if let Some(hit) = cache::lookup(&key, program) {
            self.pending_replay.push((to_owned_bytes(in_a), to_owned_bytes(in_b)));
            self.halted_view = hit.halted;
            (hit.out_a, hit.out_b)
        } else {
            let replay = std::mem::take(&mut self.pending_replay);
            for (a, b) in replay {
                self.io.set_inputs(&a, &b);
                self.run_round();
                if batch::enabled() {
                    arena::put_bytes(a);
                    arena::put_bytes(b);
                }
            }
            self.io.set_inputs(in_a, in_b);
            self.run_round();
            let halted = self.machine.halted().map(<[u8]>::to_vec);
            cache::insert(
                key,
                self.machine.program().as_bytes(),
                CachedRound {
                    out_a: self.io.out_a.clone(),
                    out_b: self.io.out_b.clone(),
                    halted: halted.clone(),
                },
            );
            self.halted_view = halted;
            (self.io.out_a.clone(), self.io.out_b.clone())
        };
        if self.rounds_seen == 0 {
            self.first_sig = Some(predict::signature(&result.0, &result.1));
        }
        self.rounds_seen = self.rounds_seen.saturating_add(1);
        result
    }
}

/// Copies `src` into an owned buffer, arena-backed under batch mode.
fn to_owned_bytes(src: &[u8]) -> Vec<u8> {
    if batch::enabled() {
        let mut v = arena::take_bytes(src.len());
        v.extend_from_slice(src);
        v
    } else {
        src.to_vec()
    }
}

impl Drop for VmUser {
    /// Elimination recycles the candidate's buffers into the
    /// [`arena`](crate::arena) under batch mode: its `RoundIo`, any pending
    /// replay inboxes, and the program bytes themselves. Safe with the
    /// candidate cache because cache entries pin their own program copies
    /// (see `arena` module docs and DESIGN.md §11).
    fn drop(&mut self) {
        if !batch::enabled() {
            return;
        }
        arena::recycle_io(&mut self.io);
        for (a, b) in self.pending_replay.drain(..) {
            arena::put_bytes(a);
            arena::put_bytes(b);
        }
        let machine =
            std::mem::replace(&mut self.machine, Machine::with_fuel(Program::default(), 1));
        arena::put_bytes(machine.into_program().into_bytes());
    }
}

/// Batch-prepares a freshly spawned candidate generation: every candidate
/// gets the generation's shared [`DecodedProgram`] for its program text, and
/// the first (empty-inbox) round of each cache-enabled candidate is executed
/// through one [`BatchVm`] lockstep round, recorded in the **same**
/// [`cache`](crate::cache) entries the scalar path populates and consults.
/// Candidates whose first round is already memoised are not re-run.
///
/// Value-identical to letting each candidate run that round itself (the VM
/// is a deterministic transducer), so traces and reports are unaffected.
pub fn prewarm_batch<'a>(users: impl IntoIterator<Item = &'a mut VmUser>) {
    let mut users: Vec<&'a mut VmUser> = users.into_iter().collect();
    let mut decodes: Vec<Arc<DecodedProgram>> = Vec::new();
    for u in users.iter_mut() {
        let code = u.machine.program().as_bytes();
        let shared = match decodes.iter().find(|d| d.code() == code) {
            Some(d) => Arc::clone(d),
            None => {
                let d = Arc::new(DecodedProgram::new(u.machine.program()));
                decodes.push(Arc::clone(&d));
                d
            }
        };
        u.decoded = Some(shared);
    }
    let first_prefix = cache::extend_prefix(cache::PREFIX_EMPTY, &[], &[]);
    let mut vm = BatchVm::new();
    let mut lanes: Vec<usize> = Vec::new();
    for (i, u) in users.iter().enumerate() {
        if !u.use_cache {
            continue;
        }
        let key = RoundKey {
            program_hash: u.program_hash,
            fuel: u.machine.fuel_per_round(),
            prefix_hash: first_prefix,
        };
        if cache::lookup(&key, u.machine.program().as_bytes()).is_none() {
            vm.push_decoded(
                Arc::clone(u.decoded.as_ref().expect("assigned above")),
                u.machine.fuel_per_round(),
            );
            lanes.push(i);
        }
    }
    if lanes.is_empty() {
        return;
    }
    let mut ios: Vec<RoundIo> = lanes.iter().map(|_| arena::take_io()).collect();
    vm.round(&mut ios);
    for (k, &i) in lanes.iter().enumerate() {
        let u = &users[i];
        let key = RoundKey {
            program_hash: u.program_hash,
            fuel: u.machine.fuel_per_round(),
            prefix_hash: first_prefix,
        };
        cache::insert(
            key,
            u.machine.program().as_bytes(),
            CachedRound {
                out_a: ios[k].out_a.clone(),
                out_b: ios[k].out_b.clone(),
                halted: vm.halted(k).map(<[u8]>::to_vec),
            },
        );
        arena::recycle_io(&mut ios[k]);
    }
}

/// Per-candidate speculative depth of [`prewarm_deep`]: `GOC_PREWARM_DEPTH`
/// (clamped to 1..=64, read once and latched), default 16 rounds.
pub fn prewarm_depth() -> usize {
    use std::sync::OnceLock;
    static DEPTH: OnceLock<usize> = OnceLock::new();
    *DEPTH.get_or_init(|| {
        std::env::var("GOC_PREWARM_DEPTH")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|d| d.clamp(1, 64))
            .unwrap_or(16)
    })
}

/// The background (pipelined) variant of [`prewarm_batch`]: shares decodes
/// the same way, then speculatively runs every cache-enabled candidate up to
/// `depth` rounds of [`BatchVm`] lockstep under the **empty-inbox**
/// assumption, memoising each round along the growing empty-prefix key
/// chain (stopping a lane at its halt).
///
/// Why this is sound: the cache key is a pure function of `(program bytes,
/// fuel, inbox history)`, so an entry recorded here for the history
/// "`k` empty rounds" is value-identical to what the candidate would record
/// for itself — and a live round whose inbox turns out *non*-empty hashes to
/// a different key and simply misses. Speculation can therefore never serve
/// a wrong round; it only moves fuel burn off the critical path. The
/// empty-inbox guess is the profitable one: wrong candidates in a universal
/// search mostly talk into a silent world, so their entire budget slice
/// becomes cache hits.
///
/// Running lanes in lockstep against a *known* all-empty input stream also
/// buys an optimisation the live path cannot have: **fixed-point fill**. A
/// lane's whole inter-round state is its register file (the pc restarts at 0
/// every round), so if a round leaves the registers exactly unchanged, every
/// further empty-input round is a verbatim replay of that round. The
/// executor then parks the lane and fills the rest of its chain by copying
/// the round's entry — the fuel-burning decoys a universal search wades
/// through are precisely such loops, and each costs one executed round
/// instead of `depth`.
///
/// After the empty chain, a second pass speculates the top-K **predicted**
/// non-empty continuations of each candidate's first round (see
/// [`predict`]), covering echoing candidates whose later rounds depend on
/// the peer's reply. Same soundness argument — predictions only choose which
/// value-identical entries get built.
pub fn prewarm_deep<'a>(users: impl IntoIterator<Item = &'a mut VmUser>, depth: usize) {
    let mut users: Vec<&'a mut VmUser> = users.into_iter().collect();
    let mut decodes: Vec<Arc<DecodedProgram>> = Vec::new();
    for u in users.iter_mut() {
        let code = u.machine.program().as_bytes();
        let shared = match decodes.iter().find(|d| d.code() == code) {
            Some(d) => Arc::clone(d),
            None => {
                let d = Arc::new(DecodedProgram::new(u.machine.program()));
                decodes.push(Arc::clone(&d));
                d
            }
        };
        u.decoded = Some(shared);
    }
    let depth = depth.max(1);
    let mut vm = BatchVm::new();
    let mut lanes: Vec<usize> = Vec::new();
    for (i, u) in users.iter().enumerate() {
        if !u.use_cache {
            continue;
        }
        // Skip lanes whose empty-prefix chain is already fully memoised
        // (up to `depth`, or up to a recorded halt) — the chain's keys are
        // computable without execution, so this costs only hash lookups.
        let mut prefix = cache::PREFIX_EMPTY;
        let mut warmed = true;
        for _ in 0..depth {
            prefix = cache::extend_prefix(prefix, &[], &[]);
            let key = RoundKey {
                program_hash: u.program_hash,
                fuel: u.machine.fuel_per_round(),
                prefix_hash: prefix,
            };
            match cache::lookup(&key, u.machine.program().as_bytes()) {
                Some(hit) if hit.halted.is_some() => break,
                Some(_) => {}
                None => {
                    warmed = false;
                    break;
                }
            }
        }
        if warmed {
            continue;
        }
        vm.push_decoded(
            Arc::clone(u.decoded.as_ref().expect("assigned above")),
            u.machine.fuel_per_round(),
        );
        lanes.push(i);
    }
    if lanes.is_empty() {
        return;
    }
    let mut ios: Vec<RoundIo> = lanes.iter().map(|_| arena::take_io()).collect();
    let mut prefix = cache::PREFIX_EMPTY;
    let mut done: Vec<bool> = vec![false; lanes.len()];
    // Register snapshots from before the current round, for fixed-point
    // detection (freshly pushed lanes start all-zero, like the scalar
    // machine).
    let mut prev_regs: Vec<[u64; REG_COUNT]> = (0..lanes.len()).map(|k| vm.regs(k)).collect();
    for r in 0..depth {
        prefix = cache::extend_prefix(prefix, &[], &[]);
        for io in ios.iter_mut() {
            io.set_inputs(&[], &[]);
        }
        // BatchVm skips halted and parked lanes internally; their outboxes
        // stay empty, matching the scalar machine.
        vm.round(&mut ios);
        goc_core::obs_count_nd!(
            "vm.prewarm.rounds",
            done.iter().filter(|&&d| !d).count() as u64
        );
        let mut all_done = true;
        for (k, &i) in lanes.iter().enumerate() {
            if done[k] {
                continue;
            }
            let u = &users[i];
            let fuel = u.machine.fuel_per_round();
            let key = RoundKey { program_hash: u.program_hash, fuel, prefix_hash: prefix };
            let halted = vm.halted(k).map(<[u8]>::to_vec);
            let is_halt = halted.is_some();
            let round_entry =
                CachedRound { out_a: ios[k].out_a.clone(), out_b: ios[k].out_b.clone(), halted };
            cache::insert(key, u.machine.program().as_bytes(), round_entry.clone());
            if is_halt {
                done[k] = true;
            } else if vm.regs(k) == prev_regs[k] {
                // Fixed point: the round left the registers untouched, so
                // every remaining empty-input round replays it verbatim —
                // copy its entry down the rest of the chain and stop
                // burning this lane's fuel.
                goc_core::obs_count_nd!("vm.prewarm.fixedpoint", 1u64);
                let mut p = prefix;
                for _ in r + 1..depth {
                    p = cache::extend_prefix(p, &[], &[]);
                    let key = RoundKey { program_hash: u.program_hash, fuel, prefix_hash: p };
                    cache::insert(key, u.machine.program().as_bytes(), round_entry.clone());
                }
                vm.park(k);
                done[k] = true;
            } else {
                prev_regs[k] = vm.regs(k);
                all_done = false;
            }
        }
        if all_done {
            break;
        }
    }
    for io in ios.iter_mut() {
        arena::recycle_io(io);
    }
    speculate_predicted(&users, depth);
}

/// Cap on predicted-prefix chains per [`prewarm_deep`] call, bounding the
/// wasted work a fully mispredicting class table can cause.
const MAX_SPECULATED_CHAINS: usize = 256;

/// The predicted-prefix pass of [`prewarm_deep`]: for each cache-enabled
/// candidate whose (already memoised) first round produced a first-output
/// class with recorded continuations, speculate the class's top-K
/// continuations as **stationary** inboxes for rounds `1..depth`, memoising
/// the corresponding prefix chains. Each chain replays round 0 from a fresh
/// lane (registers start all-zero, like the scalar machine) against the
/// empty inbox — whose entry is already cached, so nothing new is inserted —
/// and then diverges into its predicted inbox.
///
/// The stationary-inbox assumption mirrors the empty chain's: universal
/// search opponents are themselves deterministic transducers, so a peer that
/// answered `x` once tends to keep answering `x`. A wrong guess misses its
/// keys and costs nothing at serve time; fixed-point fill applies from round
/// 1 on because the speculated input stream is constant.
fn speculate_predicted(users: &[&mut VmUser], depth: usize) {
    let top_k = predict::top_k();
    if top_k == 0 || depth < 2 {
        return;
    }
    let first_prefix = cache::extend_prefix(cache::PREFIX_EMPTY, &[], &[]);
    let mut vm = BatchVm::new();
    // Per-chain (user index, predicted stationary inbox).
    let mut specs: Vec<(usize, Vec<u8>, Vec<u8>)> = Vec::new();
    'users: for (i, u) in users.iter().enumerate() {
        if !u.use_cache {
            continue;
        }
        let program = u.machine.program().as_bytes();
        let fuel = u.machine.fuel_per_round();
        let key0 = RoundKey { program_hash: u.program_hash, fuel, prefix_hash: first_prefix };
        let Some(first) = cache::lookup(&key0, program) else { continue };
        if first.halted.is_some() {
            continue;
        }
        let sig = predict::signature(&first.out_a, &first.out_b);
        for (pa, pb) in predict::predict(sig, top_k) {
            if pa.is_empty() && pb.is_empty() {
                continue; // the empty chain is speculated unconditionally
            }
            // Skip chains already fully memoised (or memoised to a halt) —
            // keys are computable without execution.
            let mut prefix = first_prefix;
            let mut warmed = true;
            for _ in 1..depth {
                prefix = cache::extend_prefix(prefix, &pa, &pb);
                let key = RoundKey { program_hash: u.program_hash, fuel, prefix_hash: prefix };
                match cache::lookup(&key, program) {
                    Some(hit) if hit.halted.is_some() => break,
                    Some(_) => {}
                    None => {
                        warmed = false;
                        break;
                    }
                }
            }
            if warmed {
                continue;
            }
            vm.push_decoded(Arc::clone(u.decoded.as_ref().expect("assigned above")), fuel);
            specs.push((i, pa, pb));
            if specs.len() >= MAX_SPECULATED_CHAINS {
                break 'users;
            }
        }
    }
    if specs.is_empty() {
        return;
    }
    goc_core::obs_count_nd!("vm.prewarm.spec_chains", specs.len() as u64);
    predict::note_speculated(specs.len() as u64);
    let mut ios: Vec<RoundIo> = specs.iter().map(|_| arena::take_io()).collect();
    // Round 0: the empty inbox, rebuilding each lane's register state. Its
    // entry is already cached (that's how the class signature was found).
    for io in ios.iter_mut() {
        io.set_inputs(&[], &[]);
    }
    vm.round(&mut ios);
    let mut done: Vec<bool> = vec![false; specs.len()];
    let mut prefixes: Vec<u128> = vec![first_prefix; specs.len()];
    let mut prev_regs: Vec<[u64; REG_COUNT]> = (0..specs.len()).map(|k| vm.regs(k)).collect();
    for r in 1..depth {
        let mut live = 0u64;
        for (k, (_, pa, pb)) in specs.iter().enumerate() {
            if !done[k] {
                ios[k].set_inputs(pa, pb);
                live += 1;
            } else {
                ios[k].reset();
            }
        }
        if live == 0 {
            break;
        }
        vm.round(&mut ios);
        goc_core::obs_count_nd!("vm.prewarm.spec_rounds", live);
        for (k, &(i, ref pa, ref pb)) in specs.iter().enumerate() {
            if done[k] {
                continue;
            }
            let u = &users[i];
            let fuel = u.machine.fuel_per_round();
            prefixes[k] = cache::extend_prefix(prefixes[k], pa, pb);
            let key = RoundKey { program_hash: u.program_hash, fuel, prefix_hash: prefixes[k] };
            let halted = vm.halted(k).map(<[u8]>::to_vec);
            let is_halt = halted.is_some();
            let round_entry =
                CachedRound { out_a: ios[k].out_a.clone(), out_b: ios[k].out_b.clone(), halted };
            cache::insert(key, u.machine.program().as_bytes(), round_entry.clone());
            if is_halt {
                done[k] = true;
            } else if vm.regs(k) == prev_regs[k] {
                // Fixed point under a stationary inbox: every remaining
                // round replays this one verbatim (same registers, same
                // inputs) — fill the rest of the chain and park the lane.
                goc_core::obs_count_nd!("vm.prewarm.fixedpoint", 1u64);
                let mut p = prefixes[k];
                for _ in r + 1..depth {
                    p = cache::extend_prefix(p, pa, pb);
                    let key = RoundKey { program_hash: u.program_hash, fuel, prefix_hash: p };
                    cache::insert(key, u.machine.program().as_bytes(), round_entry.clone());
                }
                vm.park(k);
                done[k] = true;
            } else {
                prev_regs[k] = vm.regs(k);
            }
        }
    }
    for io in ios.iter_mut() {
        arena::recycle_io(io);
    }
}

impl UserStrategy for VmUser {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.use_cache {
            let (out_a, out_b) =
                self.cached_round(input.from_server.as_bytes(), input.from_world.as_bytes());
            UserOut { to_server: Message::from_bytes(out_a), to_world: Message::from_bytes(out_b) }
        } else {
            self.io.set_inputs(input.from_server.as_bytes(), input.from_world.as_bytes());
            self.run_round();
            UserOut {
                to_server: Message::from_bytes(&self.io.out_a),
                to_world: Message::from_bytes(&self.io.out_b),
            }
        }
    }

    fn fork(&self) -> Option<goc_core::strategy::BoxedUser> {
        Some(Box::new(self.clone()))
    }

    fn halted(&self) -> Option<Halt> {
        if self.use_cache {
            self.halted_view.as_ref().map(|out| Halt::with_output(out.clone()))
        } else {
            self.machine.halted().map(|out| Halt::with_output(out.to_vec()))
        }
    }

    fn name(&self) -> String {
        format!("vm-user[{} bytes]", self.machine.program().len())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        // The cache switch is configuration, not state: under the cache the
        // machine's registers lag the interaction (rounds served from the
        // cache are replayed lazily), so a snapshot taken with the cache on
        // is only resumable with the cache on — and vice versa.
        w.bool(self.use_cache);
        w.block(|w| self.machine.save_snap(w))?;
        w.u128(self.prefix_hash);
        w.u64(self.pending_replay.len() as u64);
        for (a, b) in &self.pending_replay {
            w.bytes(a);
            w.bytes(b);
        }
        match &self.halted_view {
            None => w.u8(0),
            Some(out) => {
                w.u8(1);
                w.bytes(out);
            }
        }
        Ok(())
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let use_cache = r.bool("vm-user cache flag")?;
        if use_cache != self.use_cache {
            return Err(SnapError::Mismatch {
                context: "vm-user cache flag",
                expected: self.use_cache.to_string(),
                found: use_cache.to_string(),
            });
        }
        let mut block = r.block("vm-user machine")?;
        self.machine.restore_snap(&mut block)?;
        block.finish()?;
        self.prefix_hash = r.u128("vm-user prefix hash")?;
        let n = r.count("vm-user replay count")?;
        self.pending_replay.clear();
        for _ in 0..n {
            let a = r.bytes("vm-user replay inbox a")?.to_vec();
            let b = r.bytes("vm-user replay inbox b")?.to_vec();
            self.pending_replay.push((a, b));
        }
        self.halted_view = match r.u8("vm-user halt tag")? {
            0 => None,
            1 => Some(r.bytes("vm-user halt output")?.to_vec()),
            found => return Err(SnapError::BadTag { context: "vm-user halt tag", found }),
        };
        // The decode table is a pure function of the program bytes; drop any
        // stale pin and let the next round rebuild (or re-share) it.
        self.decoded = None;
        Ok(())
    }
}

/// A server strategy interpreting a VM [`Program`].
#[derive(Clone, Debug)]
pub struct VmServer {
    machine: Machine,
    /// Reusable round buffers (see [`VmUser::io`]).
    io: RoundIo,
}

impl VmServer {
    /// Mounts `program` as a server strategy (default fuel).
    pub fn new(program: Program) -> Self {
        VmServer { machine: Machine::new(program), io: RoundIo::default() }
    }

    /// Mounts `program` with an explicit per-round fuel budget.
    ///
    /// # Panics
    ///
    /// Panics if `fuel == 0`.
    pub fn with_fuel(program: Program, fuel: u32) -> Self {
        VmServer { machine: Machine::with_fuel(program, fuel), io: RoundIo::default() }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl ServerStrategy for VmServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        self.io.set_inputs(input.from_user.as_bytes(), input.from_world.as_bytes());
        self.machine.round(&mut self.io);
        ServerOut {
            to_user: Message::from_bytes(&self.io.out_a),
            to_world: Message::from_bytes(&self.io.out_b),
        }
    }

    fn fork(&self) -> Option<goc_core::strategy::BoxedServer> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!("vm-server[{} bytes]", self.machine.program().len())
    }

    fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        self.machine.save_snap(w)
    }

    fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.machine.restore_snap(r)
    }
}

/// Library of small, useful programs.
pub mod programs {
    use crate::instr::{Chan, Instr};
    use crate::program::Program;

    /// A user/server that does nothing, forever.
    pub fn idle() -> Program {
        Program::default()
    }

    /// Sends `phrase` to the peer (channel A) every round.
    pub fn say_to_peer(phrase: &[u8]) -> Program {
        let mut instrs: Vec<Instr> = phrase.iter().map(|&b| Instr::EmitA(b)).collect();
        instrs.push(Instr::EndRound);
        Program::assemble(&instrs)
    }

    /// Sends `phrase` to the world (channel B) every round.
    pub fn say_to_world(phrase: &[u8]) -> Program {
        let mut instrs: Vec<Instr> = phrase.iter().map(|&b| Instr::EmitB(b)).collect();
        instrs.push(Instr::EndRound);
        Program::assemble(&instrs)
    }

    /// A relay server: forwards the peer's bytes to the world and the
    /// world's bytes back to the peer.
    pub fn relay() -> Program {
        Program::assemble(&[Instr::CopyA(Chan::B), Instr::CopyB(Chan::A), Instr::EndRound])
    }

    /// An echo server: bounces the peer's bytes straight back.
    pub fn echo() -> Program {
        Program::assemble(&[Instr::CopyA(Chan::A), Instr::EndRound])
    }

    /// A Caesar relay: forwards each peer byte to the world shifted by
    /// `shift`, and relays the world's bytes back to the peer verbatim.
    pub fn caesar_relay(shift: u8) -> Program {
        use crate::instr::Reg;
        let r = Reg::new(0);
        // loop: read.a r0; if r0 == EXHAUSTED's low byte? — registers hold
        // u64 so EXHAUSTED (0x100) is distinguishable, but jz only tests
        // zero. Use the simpler structure: rely on bounded inbox length by
        // unrolling a fixed number of byte slots (16).
        let mut instrs = Vec::new();
        for _ in 0..16 {
            instrs.push(Instr::ReadA(r));
            // After exhaustion the register holds 0x100; emitting its low
            // byte would send 0x00 bytes. Guard: skip emits once exhausted
            // is impossible without a comparison op, so instead shift first
            // and accept that this program is only correct for inboxes that
            // fill all 16 slots — tests use the assembled `relay` for
            // general forwarding and `caesar_relay_exact(n)` below for
            // fixed-length words.
            instrs.push(Instr::AddConst(r, shift));
            instrs.push(Instr::EmitBReg(r));
        }
        instrs.push(Instr::CopyB(Chan::A));
        Program::assemble(&instrs)
    }

    /// A Caesar relay specialized to `len`-byte messages: forwards exactly
    /// `len` peer bytes to the world, each shifted by `shift`, then relays
    /// world bytes back to the peer. Sends nothing when the inbox is empty
    /// (the first read yields the exhaustion sentinel, which the program
    /// detects by emitting only when a full message was read — approximated
    /// by reading all `len` bytes first).
    pub fn caesar_relay_exact(len: usize, shift: u8) -> Program {
        use crate::instr::Reg;
        let mut instrs = Vec::new();
        // Read all bytes into registers 0..len (len must be ≤ 7; register 7
        // is the emptiness flag).
        assert!(len <= 7, "caesar_relay_exact supports up to 7-byte words");
        for i in 0..len {
            instrs.push(Instr::ReadA(Reg::new(i as u8)));
        }
        // r7 = r0 ... if the first read was EXHAUSTED (0x100), low byte is 0,
        // but the register is non-zero, so jz won't fire; instead test a
        // fresh register seeded from in-box presence: read.a into r7 after a
        // re-read is awkward — use the inverse trick: r7 = 0; jz r7 skips
        // when inbox EMPTY is impossible to detect cheaply. Pragmatically:
        // when the inbox is empty every register holds EXHAUSTED and the
        // emitted low bytes are 0x00 — harmless noise the magic-word world
        // ignores. Keep the program simple and total.
        for i in 0..len {
            instrs.push(Instr::AddConst(Reg::new(i as u8), shift));
            instrs.push(Instr::EmitBReg(Reg::new(i as u8)));
        }
        instrs.push(Instr::CopyB(Chan::A));
        instrs.push(Instr::EndRound);
        Program::assemble(&instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::programs;
    use super::*;
    use goc_core::exec::Execution;
    use goc_core::goal::{evaluate_finite, Goal};
    use goc_core::rng::GocRng;
    use goc_core::toy;

    #[test]
    fn vm_user_achieves_magic_word_goal() {
        // A VM program that says the magic word through the relay server.
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(VmUser::new(programs::say_to_peer(b"hi"))),
            rng,
        );
        let t = exec.run(20);
        // The VM user never halts, so judge the world history directly.
        assert!(t.world_states.last().unwrap().heard_count > 0);
        // And with a halting check: a persistent user fails finite
        // evaluation (no halt) even though the world heard the word.
        assert!(!evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn vm_server_relays() {
        // VM relay server + plain SayThrough user achieves the finite goal.
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(2);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(VmServer::new(programs::relay())),
            Box::new(toy::SayThrough::new("hi")),
            rng,
        );
        let t = exec.run(30);
        assert!(evaluate_finite(&goal, &t).achieved, "stop: {:?}", t.stop);
    }

    #[test]
    fn vm_caesar_server_shifts() {
        let goal = toy::MagicWordGoal::new("hi");
        let mut rng = GocRng::seed_from_u64(3);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(VmServer::new(programs::caesar_relay_exact(2, 7))),
            Box::new(toy::SayThrough::compensating("hi", 7)),
            rng,
        );
        let t = exec.run(30);
        assert!(evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn vm_user_halt_surfaces_as_strategy_halt() {
        use crate::instr::Instr;
        let p = Program::assemble(&[
            Instr::EmitB(b'4'),
            Instr::EmitB(b'2'),
            Instr::Halt,
        ]);
        let mut u = VmUser::new(p);
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let _ = u.step(&mut ctx, &UserIn::default());
        let halt = UserStrategy::halted(&u).expect("should have halted");
        assert_eq!(halt.output.as_bytes(), b"42");
    }

    #[test]
    fn idle_program_is_silent() {
        let mut u = VmUser::new(programs::idle());
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = u.step(&mut ctx, &UserIn::default());
        assert!(out.to_server.is_silence());
        assert!(out.to_world.is_silence());
    }

    #[test]
    fn echo_program_echoes() {
        let mut s = VmServer::new(programs::echo());
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = s.step(
            &mut ctx,
            &ServerIn { from_user: Message::from("ping"), from_world: Message::silence() },
        );
        assert_eq!(out.to_user, Message::from("ping"));
    }

    #[test]
    fn names_mention_size() {
        assert!(VmUser::new(programs::idle()).name().contains("vm-user[0 bytes]"));
        assert!(VmServer::new(programs::relay()).name().contains("vm-server"));
    }

    #[test]
    fn vm_user_snapshot_resumes_bit_identically() {
        use goc_core::snap::{SnapReader, SnapWriter};
        for cache in [false, true] {
            let mk = || VmUser::new(programs::caesar_relay_exact(2, 3)).with_cache_enabled(cache);
            let input = UserIn { from_server: Message::from("ab"), from_world: Message::from("ok") };
            let mut live = mk();
            let mut rng = GocRng::seed_from_u64(0);
            for round in 0..9 {
                let mut ctx = StepCtx::new(round, &mut rng);
                let _ = live.step(&mut ctx, &input);
            }
            let mut bytes = Vec::new();
            live.save_snap(&mut SnapWriter::new(&mut bytes)).unwrap();

            let mut restored = mk();
            let mut r = SnapReader::new(&bytes);
            restored.restore_snap(&mut r).unwrap();
            r.finish().unwrap();

            for round in 9..25 {
                let mut c1 = StepCtx::new(round, &mut rng);
                let out_live = live.step(&mut c1, &input);
                let mut c2 = StepCtx::new(round, &mut rng);
                let out_restored = restored.step(&mut c2, &input);
                assert_eq!(out_live, out_restored, "cache={cache} diverged at round {round}");
            }
            assert_eq!(UserStrategy::halted(&live), UserStrategy::halted(&restored));
        }
    }

    #[test]
    fn vm_server_snapshot_roundtrips() {
        use goc_core::snap::{SnapReader, SnapWriter};
        let mut live = VmServer::new(programs::caesar_relay_exact(2, 5));
        let input = ServerIn { from_user: Message::from("hi"), from_world: Message::silence() };
        let mut rng = GocRng::seed_from_u64(1);
        for round in 0..5 {
            let mut ctx = StepCtx::new(round, &mut rng);
            let _ = live.step(&mut ctx, &input);
        }
        let mut bytes = Vec::new();
        live.save_snap(&mut SnapWriter::new(&mut bytes)).unwrap();
        let mut restored = VmServer::new(programs::caesar_relay_exact(2, 5));
        let mut r = SnapReader::new(&bytes);
        restored.restore_snap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.machine().regs(), live.machine().regs());
        assert_eq!(
            restored.machine().instructions_retired(),
            live.machine().instructions_retired()
        );
    }

    #[test]
    fn vm_snapshot_rejects_different_program() {
        use goc_core::snap::{SnapError, SnapReader, SnapWriter};
        let live = VmUser::new(programs::say_to_peer(b"hi")).with_cache_enabled(false);
        let mut bytes = Vec::new();
        live.save_snap(&mut SnapWriter::new(&mut bytes)).unwrap();
        let mut wrong = VmUser::new(programs::say_to_peer(b"yo!")).with_cache_enabled(false);
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            wrong.restore_snap(&mut r),
            Err(SnapError::Mismatch { context: "vm program", .. })
        ));
    }
}
