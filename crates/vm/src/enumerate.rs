//! Length-lexicographic enumeration of VM programs.
//!
//! Because program decoding is total, the length-lex enumeration of byte
//! strings **is** an enumeration of the entire strategy class — the literal
//! object the proof of Theorem 1 manipulates. The enumeration may be
//! restricted to an *alphabet* (a subset of bytes): the class shrinks to the
//! programs writable in that alphabet, which moves interesting programs to
//! much smaller indices, exactly like choosing a "broad class" of strategies
//! (paper §3, closing remark).

use crate::adapter::VmUser;
use crate::program::Program;
use goc_core::enumeration::StrategyEnumerator;
use goc_core::strategy::BoxedUser;

/// Enumerates byte strings over an alphabet in length-lex order and mounts
/// them as user strategies.
///
/// # Examples
///
/// ```
/// use goc_vm::enumerate::ProgramEnumerator;
///
/// // Full byte alphabet: index 0 is the empty program, 1..=256 the
/// // single-byte programs, and so on.
/// let e = ProgramEnumerator::full();
/// assert_eq!(e.program(0).len(), 0);
/// assert_eq!(e.program(1).len(), 1);
/// assert_eq!(e.program(257).len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramEnumerator {
    alphabet: Vec<u8>,
    max_len: Option<usize>,
    fuel: u32,
}

impl ProgramEnumerator {
    /// Enumerates over the full byte alphabet, unbounded length.
    pub fn full() -> Self {
        ProgramEnumerator {
            alphabet: (0..=255).collect(),
            max_len: None,
            fuel: crate::machine::DEFAULT_FUEL,
        }
    }

    /// Enumerates programs writable in `alphabet`, unbounded length.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is empty or contains duplicates.
    pub fn over(alphabet: impl Into<Vec<u8>>) -> Self {
        let alphabet = alphabet.into();
        assert!(!alphabet.is_empty(), "ProgramEnumerator requires a non-empty alphabet");
        let mut sorted = alphabet.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), alphabet.len(), "alphabet contains duplicate bytes");
        ProgramEnumerator { alphabet, max_len: None, fuel: crate::machine::DEFAULT_FUEL }
    }

    /// Caps program length, making the class finite.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// Sets the per-round fuel of mounted machines.
    ///
    /// # Panics
    ///
    /// Panics if `fuel == 0`.
    pub fn with_fuel(mut self, fuel: u32) -> Self {
        assert!(fuel > 0, "fuel must be positive");
        self.fuel = fuel;
        self
    }

    /// Number of programs of length exactly `len` (may saturate at
    /// `u128::MAX` for huge alphabets/lengths).
    fn count_of_len(&self, len: usize) -> u128 {
        let a = self.alphabet.len() as u128;
        let mut n: u128 = 1;
        for _ in 0..len {
            n = n.saturating_mul(a);
        }
        n
    }

    /// Total number of programs, if the class is finite and fits in `usize`.
    pub fn total(&self) -> Option<usize> {
        let max_len = self.max_len?;
        let mut total: u128 = 0;
        for len in 0..=max_len {
            total = total.saturating_add(self.count_of_len(len));
        }
        usize::try_from(total).ok()
    }

    /// The `index`-th program in length-lex order.
    ///
    /// For finite classes (length-capped), indices past the end wrap around
    /// — callers going through [`StrategyEnumerator`] never see that because
    /// `strategy` bounds-checks first.
    pub fn program(&self, index: usize) -> Program {
        let a = self.alphabet.len() as u128;
        let mut remaining = index as u128;
        let mut len = 0usize;
        loop {
            let count = self.count_of_len(len);
            if remaining < count {
                break;
            }
            remaining -= count;
            len += 1;
            if let Some(cap) = self.max_len {
                if len > cap {
                    // Wrap for out-of-range finite indices.
                    remaining %= self.total().unwrap_or(1).max(1) as u128;
                    len = 0;
                }
            }
        }
        // Write `remaining` in base `a`, most significant digit first,
        // padded to `len` digits.
        let mut digits = vec![0u8; len];
        let mut value = remaining;
        for slot in digits.iter_mut().rev() {
            *slot = self.alphabet[(value % a) as usize];
            value /= a;
        }
        Program::from_bytes(digits)
    }

    /// The length-lex index of `program`, if it is writable in the alphabet
    /// (and within the length cap).
    pub fn index_of(&self, program: &Program) -> Option<usize> {
        if let Some(cap) = self.max_len {
            if program.len() > cap {
                return None;
            }
        }
        let a = self.alphabet.len() as u128;
        let mut offset: u128 = 0;
        for len in 0..program.len() {
            offset = offset.saturating_add(self.count_of_len(len));
        }
        let mut value: u128 = 0;
        for &byte in program.as_bytes() {
            let digit = self.alphabet.iter().position(|&b| b == byte)? as u128;
            value = value.saturating_mul(a).saturating_add(digit);
        }
        usize::try_from(offset + value).ok()
    }
}

impl StrategyEnumerator for ProgramEnumerator {
    fn len(&self) -> Option<usize> {
        self.total()
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        if let Some(total) = self.total() {
            if index >= total {
                return None;
            }
        }
        Some(Box::new(VmUser::with_fuel(self.program(index), self.fuel)))
    }

    fn name(&self) -> String {
        match self.max_len {
            Some(cap) => format!("vm-programs(|Σ|={}, len≤{cap})", self.alphabet.len()),
            None => format!("vm-programs(|Σ|={})", self.alphabet.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enumeration_orders_by_length_then_lex() {
        let e = ProgramEnumerator::full();
        assert_eq!(e.program(0).as_bytes(), b"");
        assert_eq!(e.program(1).as_bytes(), &[0]);
        assert_eq!(e.program(256).as_bytes(), &[255]);
        assert_eq!(e.program(257).as_bytes(), &[0, 0]);
        assert_eq!(e.program(258).as_bytes(), &[0, 1]);
    }

    #[test]
    fn small_alphabet_enumeration() {
        let e = ProgramEnumerator::over(vec![10u8, 20]);
        assert_eq!(e.program(0).as_bytes(), b"");
        assert_eq!(e.program(1).as_bytes(), &[10]);
        assert_eq!(e.program(2).as_bytes(), &[20]);
        assert_eq!(e.program(3).as_bytes(), &[10, 10]);
        assert_eq!(e.program(4).as_bytes(), &[10, 20]);
        assert_eq!(e.program(5).as_bytes(), &[20, 10]);
        assert_eq!(e.program(6).as_bytes(), &[20, 20]);
        assert_eq!(e.program(7).as_bytes(), &[10, 10, 10]);
    }

    #[test]
    fn index_of_inverts_program() {
        let e = ProgramEnumerator::over(vec![1u8, 2, 3]);
        for idx in 0..200 {
            let p = e.program(idx);
            assert_eq!(e.index_of(&p), Some(idx), "at index {idx}");
        }
    }

    #[test]
    fn index_of_rejects_foreign_bytes() {
        let e = ProgramEnumerator::over(vec![1u8, 2]);
        assert_eq!(e.index_of(&Program::from_bytes(vec![9])), None);
    }

    #[test]
    fn capped_class_is_finite() {
        let e = ProgramEnumerator::over(vec![0u8, 1]).with_max_len(3);
        // 1 + 2 + 4 + 8 = 15 programs.
        assert_eq!(e.total(), Some(15));
        assert_eq!(StrategyEnumerator::len(&e), Some(15));
        assert!(e.strategy(14).is_some());
        assert!(e.strategy(15).is_none());
    }

    #[test]
    fn uncapped_class_is_infinite() {
        let e = ProgramEnumerator::full();
        assert_eq!(StrategyEnumerator::len(&e), None);
        assert!(e.strategy(1_000_000).is_some());
    }

    #[test]
    #[should_panic(expected = "non-empty alphabet")]
    fn empty_alphabet_panics() {
        let _ = ProgramEnumerator::over(Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_alphabet_panics() {
        let _ = ProgramEnumerator::over(vec![1u8, 1]);
    }

    #[test]
    fn strategies_mount_and_run() {
        use goc_core::msg::UserIn;
        use goc_core::rng::GocRng;
        use goc_core::strategy::{StepCtx, UserStrategy};
        let e = ProgramEnumerator::full();
        // Index 2 is the single-byte program [1] = EmitA(0) truncated.
        let mut u = e.strategy(2).unwrap();
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let _ = u.step(&mut ctx, &UserIn::default()); // must not panic
    }

    #[test]
    fn name_reports_alphabet() {
        assert!(ProgramEnumerator::full().name().contains("|Σ|=256"));
        assert!(ProgramEnumerator::over(vec![1u8]).with_max_len(4).name().contains("len≤4"));
    }
}
