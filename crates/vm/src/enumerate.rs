//! Length-lexicographic enumeration of VM programs.
//!
//! Because program decoding is total, the length-lex enumeration of byte
//! strings **is** an enumeration of the entire strategy class — the literal
//! object the proof of Theorem 1 manipulates. The enumeration may be
//! restricted to an *alphabet* (a subset of bytes): the class shrinks to the
//! programs writable in that alphabet, which moves interesting programs to
//! much smaller indices, exactly like choosing a "broad class" of strategies
//! (paper §3, closing remark).

use crate::adapter::VmUser;
use crate::instr::Instr;
use crate::program::Program;
use goc_core::enumeration::StrategyEnumerator;
use goc_core::par;
use goc_core::par::pool;
use goc_core::strategy::BoxedUser;
use std::collections::HashSet;
use std::fmt::Debug;
use std::sync::{Arc, Mutex, PoisonError};

/// Enumerates byte strings over an alphabet in length-lex order and mounts
/// them as user strategies.
///
/// # Examples
///
/// ```
/// use goc_vm::enumerate::ProgramEnumerator;
///
/// // Full byte alphabet: index 0 is the empty program, 1..=256 the
/// // single-byte programs, and so on.
/// let e = ProgramEnumerator::full();
/// assert_eq!(e.program(0).len(), 0);
/// assert_eq!(e.program(1).len(), 1);
/// assert_eq!(e.program(257).len(), 2);
/// ```
#[derive(Clone)]
pub struct ProgramEnumerator {
    alphabet: Vec<u8>,
    max_len: Option<usize>,
    fuel: u32,
    /// Pins candidate-cache use on mounted users (None = `GOC_VM_CACHE`).
    cache_override: Option<bool>,
    /// Pipelined-prewarm handoff: candidates built by background pool jobs
    /// ([`StrategyEnumerator::prefetch`]) wait here until the matching
    /// [`StrategyEnumerator::batch`] call claims them. Shared across clones
    /// (an `Arc`), so the deduped wrapper and the live enumerator drain the
    /// same stash.
    prewarm: Arc<PrewarmShared>,
}

impl Debug for ProgramEnumerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramEnumerator")
            .field("alphabet", &self.alphabet)
            .field("max_len", &self.max_len)
            .field("fuel", &self.fuel)
            .field("cache_override", &self.cache_override)
            .finish_non_exhaustive()
    }
}

/// Shared state between the consumer and its background prewarm jobs.
#[derive(Default)]
struct PrewarmShared {
    state: Mutex<PrewarmState>,
}

#[derive(Default)]
struct PrewarmState {
    /// In-flight background jobs (joined before their output is drained).
    pending: Vec<pool::JobHandle>,
    /// Built candidates keyed by full-enumeration index. At most one
    /// lookahead window wide, so linear scans are fine.
    ready: Vec<(usize, VmUser)>,
}

fn lock_prewarm(shared: &PrewarmShared) -> std::sync::MutexGuard<'_, PrewarmState> {
    // A panicking background job is re-raised at join; the state itself is
    // never left torn (Vec ops are panic-atomic here), so poison is inert.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ProgramEnumerator {
    /// Enumerates over the full byte alphabet, unbounded length.
    pub fn full() -> Self {
        ProgramEnumerator {
            alphabet: (0..=255).collect(),
            max_len: None,
            fuel: crate::machine::DEFAULT_FUEL,
            cache_override: None,
            prewarm: Arc::default(),
        }
    }

    /// Enumerates programs writable in `alphabet`, unbounded length.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is empty or contains duplicates.
    pub fn over(alphabet: impl Into<Vec<u8>>) -> Self {
        let alphabet = alphabet.into();
        assert!(!alphabet.is_empty(), "ProgramEnumerator requires a non-empty alphabet");
        let mut sorted = alphabet.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), alphabet.len(), "alphabet contains duplicate bytes");
        ProgramEnumerator {
            alphabet,
            max_len: None,
            fuel: crate::machine::DEFAULT_FUEL,
            cache_override: None,
            prewarm: Arc::default(),
        }
    }

    /// Caps program length, making the class finite.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// Sets the per-round fuel of mounted machines.
    ///
    /// # Panics
    ///
    /// Panics if `fuel == 0`.
    pub fn with_fuel(mut self, fuel: u32) -> Self {
        assert!(fuel > 0, "fuel must be positive");
        self.fuel = fuel;
        self
    }

    /// Pins candidate-cache use on every user this enumeration mounts,
    /// overriding the `GOC_VM_CACHE` default (see
    /// [`VmUser::with_cache_enabled`]). Benchmarks comparing interpreter
    /// paths use this to keep memoisation out of the measurement.
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_override = Some(enabled);
        self
    }

    /// Mounts the `index`-th program with this enumeration's fuel and cache
    /// settings applied.
    fn make_user(&self, index: usize) -> VmUser {
        let user = VmUser::with_fuel(self.program(index), self.fuel);
        match self.cache_override {
            Some(enabled) => user.with_cache_enabled(enabled),
            None => user,
        }
    }

    /// Dispatches background jobs that build (and deep-prewarm) the users
    /// for `indices` on idle pool workers. No-op unless the batch
    /// interpreter is active, `GOC_PREWARM` is on, and there is at least one
    /// idle worker (`thread_count() > 1`) — in every other configuration a
    /// later [`batch`](StrategyEnumerator::batch) builds inline exactly as
    /// before.
    ///
    /// Soundness: `make_user` is a pure function of the index, and the deep
    /// prewarm ([`crate::adapter::prewarm_deep`]) only inserts
    /// value-identical entries into the candidate cache, so consuming a
    /// stashed user is observably identical to building it inline.
    fn prefetch_impl(&self, indices: &[usize]) {
        if !crate::batch::enabled() || !par::prewarm_enabled() || par::thread_count() <= 1 {
            return;
        }
        let total = self.total();
        let wanted: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| total.is_none_or(|t| i < t))
            .collect();
        if wanted.is_empty() {
            return;
        }
        // One outstanding window at a time: anything a consumer never
        // claimed is stale (schedule moved on) — join and drop it.
        let leftovers = {
            let mut state = lock_prewarm(&self.prewarm);
            std::mem::take(&mut state.pending)
        };
        for job in leftovers {
            job.join();
        }
        {
            let mut state = lock_prewarm(&self.prewarm);
            let stale = state.ready.len();
            if stale > 0 {
                goc_core::obs_count_nd!("vm.prewarm.stale", stale as u64);
                state.ready.clear();
            }
        }
        // Split the window across the idle workers so candidate
        // construction and fuel burn parallelise, not just pipeline.
        // `submit` alone only guarantees one worker, which would serialise
        // the shards — reserve the full complement first.
        let workers = (par::thread_count() - 1).min(wanted.len()).max(1);
        pool::ensure_workers(workers);
        let shard_len = wanted.len().div_ceil(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in wanted.chunks(shard_len) {
            let shard: Vec<usize> = shard.to_vec();
            let spec = self.clone();
            let shared = Arc::clone(&self.prewarm);
            goc_core::obs_count_nd!("vm.prewarm.jobs", 1u64);
            handles.push(pool::submit(move || {
                // The worker thread has its own batch override (off) — pin
                // the interpreter the dispatching thread checked.
                crate::batch::with_batch(true, || {
                    let mut users: Vec<(usize, VmUser)> =
                        shard.iter().map(|&i| (i, spec.make_user(i))).collect();
                    crate::adapter::prewarm_deep(
                        users.iter_mut().map(|(_, u)| u),
                        crate::adapter::prewarm_depth(),
                    );
                    lock_prewarm(&shared).ready.append(&mut users);
                });
            }));
        }
        lock_prewarm(&self.prewarm).pending = handles;
    }

    /// Claims background-built users for `wanted` (per-slot original
    /// indices; `None` = out of range), joining any in-flight jobs first.
    /// Slots without a stashed user come back `None` for the caller to
    /// build inline.
    fn take_prewarmed(&self, wanted: &[Option<usize>]) -> Vec<Option<VmUser>> {
        let mut out: Vec<Option<VmUser>> = wanted.iter().map(|_| None).collect();
        let pending = {
            let mut state = lock_prewarm(&self.prewarm);
            std::mem::take(&mut state.pending)
        };
        let had_jobs = !pending.is_empty();
        for job in pending {
            job.join();
        }
        let mut state = lock_prewarm(&self.prewarm);
        if state.ready.is_empty() {
            return out;
        }
        let mut hits = 0u64;
        for (slot, &want) in wanted.iter().enumerate() {
            let Some(index) = want else { continue };
            if let Some(pos) = state.ready.iter().position(|&(i, _)| i == index) {
                out[slot] = Some(state.ready.swap_remove(pos).1);
                hits += 1;
            }
        }
        if had_jobs {
            goc_core::obs_count_nd!("vm.prewarm.hits", hits);
        }
        let stale = state.ready.len();
        if stale > 0 {
            goc_core::obs_count_nd!("vm.prewarm.stale", stale as u64);
            // Dropping recycles the users' buffers into this thread's arena.
            state.ready.clear();
        }
        out
    }

    /// Builds the users for `orig` (per-slot original indices; `None` = out
    /// of range) under the batch interpreter: stashed background-built users
    /// are claimed first, the rest are built inline and first-round
    /// prewarmed exactly as the non-pipelined path does.
    fn build_batch(&self, orig: &[Option<usize>]) -> Vec<Option<VmUser>> {
        let total = self.total();
        let wanted: Vec<Option<usize>> = orig
            .iter()
            .map(|&o| o.filter(|&i| total.is_none_or(|t| i < t)))
            .collect();
        let mut users = self.take_prewarmed(&wanted);
        let mut fresh: Vec<bool> = vec![false; users.len()];
        for (slot, &want) in wanted.iter().enumerate() {
            if users[slot].is_none() {
                if let Some(index) = want {
                    users[slot] = Some(self.make_user(index));
                    fresh[slot] = true;
                }
            }
        }
        // Stashed users already carry their shared decode and cache
        // entries; only inline-built candidates need the lockstep prewarm.
        crate::adapter::prewarm_batch(
            users
                .iter_mut()
                .zip(fresh.iter())
                .filter_map(|(u, &was_fresh)| if was_fresh { u.as_mut() } else { None }),
        );
        users
    }

    /// Number of programs of length exactly `len` (may saturate at
    /// `u128::MAX` for huge alphabets/lengths).
    fn count_of_len(&self, len: usize) -> u128 {
        let a = self.alphabet.len() as u128;
        let mut n: u128 = 1;
        for _ in 0..len {
            n = n.saturating_mul(a);
        }
        n
    }

    /// Total number of programs, if the class is finite and fits in `usize`.
    pub fn total(&self) -> Option<usize> {
        let max_len = self.max_len?;
        let mut total: u128 = 0;
        for len in 0..=max_len {
            total = total.saturating_add(self.count_of_len(len));
        }
        usize::try_from(total).ok()
    }

    /// The `index`-th program in length-lex order.
    ///
    /// For finite classes (length-capped), indices past the end wrap around
    /// — callers going through [`StrategyEnumerator`] never see that because
    /// `strategy` bounds-checks first.
    pub fn program(&self, index: usize) -> Program {
        let a = self.alphabet.len() as u128;
        let mut remaining = index as u128;
        let mut len = 0usize;
        loop {
            let count = self.count_of_len(len);
            if remaining < count {
                break;
            }
            remaining -= count;
            len += 1;
            if let Some(cap) = self.max_len {
                if len > cap {
                    // Wrap for out-of-range finite indices.
                    remaining %= self.total().unwrap_or(1).max(1) as u128;
                    len = 0;
                }
            }
        }
        // Write `remaining` in base `a`, most significant digit first,
        // padded to `len` digits. Under batch mode the digit buffer comes
        // from the candidate arena (and returns to it when the candidate is
        // eliminated, via `VmUser`'s drop).
        let mut digits = if crate::batch::enabled() {
            let mut v = crate::arena::take_bytes(len);
            v.resize(len, 0);
            v
        } else {
            vec![0u8; len]
        };
        let mut value = remaining;
        for slot in digits.iter_mut().rev() {
            *slot = self.alphabet[(value % a) as usize];
            value /= a;
        }
        Program::from_bytes(digits)
    }

    /// The length-lex index of `program`, if it is writable in the alphabet
    /// (and within the length cap).
    pub fn index_of(&self, program: &Program) -> Option<usize> {
        if let Some(cap) = self.max_len {
            if program.len() > cap {
                return None;
            }
        }
        let a = self.alphabet.len() as u128;
        let mut offset: u128 = 0;
        for len in 0..program.len() {
            offset = offset.saturating_add(self.count_of_len(len));
        }
        let mut value: u128 = 0;
        for &byte in program.as_bytes() {
            let digit = self.alphabet.iter().position(|&b| b == byte)? as u128;
            value = value.saturating_mul(a).saturating_add(digit);
        }
        usize::try_from(offset + value).ok()
    }

    /// Collapses this (finite) enumeration to one representative program per
    /// [`canonical_signature`] — the cheap dedup pass that stops the
    /// universal users probing semantically-identical short programs twice.
    /// The representative for each signature is its lowest-index (i.e.
    /// shortest, then lexicographically first) program, and representatives
    /// keep their relative order, so the deduped class is still length-lex.
    ///
    /// # Panics
    ///
    /// Panics if the class is infinite or too large to scan (no `max_len`,
    /// or `total()` overflows `usize`).
    pub fn deduped(self) -> DedupedProgramEnumerator {
        let total = self
            .total()
            .expect("deduped() needs a finite, scannable class — set with_max_len first");
        let mut seen = HashSet::new();
        let mut representatives = Vec::new();
        for index in 0..total {
            let program = self.program(index);
            let sig = canonical_signature(&program);
            // Soundness guard: the signature is only merge-safe for
            // jump-free linear decodings. A program whose execution reaches
            // a jump must keep the opaque verbatim signature (tag byte 1 +
            // exact program bytes) — its byte *layout* is semantically
            // significant, so no two such programs may ever be merged. A
            // future widening of `canonical_signature` over jumps has to
            // carry a layout-aware equivalence proof past this assertion.
            debug_assert!(
                !linear_decode_reaches_jump(&program)
                    || sig.split_first() == Some((&1u8, program.as_bytes())),
                "jumpy program {:?} lost its opaque signature (got {:?})",
                program.as_bytes(),
                sig
            );
            if seen.insert(sig) {
                representatives.push(index);
            }
        }
        DedupedProgramEnumerator { inner: self, representatives }
    }
}

/// `true` when `program`'s linear decoding reaches a jump before any
/// `halt`/`end` — exactly the programs [`canonical_signature`] must keep
/// opaque (jumps after a linear `halt`/`end` are unreachable, since nothing
/// before them can jump past it).
fn linear_decode_reaches_jump(program: &Program) -> bool {
    for instr in program.instructions() {
        match instr {
            Instr::Jmp(_) | Instr::JmpIfZero(_, _) => return true,
            Instr::Halt | Instr::EndRound => return false,
            _ => {}
        }
    }
    false
}

/// A cheap, sound canonical signature: two programs with equal signatures
/// are observably identical as strategies (same outputs and halt behaviour
/// for every input history and any fuel budget).
///
/// Jump-free programs execute their canonical decoding linearly from the
/// top each round, so their semantics are exactly that instruction list,
/// truncated at the first `halt` (kept — halting is observable) or
/// `end` (dropped — running off the code end ends the round the same way).
/// Re-encoding the truncated list normalises the many byte spellings of one
/// instruction (opcodes and registers decode modulo), so e.g. `[0x01, b'h']`
/// and `[0x11, b'h']` — both `emit.a 0x68` — share a signature.
///
/// Programs containing any jump are returned verbatim (tagged separately):
/// a jump may land mid-instruction, making the byte layout itself
/// semantically significant, so no two of them are ever merged.
pub fn canonical_signature(program: &Program) -> Vec<u8> {
    let mut linear = Vec::new();
    for instr in program.instructions() {
        match instr {
            Instr::Jmp(_) | Instr::JmpIfZero(_, _) => {
                let mut raw = Vec::with_capacity(program.len() + 1);
                raw.push(1u8); // tag: opaque byte layout
                raw.extend_from_slice(program.as_bytes());
                return raw;
            }
            Instr::Halt => {
                linear.push(Instr::Halt);
                break;
            }
            Instr::EndRound => break,
            other => linear.push(other),
        }
    }
    let mut sig = vec![0u8]; // tag: normalised linear decoding
    for instr in &linear {
        instr.encode(&mut sig);
    }
    sig
}

/// A [`ProgramEnumerator`] restricted to one representative per canonical
/// signature (see [`ProgramEnumerator::deduped`]). Indices are dense over
/// the representatives; [`DedupedProgramEnumerator::original_index`] maps
/// back into the full enumeration.
#[derive(Clone, Debug)]
pub struct DedupedProgramEnumerator {
    inner: ProgramEnumerator,
    representatives: Vec<usize>,
}

impl DedupedProgramEnumerator {
    /// Number of semantically-distinct programs in the class.
    pub fn total(&self) -> usize {
        self.representatives.len()
    }

    /// The full-enumeration index of the `index`-th representative.
    pub fn original_index(&self, index: usize) -> Option<usize> {
        self.representatives.get(index).copied()
    }

    /// The `index`-th representative program.
    pub fn program(&self, index: usize) -> Option<Program> {
        Some(self.inner.program(*self.representatives.get(index)?))
    }
}

impl StrategyEnumerator for DedupedProgramEnumerator {
    fn len(&self) -> Option<usize> {
        Some(self.representatives.len())
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        self.inner.strategy(*self.representatives.get(index)?)
    }

    fn batch(&self, indices: &[usize]) -> Vec<Option<BoxedUser>> {
        let mapped: Vec<Option<usize>> =
            indices.iter().map(|&i| self.representatives.get(i).copied()).collect();
        let total = self.inner.total();
        let in_range =
            |orig: usize| total.map_or(true, |t| orig < t);
        if crate::batch::enabled() {
            let users = self.inner.build_batch(&mapped);
            return users.into_iter().map(|u| u.map(|u| Box::new(u) as BoxedUser)).collect();
        }
        let users = par::par_map(mapped.len(), |k| {
            mapped[k].and_then(|orig| in_range(orig).then(|| self.inner.make_user(orig)))
        });
        users.into_iter().map(|u| u.map(|u| Box::new(u) as BoxedUser)).collect()
    }

    fn prefetch(&self, indices: &[usize]) {
        let mapped: Vec<usize> =
            indices.iter().filter_map(|&i| self.representatives.get(i).copied()).collect();
        self.inner.prefetch_impl(&mapped);
    }

    fn name(&self) -> String {
        format!("{} deduped({})", self.inner.name(), self.representatives.len())
    }
}

impl StrategyEnumerator for ProgramEnumerator {
    fn len(&self) -> Option<usize> {
        self.total()
    }

    fn strategy(&self, index: usize) -> Option<BoxedUser> {
        if let Some(total) = self.total() {
            if index >= total {
                return None;
            }
        }
        Some(Box::new(self.make_user(index)))
    }

    fn batch(&self, indices: &[usize]) -> Vec<Option<BoxedUser>> {
        let total = self.total();
        if crate::batch::enabled() {
            // Batch mode: claim any background-built candidates from the
            // prewarm stash, build the rest inline on the calling thread
            // (arena-backed buffers are thread-local) and prewarm those —
            // one shared decode per program text plus a lockstep first
            // round for cache-enabled candidates (`adapter::prewarm_batch`).
            let orig: Vec<Option<usize>> = indices.iter().map(|&i| Some(i)).collect();
            let users = self.build_batch(&orig);
            return users.into_iter().map(|u| u.map(|u| Box::new(u) as BoxedUser)).collect();
        }
        // Scalar mode: VmUser is Send and construction is pure, so
        // materialise the batch on the worker pool; boxing happens on the
        // calling thread because BoxedUser carries no Send bound.
        let users = par::par_map(indices.len(), |k| {
            let index = indices[k];
            total.map_or(true, |t| index < t).then(|| self.make_user(index))
        });
        users.into_iter().map(|u| u.map(|u| Box::new(u) as BoxedUser)).collect()
    }

    fn prefetch(&self, indices: &[usize]) {
        self.prefetch_impl(indices);
    }

    fn name(&self) -> String {
        match self.max_len {
            Some(cap) => format!("vm-programs(|Σ|={}, len≤{cap})", self.alphabet.len()),
            None => format!("vm-programs(|Σ|={})", self.alphabet.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enumeration_orders_by_length_then_lex() {
        let e = ProgramEnumerator::full();
        assert_eq!(e.program(0).as_bytes(), b"");
        assert_eq!(e.program(1).as_bytes(), &[0]);
        assert_eq!(e.program(256).as_bytes(), &[255]);
        assert_eq!(e.program(257).as_bytes(), &[0, 0]);
        assert_eq!(e.program(258).as_bytes(), &[0, 1]);
    }

    #[test]
    fn small_alphabet_enumeration() {
        let e = ProgramEnumerator::over(vec![10u8, 20]);
        assert_eq!(e.program(0).as_bytes(), b"");
        assert_eq!(e.program(1).as_bytes(), &[10]);
        assert_eq!(e.program(2).as_bytes(), &[20]);
        assert_eq!(e.program(3).as_bytes(), &[10, 10]);
        assert_eq!(e.program(4).as_bytes(), &[10, 20]);
        assert_eq!(e.program(5).as_bytes(), &[20, 10]);
        assert_eq!(e.program(6).as_bytes(), &[20, 20]);
        assert_eq!(e.program(7).as_bytes(), &[10, 10, 10]);
    }

    #[test]
    fn index_of_inverts_program() {
        let e = ProgramEnumerator::over(vec![1u8, 2, 3]);
        for idx in 0..200 {
            let p = e.program(idx);
            assert_eq!(e.index_of(&p), Some(idx), "at index {idx}");
        }
    }

    #[test]
    fn index_of_rejects_foreign_bytes() {
        let e = ProgramEnumerator::over(vec![1u8, 2]);
        assert_eq!(e.index_of(&Program::from_bytes(vec![9])), None);
    }

    #[test]
    fn capped_class_is_finite() {
        let e = ProgramEnumerator::over(vec![0u8, 1]).with_max_len(3);
        // 1 + 2 + 4 + 8 = 15 programs.
        assert_eq!(e.total(), Some(15));
        assert_eq!(StrategyEnumerator::len(&e), Some(15));
        assert!(e.strategy(14).is_some());
        assert!(e.strategy(15).is_none());
    }

    #[test]
    fn uncapped_class_is_infinite() {
        let e = ProgramEnumerator::full();
        assert_eq!(StrategyEnumerator::len(&e), None);
        assert!(e.strategy(1_000_000).is_some());
    }

    #[test]
    #[should_panic(expected = "non-empty alphabet")]
    fn empty_alphabet_panics() {
        let _ = ProgramEnumerator::over(Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_alphabet_panics() {
        let _ = ProgramEnumerator::over(vec![1u8, 1]);
    }

    #[test]
    fn strategies_mount_and_run() {
        use goc_core::msg::UserIn;
        use goc_core::rng::GocRng;
        use goc_core::strategy::{StepCtx, UserStrategy};
        let e = ProgramEnumerator::full();
        // Index 2 is the single-byte program [1] = EmitA(0) truncated.
        let mut u = e.strategy(2).unwrap();
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let _ = u.step(&mut ctx, &UserIn::default()); // must not panic
    }

    #[test]
    fn name_reports_alphabet() {
        assert!(ProgramEnumerator::full().name().contains("|Σ|=256"));
        assert!(ProgramEnumerator::over(vec![1u8]).with_max_len(4).name().contains("len≤4"));
    }

    #[test]
    fn batch_matches_strategy_in_parallel() {
        let e = ProgramEnumerator::over(vec![0u8, 1]).with_max_len(3);
        let indices = [0usize, 5, 14, 15, 99, 7];
        let got = goc_core::par::with_thread_count(4, || e.batch(&indices));
        assert_eq!(got.len(), indices.len());
        for (k, &i) in indices.iter().enumerate() {
            assert_eq!(got[k].is_some(), e.strategy(i).is_some(), "index {i}");
        }
    }

    #[test]
    fn signature_normalises_opcode_aliases() {
        // 0x01 and 0x11 both decode to EmitA (opcodes are mod 16).
        let a = Program::from_bytes(vec![0x01, b'h']);
        let b = Program::from_bytes(vec![0x11, b'h']);
        assert_ne!(a, b);
        assert_eq!(canonical_signature(&a), canonical_signature(&b));
    }

    #[test]
    fn signature_truncates_after_round_end_and_halt() {
        let stop = Program::assemble(&[Instr::EmitA(1), Instr::EndRound]);
        let stop_tail = Program::assemble(&[Instr::EmitA(1), Instr::EndRound, Instr::EmitA(9)]);
        let bare = Program::assemble(&[Instr::EmitA(1)]);
        assert_eq!(canonical_signature(&stop), canonical_signature(&stop_tail));
        assert_eq!(canonical_signature(&stop), canonical_signature(&bare));
        // Halt is observable and must stay in the signature.
        let halts = Program::assemble(&[Instr::EmitA(1), Instr::Halt]);
        assert_ne!(canonical_signature(&halts), canonical_signature(&bare));
    }

    #[test]
    fn signature_keeps_jumpy_programs_apart() {
        // Identical linear decodings, but jumps make byte layout semantic:
        // these must not share a signature with each other or with anything
        // normalised.
        let a = Program::assemble(&[Instr::Jmp(1), Instr::EmitA(1)]);
        let b = Program::assemble(&[Instr::Jmp(2), Instr::EmitA(1)]);
        assert_ne!(canonical_signature(&a), canonical_signature(&b));
        assert_eq!(canonical_signature(&a), canonical_signature(&a));
    }

    #[test]
    fn deduped_class_shrinks_and_keeps_representatives() {
        let e = ProgramEnumerator::full().with_max_len(1);
        let full_total = e.total().unwrap(); // 257 programs
        let d = e.deduped();
        assert!(d.total() < full_total, "aliased single-byte opcodes must merge");
        // Representatives are distinct signatures, in ascending index order.
        let mut sigs = HashSet::new();
        let mut last = None;
        for i in 0..d.total() {
            let orig = d.original_index(i).unwrap();
            assert!(last.is_none_or(|prev| prev < orig));
            last = Some(orig);
            assert!(sigs.insert(canonical_signature(&d.program(i).unwrap())));
        }
        // The empty program (index 0) is always its own representative.
        assert_eq!(d.original_index(0), Some(0));
        assert!(d.strategy(d.total()).is_none());
        assert!(d.name().contains("deduped"));
    }

    #[test]
    fn deduped_batch_matches_strategy() {
        let d = ProgramEnumerator::over(vec![0u8, 1, 15]).with_max_len(2).deduped();
        let indices: Vec<usize> = (0..d.total() + 2).collect();
        let got = d.batch(&indices);
        for (k, &i) in indices.iter().enumerate() {
            assert_eq!(got[k].is_some(), d.strategy(i).is_some(), "index {i}");
        }
    }

    #[test]
    fn deduped_never_merges_inequivalent_jumpy_programs() {
        use crate::machine::{Machine, RoundIo};
        // Identical except for the jump displacement — and genuinely
        // inequivalent, because the jumps land on different byte offsets:
        // +2 lands on the `emit.a 0x41` instruction, +3 lands *inside* it
        // (0x41 % 16 = 1 re-decodes as `emit.a` with a missing operand).
        let p1 = Program::from_bytes(vec![0x0b, 0x02, 0x01, 0x41]);
        let p2 = Program::from_bytes(vec![0x0b, 0x03, 0x01, 0x41]);
        let first_round = |p: &Program| {
            let mut m = Machine::with_fuel(p.clone(), 16);
            let mut io = RoundIo::default();
            m.round(&mut io);
            io.out_a
        };
        assert_ne!(first_round(&p1), first_round(&p2), "the pair must be inequivalent");
        assert_ne!(canonical_signature(&p1), canonical_signature(&p2));
        // A dedup over a class containing both must keep both.
        let class =
            ProgramEnumerator::over(vec![0x0b, 0x02, 0x03, 0x01, 0x41]).with_max_len(4).deduped();
        let kept: Vec<Program> = (0..class.total()).filter_map(|i| class.program(i)).collect();
        for p in [&p1, &p2] {
            assert!(
                kept.iter().any(|k| k.as_bytes() == p.as_bytes()),
                "jumpy program {:?} was merged away",
                p.as_bytes()
            );
        }
    }
}
