//! The candidate arena: recycled buffers for spawn/eliminate churn.
//!
//! The universal users spawn and eliminate candidates constantly — every
//! schedule slot builds a fresh [`VmUser`](crate::adapter::VmUser) (program
//! bytes + a [`RoundIo`] with four outbox/inbox `Vec`s) and drops the
//! previous one. Under batch mode (`GOC_BATCH`, see [`crate::batch`]) those
//! buffers come from and return to a thread-local free-list instead of the
//! global allocator: one arena per enumeration thread, recycled on
//! elimination, so steady-state candidate turnover costs zero heap traffic.
//!
//! Lifetime safety: recycling happens on candidate *drop*, and the
//! [`cache`](crate::cache) pins its **own** copy of every program it
//! records (`Entry.program: Box<[u8]>`), so recycling an eliminated
//! candidate's buffers can never dangle or corrupt a cached round — the
//! cache never aliases arena memory (see DESIGN.md §11).
//!
//! The free-lists are bounded ([`MAX_POOLED`] buffers, each at most
//! [`MAX_VEC_CAP`] bytes of capacity) so a burst of huge messages cannot pin
//! unbounded memory. Effectiveness is observable through the `vm.arena.reuse`
//! / `vm.arena.alloc` process-scope counters.

use crate::machine::RoundIo;
use std::cell::RefCell;

/// Per-thread cap on pooled buffers.
const MAX_POOLED: usize = 1024;

/// Buffers with more capacity than this are dropped rather than pooled.
const MAX_VEC_CAP: usize = 1 << 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a cleared byte buffer with at least `len` capacity from the arena
/// (allocating only when the free-list is empty).
pub fn take_bytes(len: usize) -> Vec<u8> {
    let pooled = POOL.with(|p| p.borrow_mut().pop());
    match pooled {
        Some(mut v) => {
            goc_core::obs_count_nd!("vm.arena.reuse", 1u64);
            v.clear();
            v.reserve(len);
            v
        }
        None => {
            goc_core::obs_count_nd!("vm.arena.alloc", 1u64);
            Vec::with_capacity(len)
        }
    }
}

/// Returns a byte buffer to the arena (dropped when over the caps).
pub fn put_bytes(v: Vec<u8>) {
    if v.capacity() == 0 || v.capacity() > MAX_VEC_CAP {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(v);
        }
    });
}

/// A `RoundIo` whose four boxes are arena-backed.
pub fn take_io() -> RoundIo {
    RoundIo {
        in_a: take_bytes(0),
        in_b: take_bytes(0),
        out_a: take_bytes(0),
        out_b: take_bytes(0),
    }
}

/// Returns a `RoundIo`'s buffers to the arena, leaving `io` empty.
pub fn recycle_io(io: &mut RoundIo) {
    put_bytes(std::mem::take(&mut io.in_a));
    put_bytes(std::mem::take(&mut io.in_b));
    put_bytes(std::mem::take(&mut io.out_a));
    put_bytes(std::mem::take(&mut io.out_b));
}

/// Number of buffers currently pooled on this thread (test hook).
pub fn pooled_count() -> usize {
    POOL.with(|p| p.borrow().len())
}

/// Per-thread cap on pooled register-column buffers. Column buffers are an
/// order of magnitude larger than message buffers (a whole batch's register
/// file each), so the pool is kept small.
const MAX_POOLED_REG_BUFS: usize = 32;

/// Register-column buffers with more capacity than this many `u64` slots are
/// dropped rather than pooled (= the file of a 4096-lane batch).
const MAX_REG_SLOTS_CAP: usize = 1 << 15;

thread_local! {
    static REG_POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a **zeroed** `u64` buffer of exactly `len` slots for a
/// struct-of-arrays register file, reusing a recycled column buffer when one
/// is pooled. The batch interpreter's `RegColumns` grows through this, so
/// repeated batch builds during enumeration re-lay registers into the same
/// handful of allocations.
pub fn take_reg_slots(len: usize) -> Vec<u64> {
    let pooled = REG_POOL.with(|p| p.borrow_mut().pop());
    match pooled {
        Some(mut v) => {
            goc_core::obs_count_nd!("vm.arena.reg_reuse", 1u64);
            v.clear();
            v.resize(len, 0);
            v
        }
        None => {
            goc_core::obs_count_nd!("vm.arena.reg_alloc", 1u64);
            vec![0u64; len]
        }
    }
}

/// Returns a register-column buffer to the arena (dropped when over the
/// caps).
pub fn put_reg_slots(v: Vec<u64>) {
    if v.capacity() == 0 || v.capacity() > MAX_REG_SLOTS_CAP {
        return;
    }
    REG_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED_REG_BUFS {
            pool.push(v);
        }
    });
}

/// Number of register-column buffers currently pooled on this thread
/// (test hook).
pub fn pooled_reg_count() -> usize {
    REG_POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_reuses_capacity() {
        let mut v = take_bytes(8);
        v.extend_from_slice(b"12345678");
        let cap = v.capacity();
        put_bytes(v);
        let before = pooled_count();
        assert!(before > 0);
        let v2 = take_bytes(4);
        assert_eq!(pooled_count(), before - 1);
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap.min(4));
    }

    #[test]
    fn zero_capacity_and_oversized_buffers_are_not_pooled() {
        let before = pooled_count();
        put_bytes(Vec::new());
        assert_eq!(pooled_count(), before);
        put_bytes(Vec::with_capacity(MAX_VEC_CAP + 1));
        assert_eq!(pooled_count(), before);
    }

    #[test]
    fn reg_slots_cycle_reuses_and_rezeroes() {
        let mut v = take_reg_slots(16);
        assert!(v.iter().all(|&s| s == 0));
        v[3] = 99;
        put_reg_slots(v);
        let before = pooled_reg_count();
        assert!(before > 0);
        let v2 = take_reg_slots(32);
        assert_eq!(pooled_reg_count(), before - 1);
        assert_eq!(v2.len(), 32);
        assert!(v2.iter().all(|&s| s == 0), "recycled slots must come back zeroed");
    }

    #[test]
    fn oversized_reg_buffers_are_not_pooled() {
        let before = pooled_reg_count();
        put_reg_slots(Vec::new());
        assert_eq!(pooled_reg_count(), before);
        put_reg_slots(Vec::with_capacity(MAX_REG_SLOTS_CAP + 1));
        assert_eq!(pooled_reg_count(), before);
    }

    #[test]
    fn recycle_io_returns_all_four_boxes() {
        let mut io = RoundIo::with_inputs(b"abc".as_slice(), b"de".as_slice());
        io.out_a.push(1);
        io.out_b.push(2);
        let before = pooled_count();
        recycle_io(&mut io);
        assert_eq!(pooled_count(), before + 4);
        assert!(io.in_a.is_empty() && io.out_b.is_empty());
    }
}
