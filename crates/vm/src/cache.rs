//! The candidate-evaluation cache: memoised VM rounds for universal search.
//!
//! The universal users re-run the *same* candidate programs over and over —
//! the compact user's triangular schedule revisits every index Θ(index)
//! times, and the trial harness repeats whole executions across seeds. A VM
//! strategy is a **deterministic transducer**: its round-`k` output (and
//! halt state) is fully determined by the program bytes, the per-round fuel
//! budget, and the sequence of inbox contents for rounds `0..=k`. That
//! triple is therefore a sound memoisation key, and this module keeps a
//! process-wide map from it to the round's outputs.
//!
//! [`VmUser`](crate::adapter::VmUser) consults the cache on every step. On a
//! hit it returns the recorded outboxes without touching its machine; on a
//! miss it first *replays* any skipped rounds (the machine is a transducer,
//! so replaying the recorded inputs reproduces the exact register state) and
//! then executes the round for real, recording it. Either way the observable
//! behaviour is bit-identical to an uncached run.
//!
//! Keys store a 64-bit hash of the program bytes plus a 128-bit rolling hash
//! of the interaction prefix; entries additionally pin the full program
//! bytes, which are compared on lookup, so a program-hash collision can
//! never serve the wrong entry. A prefix-hash collision *within one
//! program's entries* is the one probabilistic failure mode; at 128 bits it
//! is negligible against the ≤ 2⁴⁰ rounds any experiment here executes.
//!
//! The cache is enabled by default and shared across threads (the parallel
//! trial harness warms it for every worker). `GOC_VM_CACHE=0` disables it
//! process-wide; [`VmUser::with_cache_enabled`](crate::adapter::VmUser) pins
//! it per instance. [`stats`] / [`reset_stats`] expose hit counters for the
//! bench suite's JSONL records.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of independent cache shards (reduces lock contention when the
/// parallel harness runs many trials at once). Must be a power of two.
const SHARD_COUNT: usize = 16;

/// Per-shard entry cap; a shard that grows past this is cleared wholesale.
/// Bounds memory at roughly `SHARD_COUNT * SHARD_CAP` rounds of output.
const SHARD_CAP: usize = 1 << 16;

/// The memoised outcome of one VM round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedRound {
    /// Bytes the round appended to the A (peer) outbox.
    pub out_a: Vec<u8>,
    /// Bytes the round appended to the B (world) outbox.
    pub out_b: Vec<u8>,
    /// `Some(final output)` if the machine halted during (or before) this
    /// round.
    pub halted: Option<Vec<u8>>,
}

/// Cache key: `(program bytes, fuel, interaction prefix)`, with the program
/// and prefix in hashed form (see module docs for the soundness argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RoundKey {
    /// FNV-1a over the program bytes ([`program_hash`]).
    pub program_hash: u64,
    /// Per-round fuel budget of the machine.
    pub fuel: u32,
    /// Rolling 128-bit hash of every inbox up to and including this round
    /// ([`extend_prefix`]).
    pub prefix_hash: u128,
}

struct Entry {
    /// Full program bytes, compared on lookup to rule out program-hash
    /// collisions.
    program: Box<[u8]>,
    round: CachedRound,
}

struct Shard {
    map: Mutex<HashMap<RoundKey, Entry>>,
}

struct Cache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static CACHE: OnceLock<Cache> = OnceLock::new();

fn cache() -> &'static Cache {
    CACHE.get_or_init(|| Cache {
        shards: (0..SHARD_COUNT)
            .map(|_| Shard { map: Mutex::new(HashMap::new()) })
            .collect(),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

fn shard_of(key: &RoundKey) -> &'static Shard {
    let mix = key.program_hash ^ (key.prefix_hash as u64) ^ (key.prefix_hash >> 64) as u64;
    &cache().shards[(mix as usize) & (SHARD_COUNT - 1)]
}

/// Whether the process-wide cache is enabled (`GOC_VM_CACHE` unset or ≠ "0").
/// Read once and latched, so flipping the variable mid-process has no effect
/// — per-instance control is `VmUser::with_cache_enabled`.
pub fn enabled_by_env() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GOC_VM_CACHE").map(|v| v != "0").unwrap_or(true))
}

/// FNV-1a over the program bytes — the `program_hash` component of
/// [`RoundKey`].
pub fn program_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The empty-interaction prefix hash (FNV-1a 128-bit offset basis).
pub const PREFIX_EMPTY: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// Folds one round's inboxes into the rolling prefix hash. Lengths are
/// hashed before contents so `([a,b], [])` and `([a], [b])` cannot collide
/// by concatenation.
pub fn extend_prefix(prefix: u128, in_a: &[u8], in_b: &[u8]) -> u128 {
    const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = prefix;
    let mut eat = |byte: u8| {
        h ^= byte as u128;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for part in [in_a, in_b] {
        for b in (part.len() as u64).to_le_bytes() {
            eat(b);
        }
        for &b in part {
            eat(b);
        }
    }
    h
}

/// Looks up the memoised round for `key`, verifying the entry was recorded
/// for exactly `program` (hash collisions fall through to a miss). Updates
/// the hit/miss counters.
pub fn lookup(key: &RoundKey, program: &[u8]) -> Option<CachedRound> {
    let shard = shard_of(key);
    let map = shard.map.lock().unwrap();
    match map.get(key) {
        Some(entry) if &*entry.program == program => {
            cache().hits.fetch_add(1, Ordering::Relaxed);
            Some(entry.round.clone())
        }
        _ => {
            cache().misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Records the outcome of one round under `key`. Overwriting an existing
/// entry is harmless (the function is deterministic, so the value is the
/// same — or belongs to a colliding program, which `lookup` re-verifies).
pub fn insert(key: RoundKey, program: &[u8], round: CachedRound) {
    let shard = shard_of(&key);
    let mut map = shard.map.lock().unwrap();
    if map.len() >= SHARD_CAP {
        map.clear();
    }
    map.insert(key, Entry { program: program.into(), round });
}

/// Snapshot of the cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to real execution.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`None` when there were none).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            return None;
        }
        Some(self.hits as f64 / total as f64)
    }
}

/// Current process-wide hit/miss counters.
pub fn stats() -> CacheStats {
    let c = cache();
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
    }
}

/// Zeroes the hit/miss counters (the benches call this before a measured
/// run so rates are per-experiment, not cumulative).
pub fn reset_stats() {
    let c = cache();
    c.hits.store(0, Ordering::Relaxed);
    c.misses.store(0, Ordering::Relaxed);
}

/// Drops every memoised round (counters are left alone).
pub fn clear() {
    for shard in &cache().shards {
        shard.map.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u64, prefix: u128) -> RoundKey {
        RoundKey { program_hash: p, fuel: 256, prefix_hash: prefix }
    }

    fn round(tag: u8) -> CachedRound {
        CachedRound { out_a: vec![tag], out_b: vec![], halted: None }
    }

    #[test]
    fn insert_then_lookup_roundtrips() {
        let k = key(program_hash(b"prog-x"), PREFIX_EMPTY);
        insert(k, b"prog-x", round(7));
        assert_eq!(lookup(&k, b"prog-x"), Some(round(7)));
    }

    #[test]
    fn program_hash_collision_is_a_miss_not_a_wrong_hit() {
        // Same key, different recorded program bytes: the byte comparison
        // must refuse to serve the entry.
        let k = key(0x1234, PREFIX_EMPTY ^ 0x5555);
        insert(k, b"real", round(1));
        assert_eq!(lookup(&k, b"impostor"), None);
        assert_eq!(lookup(&k, b"real"), Some(round(1)));
    }

    #[test]
    fn prefix_extension_separates_channel_boundaries() {
        let ab = extend_prefix(PREFIX_EMPTY, b"ab", b"");
        let a_b = extend_prefix(PREFIX_EMPTY, b"a", b"b");
        let empty = extend_prefix(PREFIX_EMPTY, b"", b"");
        assert_ne!(ab, a_b);
        assert_ne!(ab, empty);
        // And it is a function of the whole history, not just the last round.
        assert_ne!(extend_prefix(ab, b"", b""), extend_prefix(a_b, b"", b""));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        reset_stats();
        let k = key(program_hash(b"stats-prog"), extend_prefix(PREFIX_EMPTY, b"s", b""));
        assert_eq!(lookup(&k, b"stats-prog"), None);
        insert(k, b"stats-prog", round(3));
        assert!(lookup(&k, b"stats-prog").is_some());
        let s = stats();
        assert!(s.misses >= 1 && s.hits >= 1, "{s:?}");
        assert!(s.hit_rate().unwrap() > 0.0);
    }
}
