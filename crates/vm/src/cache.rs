//! The candidate-evaluation cache: memoised VM rounds for universal search.
//!
//! The universal users re-run the *same* candidate programs over and over —
//! the compact user's triangular schedule revisits every index Θ(index)
//! times, and the trial harness repeats whole executions across seeds. A VM
//! strategy is a **deterministic transducer**: its round-`k` output (and
//! halt state) is fully determined by the program bytes, the per-round fuel
//! budget, and the sequence of inbox contents for rounds `0..=k`. That
//! triple is therefore a sound memoisation key, and this module keeps a
//! process-wide map from it to the round's outputs.
//!
//! [`VmUser`](crate::adapter::VmUser) consults the cache on every step. On a
//! hit it returns the recorded outboxes without touching its machine; on a
//! miss it first *replays* any skipped rounds (the machine is a transducer,
//! so replaying the recorded inputs reproduces the exact register state) and
//! then executes the round for real, recording it. Either way the observable
//! behaviour is bit-identical to an uncached run.
//!
//! Keys store a 64-bit hash of the program bytes plus a 128-bit rolling hash
//! of the interaction prefix; entries additionally pin the full program
//! bytes, which are compared on lookup, so a program-hash collision can
//! never serve the wrong entry. A prefix-hash collision *within one
//! program's entries* is the one probabilistic failure mode; at 128 bits it
//! is negligible against the ≤ 2⁴⁰ rounds any experiment here executes.
//!
//! The cache is enabled by default and shared across threads (the parallel
//! trial harness warms it for every worker). `GOC_VM_CACHE=0` disables it
//! process-wide; [`VmUser::with_cache_enabled`](crate::adapter::VmUser) pins
//! it per instance. [`stats`] / [`reset_stats`] expose hit counters for the
//! bench suite's JSONL records.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Number of independent cache shards (reduces lock contention when the
/// parallel harness runs many trials at once). Must be a power of two.
const SHARD_COUNT: usize = 16;

/// Per-shard entry cap; a shard that grows past this evicts roughly half
/// of its entries (see [`insert`]). Bounds memory at roughly
/// `SHARD_COUNT * SHARD_CAP` rounds of output.
const SHARD_CAP: usize = 1 << 16;

/// The memoised outcome of one VM round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedRound {
    /// Bytes the round appended to the A (peer) outbox.
    pub out_a: Vec<u8>,
    /// Bytes the round appended to the B (world) outbox.
    pub out_b: Vec<u8>,
    /// `Some(final output)` if the machine halted during (or before) this
    /// round.
    pub halted: Option<Vec<u8>>,
}

/// Cache key: `(program bytes, fuel, interaction prefix)`, with the program
/// and prefix in hashed form (see module docs for the soundness argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RoundKey {
    /// FNV-1a over the program bytes ([`program_hash`]).
    pub program_hash: u64,
    /// Per-round fuel budget of the machine.
    pub fuel: u32,
    /// Rolling 128-bit hash of every inbox up to and including this round
    /// ([`extend_prefix`]).
    pub prefix_hash: u128,
}

struct Entry {
    /// Full program bytes, compared on lookup to rule out program-hash
    /// collisions.
    program: Box<[u8]>,
    round: CachedRound,
}

#[derive(Default)]
struct ShardState {
    map: HashMap<RoundKey, Entry>,
    /// Bumped on every half-eviction; selects which hash bit decides who
    /// survives, so repeated evictions don't starve the same keys.
    evict_epoch: u32,
}

struct Shard {
    state: Mutex<ShardState>,
}

struct Cache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static CACHE: OnceLock<Cache> = OnceLock::new();

fn cache() -> &'static Cache {
    CACHE.get_or_init(|| Cache {
        shards: (0..SHARD_COUNT)
            .map(|_| Shard { state: Mutex::new(ShardState::default()) })
            .collect(),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Locks a shard, recovering from poisoning. A `par` worker that panics
/// mid-operation poisons the shard it holds; the map itself is never left
/// in a broken state by a panic here (HashMap operations are
/// panic-atomic for our key/value types, and entries are verified against
/// the full program bytes on every read), so the poison flag carries no
/// information and unrelated trials must not cascade-panic on it.
fn lock_shard(shard: &Shard) -> std::sync::MutexGuard<'_, ShardState> {
    shard.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn shard_of(key: &RoundKey) -> &'static Shard {
    let mix = key.program_hash ^ (key.prefix_hash as u64) ^ (key.prefix_hash >> 64) as u64;
    &cache().shards[(mix as usize) & (SHARD_COUNT - 1)]
}

/// Whether the process-wide cache is enabled (`GOC_VM_CACHE` unset or ≠ "0").
/// Read once and latched, so flipping the variable mid-process has no effect
/// — per-instance control is `VmUser::with_cache_enabled`.
pub fn enabled_by_env() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GOC_VM_CACHE").map(|v| v != "0").unwrap_or(true))
}

/// FNV-1a over the program bytes — the `program_hash` component of
/// [`RoundKey`].
pub fn program_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The empty-interaction prefix hash (FNV-1a 128-bit offset basis).
pub const PREFIX_EMPTY: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// Folds one round's inboxes into the rolling prefix hash. Lengths are
/// hashed before contents so `([a,b], [])` and `([a], [b])` cannot collide
/// by concatenation.
pub fn extend_prefix(prefix: u128, in_a: &[u8], in_b: &[u8]) -> u128 {
    const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = prefix;
    let mut eat = |byte: u8| {
        h ^= byte as u128;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for part in [in_a, in_b] {
        for b in (part.len() as u64).to_le_bytes() {
            eat(b);
        }
        for &b in part {
            eat(b);
        }
    }
    h
}

/// Looks up the memoised round for `key`, verifying the entry was recorded
/// for exactly `program` (hash collisions fall through to a miss). Updates
/// the hit/miss counters.
pub fn lookup(key: &RoundKey, program: &[u8]) -> Option<CachedRound> {
    let shard = shard_of(key);
    let state = lock_shard(shard);
    match state.map.get(key) {
        Some(entry) if &*entry.program == program => {
            cache().hits.fetch_add(1, Ordering::Relaxed);
            goc_core::obs_count_nd!("vm.cache.hit", 1u64);
            Some(entry.round.clone())
        }
        _ => {
            cache().misses.fetch_add(1, Ordering::Relaxed);
            goc_core::obs_count_nd!("vm.cache.miss", 1u64);
            None
        }
    }
}

/// Mixes a key into one well-stirred word with a splitmix64 finalizer.
/// Each word gets its own odd multiplier before the XOR so the mix stays
/// key-dependent even for key families where the plain XOR (the one
/// [`shard_of`] uses) is constant within a shard; any single bit then
/// splits a shard's population roughly in half.
fn evict_mix(key: &RoundKey) -> u64 {
    let mut x = key.program_hash.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (key.prefix_hash as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ ((key.prefix_hash >> 64) as u64).wrapping_mul(0x1656_67b1_9e37_79f9)
        ^ key.fuel as u64;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Records the outcome of one round under `key`. Overwriting an existing
/// entry is harmless (the function is deterministic, so the value is the
/// same — or belongs to a colliding program, which `lookup` re-verifies).
///
/// A shard at [`SHARD_CAP`] evicts roughly half of its entries — those
/// whose mixed hash has the epoch-selected bit set — instead of clearing
/// wholesale, so a long-running search keeps half of its warm entries
/// across the cap. Evicted entries only cost a re-execution on the next
/// miss; observable behaviour is unchanged.
pub fn insert(key: RoundKey, program: &[u8], round: CachedRound) {
    let shard = shard_of(&key);
    let mut state = lock_shard(shard);
    if state.map.len() >= SHARD_CAP {
        let bit = state.evict_epoch % 64;
        state.evict_epoch = state.evict_epoch.wrapping_add(1);
        let before = state.map.len();
        state.map.retain(|k, _| (evict_mix(k) >> bit) & 1 == 0);
        let evicted = before - state.map.len();
        goc_core::obs_count_nd!("vm.cache.evict", evicted as u64);
    }
    state.map.insert(key, Entry { program: program.into(), round });
    goc_core::obs_gauge_max_nd!("vm.cache.entries_peak", state.map.len() as u64);
}

/// Snapshot of the cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to real execution.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`None` when there were none).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            return None;
        }
        Some(self.hits as f64 / total as f64)
    }
}

/// Current process-wide hit/miss counters.
pub fn stats() -> CacheStats {
    let c = cache();
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
    }
}

/// Zeroes the hit/miss counters (the benches call this before a measured
/// run so rates are per-experiment, not cumulative).
pub fn reset_stats() {
    let c = cache();
    c.hits.store(0, Ordering::Relaxed);
    c.misses.store(0, Ordering::Relaxed);
}

/// Drops every memoised round (counters are left alone).
pub fn clear() {
    for shard in &cache().shards {
        lock_shard(shard).map.clear();
    }
}

/// Total number of memoised rounds currently held, across all shards.
pub fn entry_count() -> usize {
    cache().shards.iter().map(|shard| lock_shard(shard).map.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cache is process-global; tests that assert on hit/miss or
    /// occupancy serialize here so the eviction test cannot drop another
    /// test's entry between its insert and its lookup.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn key(p: u64, prefix: u128) -> RoundKey {
        RoundKey { program_hash: p, fuel: 256, prefix_hash: prefix }
    }

    fn round(tag: u8) -> CachedRound {
        CachedRound { out_a: vec![tag], out_b: vec![], halted: None }
    }

    #[test]
    fn insert_then_lookup_roundtrips() {
        let _g = test_guard();
        let k = key(program_hash(b"prog-x"), PREFIX_EMPTY);
        insert(k, b"prog-x", round(7));
        assert_eq!(lookup(&k, b"prog-x"), Some(round(7)));
    }

    #[test]
    fn program_hash_collision_is_a_miss_not_a_wrong_hit() {
        let _g = test_guard();
        // Same key, different recorded program bytes: the byte comparison
        // must refuse to serve the entry.
        let k = key(0x1234, PREFIX_EMPTY ^ 0x5555);
        insert(k, b"real", round(1));
        assert_eq!(lookup(&k, b"impostor"), None);
        assert_eq!(lookup(&k, b"real"), Some(round(1)));
    }

    #[test]
    fn poisoned_shard_recovers_instead_of_cascading() {
        let _g = test_guard();
        let k = key(program_hash(b"poison-prog"), PREFIX_EMPTY ^ 0xabcd);
        insert(k, b"poison-prog", round(9));
        // Poison the shard: a thread panics while holding its lock, the
        // way a panicking `par` worker would mid-`insert`.
        let shard = shard_of(&k);
        let _ = std::thread::spawn(move || {
            let _held = shard.state.lock().unwrap();
            panic!("poisoning the shard on purpose");
        })
        .join();
        assert!(shard.state.is_poisoned());
        // Every entry point must keep working on the poisoned shard.
        assert_eq!(lookup(&k, b"poison-prog"), Some(round(9)));
        let k2 = key(program_hash(b"poison-prog"), extend_prefix(PREFIX_EMPTY ^ 0xabcd, b"x", b""));
        insert(k2, b"poison-prog", round(10));
        assert_eq!(lookup(&k2, b"poison-prog"), Some(round(10)));
        let _ = entry_count();
        clear();
        assert_eq!(lookup(&k, b"poison-prog"), None);
    }

    #[test]
    fn full_shard_evicts_half_not_everything() {
        let _g = test_guard();
        clear();
        // All keys land in one shard: `shard_of` mixes the three hash
        // words, so keep program_hash equal to the low word of the prefix
        // — the XOR cancels and every key picks shard 0.
        let shard_pinned = |i: u64| {
            let prefix = (i + 1) as u128; // low 64 bits only
            RoundKey { program_hash: i + 1, fuel: 256, prefix_hash: prefix }
        };
        for i in 0..SHARD_CAP as u64 {
            insert(shard_pinned(i), b"evict-prog", round((i % 251) as u8));
        }
        assert_eq!(entry_count(), SHARD_CAP);
        // The next insert trips the cap: roughly half survives (plus the
        // new entry), instead of the old wholesale clear.
        insert(shard_pinned(SHARD_CAP as u64), b"evict-prog", round(1));
        let after = entry_count();
        assert!(after < SHARD_CAP, "no eviction happened: {after}");
        assert!(
            after > SHARD_CAP / 4 && after <= SHARD_CAP / 2 + SHARD_CAP / 4,
            "eviction should keep roughly half, kept {after} of {SHARD_CAP}"
        );
        // The just-inserted entry always survives its own eviction.
        assert_eq!(lookup(&shard_pinned(SHARD_CAP as u64), b"evict-prog"), Some(round(1)));
        // And survivors are still served (sample for at least one hit).
        let survivors = (0..64).filter(|&i| lookup(&shard_pinned(i), b"evict-prog").is_some()).count();
        assert!(survivors > 0, "no sampled survivor found after half-eviction");
        clear();
    }

    #[test]
    fn evictions_are_counted_in_the_metrics_registry() {
        let _g = test_guard();
        clear();
        let nd_total = |name: &str| {
            goc_core::obs::metrics_snapshot(Some(goc_core::obs::Scope::Process))
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or(0)
        };
        let before = nd_total("vm.cache.evict");
        let ((), _records) = goc_core::obs::capture(|| {
            let pinned = |i: u64| RoundKey {
                program_hash: i + 1,
                fuel: 256,
                prefix_hash: (i + 1) as u128,
            };
            for i in 0..=SHARD_CAP as u64 {
                insert(pinned(i), b"evict-metric-prog", round(2));
            }
        });
        let evicted = nd_total("vm.cache.evict") - before;
        assert!(
            evicted > SHARD_CAP as u64 / 4,
            "eviction counter should record roughly half a shard, got {evicted}"
        );
        clear();
    }

    #[test]
    fn prefix_extension_separates_channel_boundaries() {
        let ab = extend_prefix(PREFIX_EMPTY, b"ab", b"");
        let a_b = extend_prefix(PREFIX_EMPTY, b"a", b"b");
        let empty = extend_prefix(PREFIX_EMPTY, b"", b"");
        assert_ne!(ab, a_b);
        assert_ne!(ab, empty);
        // And it is a function of the whole history, not just the last round.
        assert_ne!(extend_prefix(ab, b"", b""), extend_prefix(a_b, b"", b""));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        reset_stats();
        let k = key(program_hash(b"stats-prog"), extend_prefix(PREFIX_EMPTY, b"s", b""));
        assert_eq!(lookup(&k, b"stats-prog"), None);
        insert(k, b"stats-prog", round(3));
        assert!(lookup(&k, b"stats-prog").is_some());
        let s = stats();
        assert!(s.misses >= 1 && s.hits >= 1, "{s:?}");
        assert!(s.hit_rate().unwrap() > 0.0);
    }
}
