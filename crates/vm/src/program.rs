//! Programs: byte strings with a total decoding into instruction sequences.

use crate::instr::Instr;
use std::fmt;

/// A VM program — any byte string.
///
/// # Examples
///
/// ```
/// use goc_vm::program::Program;
/// use goc_vm::instr::Instr;
///
/// // Assemble a program that greets the peer each round.
/// let p = Program::assemble(&[Instr::EmitA(b'h'), Instr::EmitA(b'i'), Instr::EndRound]);
/// assert_eq!(p.disassemble(), "emit.a 0x68\nemit.a 0x69\nend");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Program {
    code: Vec<u8>,
}

impl Program {
    /// Wraps raw bytes as a program (total: any bytes are valid).
    pub fn from_bytes(code: impl Into<Vec<u8>>) -> Self {
        Program { code: code.into() }
    }

    /// Assembles a program from instructions.
    pub fn assemble(instrs: &[Instr]) -> Self {
        let mut code = Vec::new();
        for i in instrs {
            i.encode(&mut code);
        }
        Program { code }
    }

    /// The raw code bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.code
    }

    /// Consumes the program, returning its code buffer (lets the candidate
    /// [`arena`](crate::arena) reclaim program allocations on elimination).
    pub fn into_bytes(self) -> Vec<u8> {
        self.code
    }

    /// Code length in bytes.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` for the empty program (a no-op strategy).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Decodes the instruction at byte offset `pos`, with its encoded size.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn decode_at(&self, pos: usize) -> (Instr, usize) {
        Instr::decode(&self.code, pos)
    }

    /// Decodes the whole program front-to-back (the canonical reading; jumps
    /// may land mid-instruction at run time, which is well-defined but not
    /// shown here).
    pub fn instructions(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < self.code.len() {
            let (instr, used) = self.decode_at(pos);
            out.push(instr);
            pos += used;
        }
        out
    }

    /// A human-readable listing of the canonical decoding.
    pub fn disassemble(&self) -> String {
        self.instructions()
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program[{} bytes]", self.code.len())
    }
}

impl From<Vec<u8>> for Program {
    fn from(code: Vec<u8>) -> Self {
        Program::from_bytes(code)
    }
}

impl AsRef<[u8]> for Program {
    fn as_ref(&self) -> &[u8] {
        &self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    #[test]
    fn assemble_then_instructions_roundtrip() {
        let instrs = vec![
            Instr::Const(Reg::new(0), 5),
            Instr::EmitAReg(Reg::new(0)),
            Instr::EndRound,
        ];
        let p = Program::assemble(&instrs);
        assert_eq!(p.instructions(), instrs);
    }

    #[test]
    fn arbitrary_bytes_decode() {
        let p = Program::from_bytes(vec![0xde, 0xad, 0xbe, 0xef, 0x01]);
        let instrs = p.instructions();
        assert!(!instrs.is_empty());
        // Decoding consumed all bytes without panicking.
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.instructions().is_empty());
        assert_eq!(p.disassemble(), "");
        assert_eq!(p.to_string(), "program[0 bytes]");
    }

    #[test]
    fn conversions() {
        let p: Program = vec![1u8, 2, 3].into();
        assert_eq!(p.as_ref(), &[1, 2, 3]);
        assert_eq!(p.as_bytes(), &[1, 2, 3]);
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = Program::from_bytes(vec![1]);
        let b = Program::from_bytes(vec![2]);
        assert!(a < b);
    }
}
