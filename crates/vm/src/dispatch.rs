//! The `GOC_DISPATCH` gate for the table-driven interpreter core.
//!
//! With dispatch on (the default), [`Machine::round`] predecodes its program
//! once and drives every round through the per-opcode handler table in
//! [`machine`](crate::machine) — the same table the batch interpreter and
//! the prewarm executor dispatch from, so all three paths share exactly one
//! semantics. `GOC_DISPATCH=0` selects the original scalar `match` loop,
//! kept as the executable specification the table is differentially tested
//! against (`crates/vm/tests/dispatch_equivalence.rs`).
//!
//! Like `GOC_BATCH` and `GOC_PREWARM`, the flag is observationally inert:
//! outboxes, halt payloads, registers, retired-instruction counts, and the
//! `GOC_TRACE` stream are byte-identical either way (gated in ci.sh). The
//! environment variable is read once and latched; [`with_dispatch`] is the
//! race-free per-thread override for tests and apples-to-apples benchmarks.
//!
//! [`Machine::round`]: crate::machine::Machine::round

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static DISPATCH_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GOC_DISPATCH").map(|v| v != "0").unwrap_or(true))
}

/// Whether table dispatch is on: a thread-local [`with_dispatch`] override
/// if present, else the `GOC_DISPATCH` environment latch (default **on**;
/// `GOC_DISPATCH=0` is the scalar `match` loop). Read once and latched.
pub fn enabled() -> bool {
    DISPATCH_OVERRIDE.with(|c| c.get()).unwrap_or_else(env_enabled)
}

/// Runs `f` with table dispatch forced on/off on this thread, restoring the
/// previous state afterwards (also on panic). The E16 micro-bench uses this
/// to time both interpreter cores in one process; the environment latch is
/// immutable after first read.
pub fn with_dispatch<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DISPATCH_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(DISPATCH_OVERRIDE.with(|c| c.replace(Some(enabled))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_dispatch_overrides_and_restores() {
        let outer = enabled();
        with_dispatch(!outer, || {
            assert_eq!(enabled(), !outer);
            with_dispatch(outer, || assert_eq!(enabled(), outer));
            assert_eq!(enabled(), !outer);
        });
        assert_eq!(enabled(), outer);
    }
}
