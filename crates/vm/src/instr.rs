//! The instruction set of the strategy VM.
//!
//! Design constraints (see crate docs):
//!
//! - **Total decoding** — *every* byte string decodes to a valid program, so
//!   the length-lexicographic enumeration of byte strings enumerates the
//!   whole strategy class with no gaps. Opcodes are taken modulo
//!   [`OPCODE_COUNT`], register operands modulo [`REG_COUNT`], and missing
//!   trailing operands default to zero.
//! - **Channel symmetry** — programs speak of abstract channels **A** (the
//!   peer: the server when the program is a user, the user when it is a
//!   server) and **B** (the world), so the same program text can drive either
//!   role.

use std::fmt;

/// Number of general-purpose registers.
pub const REG_COUNT: usize = 8;

/// Number of opcodes in the instruction set.
pub const OPCODE_COUNT: u8 = 16;

/// A register index in `0..REG_COUNT`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Wraps a byte into a valid register index (modulo [`REG_COUNT`]).
    pub fn new(raw: u8) -> Self {
        Reg(raw % REG_COUNT as u8)
    }

    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Destination channel of a copy instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Chan {
    /// The peer channel (server for users, user for servers).
    A,
    /// The world channel.
    B,
}

impl Chan {
    fn from_raw(raw: u8) -> Self {
        if raw.is_multiple_of(2) {
            Chan::A
        } else {
            Chan::B
        }
    }

    fn to_raw(self) -> u8 {
        match self {
            Chan::A => 0,
            Chan::B => 1,
        }
    }
}

impl fmt::Display for Chan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Chan::A => write!(f, "A"),
            Chan::B => write!(f, "B"),
        }
    }
}

/// One VM instruction.
///
/// Encoding: one opcode byte followed by that opcode's operand bytes (see
/// [`Instr::encode`]); decoding is total (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Halt the strategy; the final output is the current B outbox.
    Halt,
    /// Append an immediate byte to the A outbox.
    EmitA(u8),
    /// Append an immediate byte to the B outbox.
    EmitB(u8),
    /// Append a register's low byte to the A outbox.
    EmitAReg(Reg),
    /// Append a register's low byte to the B outbox.
    EmitBReg(Reg),
    /// Read the next byte of this round's A inbox into a register
    /// ([`EXHAUSTED`](crate::machine::EXHAUSTED) when empty).
    ReadA(Reg),
    /// Read the next byte of this round's B inbox into a register.
    ReadB(Reg),
    /// Load an immediate into a register.
    Const(Reg, u8),
    /// `r += s` (wrapping).
    Add(Reg, Reg),
    /// `r += 1` (wrapping).
    Inc(Reg),
    /// Relative jump (signed byte displacement) if the register is zero.
    JmpIfZero(Reg, i8),
    /// Unconditional relative jump (signed byte displacement).
    Jmp(i8),
    /// Copy all remaining bytes of the A inbox to an outbox.
    CopyA(Chan),
    /// Copy all remaining bytes of the B inbox to an outbox.
    CopyB(Chan),
    /// `r += imm` (wrapping).
    AddConst(Reg, u8),
    /// Stop executing for this round (outboxes are flushed).
    EndRound,
}

impl Instr {
    /// Number of operand bytes following each opcode.
    pub fn operand_len(opcode: u8) -> usize {
        match opcode % OPCODE_COUNT {
            0 | 15 => 0,          // Halt, EndRound
            1..=6 | 9 | 11..=13 => 1, // single-operand ops
            7 | 8 | 10 | 14 => 2, // two-operand ops
            _ => unreachable!("opcode is reduced modulo OPCODE_COUNT"),
        }
    }

    /// Decodes the instruction at `pos` in `code`, returning the instruction
    /// and the number of bytes consumed. Total: any byte sequence decodes.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= code.len()`.
    pub fn decode(code: &[u8], pos: usize) -> (Instr, usize) {
        assert!(pos < code.len(), "decode position out of bounds");
        let opcode = code[pos] % OPCODE_COUNT;
        let byte = |i: usize| -> u8 { code.get(pos + 1 + i).copied().unwrap_or(0) };
        let len = 1 + Self::operand_len(opcode);
        let instr = match opcode {
            0 => Instr::Halt,
            1 => Instr::EmitA(byte(0)),
            2 => Instr::EmitB(byte(0)),
            3 => Instr::EmitAReg(Reg::new(byte(0))),
            4 => Instr::EmitBReg(Reg::new(byte(0))),
            5 => Instr::ReadA(Reg::new(byte(0))),
            6 => Instr::ReadB(Reg::new(byte(0))),
            7 => Instr::Const(Reg::new(byte(0)), byte(1)),
            8 => Instr::Add(Reg::new(byte(0)), Reg::new(byte(1))),
            9 => Instr::Inc(Reg::new(byte(0))),
            10 => Instr::JmpIfZero(Reg::new(byte(0)), byte(1) as i8),
            11 => Instr::Jmp(byte(0) as i8),
            12 => Instr::CopyA(Chan::from_raw(byte(0))),
            13 => Instr::CopyB(Chan::from_raw(byte(0))),
            14 => Instr::AddConst(Reg::new(byte(0)), byte(1)),
            15 => Instr::EndRound,
            _ => unreachable!(),
        };
        (instr, len)
    }

    /// Encodes the instruction, appending its bytes to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Instr::Halt => out.push(0),
            Instr::EmitA(b) => out.extend([1, b]),
            Instr::EmitB(b) => out.extend([2, b]),
            Instr::EmitAReg(r) => out.extend([3, r.0]),
            Instr::EmitBReg(r) => out.extend([4, r.0]),
            Instr::ReadA(r) => out.extend([5, r.0]),
            Instr::ReadB(r) => out.extend([6, r.0]),
            Instr::Const(r, b) => out.extend([7, r.0, b]),
            Instr::Add(r, s) => out.extend([8, r.0, s.0]),
            Instr::Inc(r) => out.extend([9, r.0]),
            Instr::JmpIfZero(r, d) => out.extend([10, r.0, d as u8]),
            Instr::Jmp(d) => out.extend([11, d as u8]),
            Instr::CopyA(c) => out.extend([12, c.to_raw()]),
            Instr::CopyB(c) => out.extend([13, c.to_raw()]),
            Instr::AddConst(r, b) => out.extend([14, r.0, b]),
            Instr::EndRound => out.push(15),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Halt => write!(f, "halt"),
            Instr::EmitA(b) => write!(f, "emit.a {b:#04x}"),
            Instr::EmitB(b) => write!(f, "emit.b {b:#04x}"),
            Instr::EmitAReg(r) => write!(f, "emit.a {r}"),
            Instr::EmitBReg(r) => write!(f, "emit.b {r}"),
            Instr::ReadA(r) => write!(f, "read.a {r}"),
            Instr::ReadB(r) => write!(f, "read.b {r}"),
            Instr::Const(r, b) => write!(f, "const {r}, {b:#04x}"),
            Instr::Add(r, s) => write!(f, "add {r}, {s}"),
            Instr::Inc(r) => write!(f, "inc {r}"),
            Instr::JmpIfZero(r, d) => write!(f, "jz {r}, {d:+}"),
            Instr::Jmp(d) => write!(f, "jmp {d:+}"),
            Instr::CopyA(c) => write!(f, "copy.a -> {c}"),
            Instr::CopyB(c) => write!(f, "copy.b -> {c}"),
            Instr::AddConst(r, b) => write!(f, "addc {r}, {b:#04x}"),
            Instr::EndRound => write!(f, "end"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_wraps_modulo_reg_count() {
        assert_eq!(Reg::new(0).index(), 0);
        assert_eq!(Reg::new(7).index(), 7);
        assert_eq!(Reg::new(8).index(), 0);
        assert_eq!(Reg::new(255).index(), 7);
    }

    #[test]
    fn chan_from_raw_alternates() {
        assert_eq!(Chan::from_raw(0), Chan::A);
        assert_eq!(Chan::from_raw(1), Chan::B);
        assert_eq!(Chan::from_raw(2), Chan::A);
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        let instrs = vec![
            Instr::Halt,
            Instr::EmitA(0x41),
            Instr::EmitB(0xff),
            Instr::EmitAReg(Reg::new(3)),
            Instr::EmitBReg(Reg::new(7)),
            Instr::ReadA(Reg::new(1)),
            Instr::ReadB(Reg::new(2)),
            Instr::Const(Reg::new(4), 0x10),
            Instr::Add(Reg::new(0), Reg::new(1)),
            Instr::Inc(Reg::new(5)),
            Instr::JmpIfZero(Reg::new(6), -4),
            Instr::Jmp(3),
            Instr::CopyA(Chan::B),
            Instr::CopyB(Chan::A),
            Instr::AddConst(Reg::new(2), 9),
            Instr::EndRound,
        ];
        for instr in instrs {
            let mut bytes = Vec::new();
            instr.encode(&mut bytes);
            let (decoded, used) = Instr::decode(&bytes, 0);
            assert_eq!(decoded, instr, "roundtrip failed for {instr}");
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn decoding_is_total_on_truncated_operands() {
        // Opcode 7 (Const) expects two operand bytes; give none.
        let (instr, used) = Instr::decode(&[7], 0);
        assert_eq!(instr, Instr::Const(Reg::new(0), 0));
        assert_eq!(used, 3); // consumed length is still 1 + operand_len
    }

    #[test]
    fn opcode_wraps_modulo_count() {
        let (a, _) = Instr::decode(&[16], 0); // 16 % 16 == 0 => Halt
        assert_eq!(a, Instr::Halt);
        let (b, _) = Instr::decode(&[17, 0x2a], 0); // 17 % 16 == 1 => EmitA
        assert_eq!(b, Instr::EmitA(0x2a));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instr::Halt.to_string(), "halt");
        assert_eq!(Instr::EmitA(65).to_string(), "emit.a 0x41");
        assert_eq!(Instr::Jmp(-2).to_string(), "jmp -2");
        assert_eq!(Instr::CopyA(Chan::B).to_string(), "copy.a -> B");
        assert_eq!(Reg::new(3).to_string(), "r3");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn decode_past_end_panics() {
        let _ = Instr::decode(&[0], 1);
    }
}
