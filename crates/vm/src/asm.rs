//! A text assembler for the strategy VM — the inverse of
//! [`Program::disassemble`](crate::program::Program::disassemble).
//!
//! Accepts one instruction per line in the disassembler's syntax; blank
//! lines and `;`-comments are ignored. Useful for writing strategies by
//! hand, for tests, and for round-trip checking.
//!
//! ```text
//! ; greet the peer, then wait for the world
//! const r0, 0x68
//! emit.a r0
//! emit.a 0x69
//! end
//! ```

use crate::instr::{Chan, Instr, Reg};
use crate::program::Program;
use std::fmt;

/// An assembly error with its line number (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Assembles VM assembly text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseAsmError`] naming the offending line for unknown
/// mnemonics, malformed operands, or out-of-range values.
///
/// # Examples
///
/// ```
/// use goc_vm::asm::assemble;
///
/// let p = assemble("emit.a 0x68\nemit.a 0x69\nend").unwrap();
/// assert_eq!(p.disassemble(), "emit.a 0x68\nemit.a 0x69\nend");
/// ```
pub fn assemble(source: &str) -> Result<Program, ParseAsmError> {
    let mut instrs = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        instrs.push(parse_line(line).map_err(|message| ParseAsmError { line: line_no, message })?);
    }
    Ok(Program::assemble(&instrs))
}

fn parse_line(line: &str) -> Result<Instr, String> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> =
        rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let expect = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("expected {n} operand(s), found {}", ops.len()))
        }
    };
    match mnemonic {
        "halt" => {
            expect(0)?;
            Ok(Instr::Halt)
        }
        "end" => {
            expect(0)?;
            Ok(Instr::EndRound)
        }
        "emit.a" => {
            expect(1)?;
            Ok(match parse_reg(ops[0]) {
                Some(r) => Instr::EmitAReg(r),
                None => Instr::EmitA(parse_byte(ops[0])?),
            })
        }
        "emit.b" => {
            expect(1)?;
            Ok(match parse_reg(ops[0]) {
                Some(r) => Instr::EmitBReg(r),
                None => Instr::EmitB(parse_byte(ops[0])?),
            })
        }
        "read.a" => {
            expect(1)?;
            Ok(Instr::ReadA(require_reg(ops[0])?))
        }
        "read.b" => {
            expect(1)?;
            Ok(Instr::ReadB(require_reg(ops[0])?))
        }
        "const" => {
            expect(2)?;
            Ok(Instr::Const(require_reg(ops[0])?, parse_byte(ops[1])?))
        }
        "add" => {
            expect(2)?;
            Ok(Instr::Add(require_reg(ops[0])?, require_reg(ops[1])?))
        }
        "addc" => {
            expect(2)?;
            Ok(Instr::AddConst(require_reg(ops[0])?, parse_byte(ops[1])?))
        }
        "inc" => {
            expect(1)?;
            Ok(Instr::Inc(require_reg(ops[0])?))
        }
        "jz" => {
            expect(2)?;
            Ok(Instr::JmpIfZero(require_reg(ops[0])?, parse_disp(ops[1])?))
        }
        "jmp" => {
            expect(1)?;
            Ok(Instr::Jmp(parse_disp(ops[0])?))
        }
        "copy.a" => Ok(Instr::CopyA(parse_copy_dest(rest)?)),
        "copy.b" => Ok(Instr::CopyB(parse_copy_dest(rest)?)),
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

fn parse_reg(token: &str) -> Option<Reg> {
    let idx = token.strip_prefix('r')?.parse::<u8>().ok()?;
    (idx < 8).then(|| Reg::new(idx))
}

fn require_reg(token: &str) -> Result<Reg, String> {
    parse_reg(token).ok_or_else(|| format!("expected register r0..r7, found `{token}`"))
}

fn parse_byte(token: &str) -> Result<u8, String> {
    let value = if let Some(hex) = token.strip_prefix("0x") {
        u8::from_str_radix(hex, 16)
    } else if token.len() == 3 && token.starts_with('\'') && token.ends_with('\'') {
        return Ok(token.as_bytes()[1]);
    } else {
        token.parse::<u8>()
    };
    value.map_err(|_| format!("expected a byte (0..=255, 0x.., or 'c'), found `{token}`"))
}

fn parse_disp(token: &str) -> Result<i8, String> {
    token
        .parse::<i8>()
        .map_err(|_| format!("expected a displacement (−128..=127), found `{token}`"))
}

fn parse_copy_dest(rest: &str) -> Result<Chan, String> {
    // Disassembler syntax: `copy.a -> B`
    let dest = rest.trim_start_matches("->").trim();
    match dest {
        "A" | "a" => Ok(Chan::A),
        "B" | "b" => Ok(Chan::B),
        other => Err(format!("expected channel A or B, found `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_and_roundtrips_through_disassembler() {
        let source = "\
const r0, 0x68
emit.a r0
emit.a 0x69
read.b r1
copy.b -> A
jz r1, -8
end";
        let p = assemble(source).unwrap();
        assert_eq!(p.disassemble(), source);
        // Re-assembling the disassembly is the identity.
        let p2 = assemble(&p.disassemble()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn char_literals_and_decimal_bytes() {
        let p = assemble("emit.a 'h'\nemit.a 105").unwrap();
        let q = assemble("emit.a 0x68\nemit.a 0x69").unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; a greeting\n\nemit.a 0x21 ; bang\n").unwrap();
        assert_eq!(p.instructions(), vec![Instr::EmitA(0x21)]);
    }

    #[test]
    fn full_instruction_coverage() {
        let source = "\
halt
emit.b 0x01
emit.b r3
read.a r2
add r0, r1
addc r4, 0x10
inc r5
jmp 3
copy.a -> B
end";
        let p = assemble(source).unwrap();
        assert_eq!(p.instructions().len(), 10);
    }

    #[test]
    fn errors_name_the_line() {
        let err = assemble("emit.a 0x41\nbogus r0").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
        assert!(err.to_string().starts_with("line 2:"));
    }

    #[test]
    fn errors_on_bad_operands() {
        assert!(assemble("const r9, 1").is_err());
        assert!(assemble("emit.a 300").is_err());
        assert!(assemble("jmp 200").is_err());
        assert!(assemble("add r0").is_err());
        assert!(assemble("copy.a -> C").is_err());
        assert!(assemble("read.a 0x10").is_err());
    }

    #[test]
    fn assembled_program_runs() {
        use crate::machine::{Machine, RoundIo};
        let p = assemble("const r0, 'x'\nemit.a r0\nend").unwrap();
        let mut m = Machine::new(p);
        let mut io = RoundIo::default();
        m.round(&mut io);
        assert_eq!(io.out_a, b"x");
    }
}
