//! The fuel-bounded transducer interpreter.
//!
//! A [`Machine`] owns a [`Program`] and eight persistent registers. Each
//! communication round, [`Machine::round`] runs the program from the top with
//! a bounded fuel budget, reading this round's inbox bytes and accumulating
//! outbox bytes. Registers persist across rounds; inboxes/outboxes do not.
//!
//! Every program is safe to run: decoding is total, jumps are reduced into
//! the code range, and the fuel bound caps the work per round, so arbitrary
//! byte strings — e.g. produced by enumeration — execute without panics or
//! divergence.

use crate::instr::{Chan, Instr, REG_COUNT};
use crate::program::Program;
use goc_core::snap::{SnapError, SnapReader, SnapWriter};

/// Register sentinel stored by `read.*` when the inbox is exhausted.
pub const EXHAUSTED: u64 = 0x100;

/// Default fuel (instructions executed) per round.
pub const DEFAULT_FUEL: u32 = 256;

/// The messages a machine consumes and produces in one round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundIo {
    /// Bytes received on channel A this round.
    pub in_a: Vec<u8>,
    /// Bytes received on channel B this round.
    pub in_b: Vec<u8>,
    /// Bytes to send on channel A next round.
    pub out_a: Vec<u8>,
    /// Bytes to send on channel B next round.
    pub out_b: Vec<u8>,
}

impl RoundIo {
    /// A round with the given inbox contents and empty outboxes.
    pub fn with_inputs(in_a: impl Into<Vec<u8>>, in_b: impl Into<Vec<u8>>) -> Self {
        RoundIo { in_a: in_a.into(), in_b: in_b.into(), out_a: Vec::new(), out_b: Vec::new() }
    }

    /// Empties all four boxes, keeping their allocations, so one `RoundIo`
    /// can be reused for every round of a candidate's run without
    /// per-round buffer churn.
    pub fn reset(&mut self) {
        self.in_a.clear();
        self.in_b.clear();
        self.out_a.clear();
        self.out_b.clear();
    }

    /// [`reset`](Self::reset) followed by copying the given inbox contents
    /// in place.
    pub fn set_inputs(&mut self, in_a: &[u8], in_b: &[u8]) {
        self.reset();
        self.in_a.extend_from_slice(in_a);
        self.in_b.extend_from_slice(in_b);
    }
}

/// A running strategy VM.
///
/// # Examples
///
/// ```
/// use goc_vm::instr::Instr;
/// use goc_vm::machine::{Machine, RoundIo};
/// use goc_vm::program::Program;
///
/// let p = Program::assemble(&[Instr::EmitA(b'x'), Instr::EndRound]);
/// let mut m = Machine::new(p);
/// let mut io = RoundIo::default();
/// m.round(&mut io);
/// assert_eq!(io.out_a, b"x");
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    program: Program,
    regs: [u64; REG_COUNT],
    fuel_per_round: u32,
    halted: Option<Vec<u8>>,
    instructions_retired: u64,
}

impl Machine {
    /// A machine for `program` with the default fuel budget.
    pub fn new(program: Program) -> Self {
        Machine::with_fuel(program, DEFAULT_FUEL)
    }

    /// A machine with an explicit per-round fuel budget.
    ///
    /// # Panics
    ///
    /// Panics if `fuel_per_round == 0`.
    pub fn with_fuel(program: Program, fuel_per_round: u32) -> Self {
        assert!(fuel_per_round > 0, "Machine requires positive fuel");
        Machine {
            program,
            regs: [0; REG_COUNT],
            fuel_per_round,
            halted: None,
            instructions_retired: 0,
        }
    }

    /// The program being run.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The per-round fuel budget.
    pub fn fuel_per_round(&self) -> u32 {
        self.fuel_per_round
    }

    /// Register contents (persist across rounds).
    pub fn regs(&self) -> &[u64; REG_COUNT] {
        &self.regs
    }

    /// `Some(final output)` once a `halt` instruction has executed.
    pub fn halted(&self) -> Option<&[u8]> {
        self.halted.as_deref()
    }

    /// Total instructions retired over the machine's lifetime.
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Executes one round: runs the program from the top until `end`,
    /// `halt`, code end, or fuel exhaustion, filling `io`'s outboxes.
    ///
    /// A halted machine does nothing (outboxes stay empty).
    pub fn round(&mut self, io: &mut RoundIo) {
        if self.halted.is_some() || self.program.is_empty() {
            return;
        }
        let code_len = self.program.len();
        let mut pc = 0usize;
        let mut fuel = self.fuel_per_round;
        let mut cur_a = 0usize; // inbox A cursor
        let mut cur_b = 0usize; // inbox B cursor
        while pc < code_len && fuel > 0 {
            fuel -= 1;
            self.instructions_retired += 1;
            let (instr, used) = self.program.decode_at(pc);
            let mut next_pc = pc + used;
            match instr {
                Instr::Halt => {
                    self.halted = Some(io.out_b.clone());
                    return;
                }
                Instr::EmitA(b) => io.out_a.push(b),
                Instr::EmitB(b) => io.out_b.push(b),
                Instr::EmitAReg(r) => io.out_a.push(self.regs[r.index()] as u8),
                Instr::EmitBReg(r) => io.out_b.push(self.regs[r.index()] as u8),
                Instr::ReadA(r) => {
                    self.regs[r.index()] = match io.in_a.get(cur_a) {
                        Some(&b) => {
                            cur_a += 1;
                            b as u64
                        }
                        None => EXHAUSTED,
                    };
                }
                Instr::ReadB(r) => {
                    self.regs[r.index()] = match io.in_b.get(cur_b) {
                        Some(&b) => {
                            cur_b += 1;
                            b as u64
                        }
                        None => EXHAUSTED,
                    };
                }
                Instr::Const(r, b) => self.regs[r.index()] = b as u64,
                Instr::Add(r, s) => {
                    self.regs[r.index()] =
                        self.regs[r.index()].wrapping_add(self.regs[s.index()])
                }
                Instr::Inc(r) => {
                    self.regs[r.index()] = self.regs[r.index()].wrapping_add(1)
                }
                Instr::JmpIfZero(r, d) => {
                    if self.regs[r.index()] == 0 {
                        next_pc = Self::jump_target(pc, d, code_len);
                    }
                }
                Instr::Jmp(d) => next_pc = Self::jump_target(pc, d, code_len),
                Instr::CopyA(dest) => {
                    let rest = &io.in_a[cur_a.min(io.in_a.len())..];
                    match dest {
                        Chan::A => io.out_a.extend_from_slice(rest),
                        Chan::B => io.out_b.extend_from_slice(rest),
                    }
                    cur_a = io.in_a.len();
                }
                Instr::CopyB(dest) => {
                    let rest = io.in_b[cur_b.min(io.in_b.len())..].to_vec();
                    match dest {
                        Chan::A => io.out_a.extend_from_slice(&rest),
                        Chan::B => io.out_b.extend_from_slice(&rest),
                    }
                    cur_b = io.in_b.len();
                }
                Instr::AddConst(r, b) => {
                    self.regs[r.index()] = self.regs[r.index()].wrapping_add(b as u64)
                }
                Instr::EndRound => return,
            }
            pc = next_pc;
        }
    }

    /// Reduces a relative jump into `[0, code_len)` (wrapping), keeping every
    /// jump target valid.
    fn jump_target(pc: usize, displacement: i8, code_len: usize) -> usize {
        debug_assert!(code_len > 0);
        let target = pc as i64 + displacement as i64;
        target.rem_euclid(code_len as i64) as usize
    }

    /// Executes one round through a predecoded program — the jump-table
    /// dispatch twin of [`Machine::round`], observably identical (outboxes,
    /// registers, halt payload, retired-instruction count) but with decode,
    /// operand reads, and jump reduction all hoisted out of the loop.
    ///
    /// `decoded` must be [`DecodedProgram::new`] of this machine's program;
    /// that invariant is debug-asserted.
    pub fn round_decoded(&mut self, decoded: &DecodedProgram, io: &mut RoundIo) {
        debug_assert_eq!(
            decoded.code(),
            self.program.as_bytes(),
            "DecodedProgram does not match this machine's program"
        );
        if self.halted.is_some() || self.program.is_empty() {
            return;
        }
        let code_len = decoded.len();
        let mut pc = 0usize;
        let mut fuel = self.fuel_per_round;
        let mut cur_a = 0usize;
        let mut cur_b = 0usize;
        while pc < code_len && fuel > 0 {
            fuel -= 1;
            self.instructions_retired += 1;
            match decoded.step(&mut pc, &mut self.regs, io, &mut cur_a, &mut cur_b) {
                StepOutcome::Continue => {}
                StepOutcome::End => return,
                StepOutcome::Halt => {
                    self.halted = Some(io.out_b.clone());
                    return;
                }
            }
        }
    }

    /// Consumes the machine, returning its program (lets the candidate
    /// arena recycle program buffers on elimination).
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Serializes the machine's mutable state (registers, halt payload,
    /// retired-instruction count), prefixed by its identity — the canonical
    /// program bytes and the fuel budget — which
    /// [`restore_snap`](Self::restore_snap) verifies rather than rebuilds.
    pub fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.bytes(self.program.as_bytes());
        w.u32(self.fuel_per_round);
        for r in self.regs {
            w.u64(r);
        }
        match &self.halted {
            None => w.u8(0),
            Some(out) => {
                w.u8(1);
                w.bytes(out);
            }
        }
        w.u64(self.instructions_retired);
        Ok(())
    }

    /// Restores state written by [`save_snap`](Self::save_snap) into this
    /// machine, which must run the same program with the same fuel budget
    /// ([`SnapError::Mismatch`] otherwise — a different program cannot
    /// continue the saved run).
    pub fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let program = r.bytes("vm program")?;
        if program != self.program.as_bytes() {
            return Err(SnapError::Mismatch {
                context: "vm program",
                expected: format!("{} bytes", self.program.len()),
                found: format!("{} bytes", program.len()),
            });
        }
        let fuel = r.u32("vm fuel")?;
        if fuel != self.fuel_per_round {
            return Err(SnapError::Mismatch {
                context: "vm fuel",
                expected: self.fuel_per_round.to_string(),
                found: fuel.to_string(),
            });
        }
        for slot in &mut self.regs {
            *slot = r.u64("vm register")?;
        }
        self.halted = match r.u8("vm halt tag")? {
            0 => None,
            1 => Some(r.bytes("vm halt output")?.to_vec()),
            found => return Err(SnapError::BadTag { context: "vm halt tag", found }),
        };
        self.instructions_retired = r.u64("vm retired")?;
        Ok(())
    }
}

/// Outcome of executing one decoded instruction (see [`DecodedProgram::step`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Fell through or jumped; the round continues.
    Continue,
    /// `end` — the round is over.
    End,
    /// `halt` — the caller records the current B outbox as final output.
    Halt,
}

/// One predecoded instruction slot (see [`DecodedProgram`]).
#[derive(Clone, Copy, Debug)]
struct DecodedOp {
    instr: Instr,
    /// `pos + encoded length`: the fall-through pc.
    next: u32,
    /// Precomputed, range-reduced target for `jmp` / taken `jz`; 0 otherwise.
    target: u32,
}

/// A program predecoded for jump-table dispatch: one op per **byte offset**
/// (jumps may land mid-instruction, so every offset is a legal entry point),
/// with fall-through and jump targets resolved up front. One decode is
/// shared by every round of a machine and by every lane of a
/// [`BatchVm`](crate::batch::BatchVm) running the same program.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    code: Box<[u8]>,
    ops: Box<[DecodedOp]>,
}

impl DecodedProgram {
    /// Predecodes `program` at every byte offset.
    pub fn new(program: &Program) -> Self {
        let code = program.as_bytes();
        let len = code.len();
        let ops = (0..len)
            .map(|pos| {
                let (instr, used) = Instr::decode(code, pos);
                let target = match instr {
                    Instr::Jmp(d) | Instr::JmpIfZero(_, d) => {
                        Machine::jump_target(pos, d, len) as u32
                    }
                    _ => 0,
                };
                DecodedOp { instr, next: (pos + used) as u32, target }
            })
            .collect();
        DecodedProgram { code: code.into(), ops }
    }

    /// The raw program bytes this table was built from.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Code length in bytes (== number of decoded slots).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the instruction at `*pc`, mirroring one iteration of
    /// [`Machine::round`]'s loop body exactly. The caller owns the fuel and
    /// retired-instruction accounting (charged *before* this call, as the
    /// scalar loop does).
    #[inline(always)]
    pub(crate) fn step(
        &self,
        pc: &mut usize,
        regs: &mut [u64; REG_COUNT],
        io: &mut RoundIo,
        cur_a: &mut usize,
        cur_b: &mut usize,
    ) -> StepOutcome {
        let op = self.ops[*pc];
        let mut next_pc = op.next as usize;
        match op.instr {
            Instr::Halt => return StepOutcome::Halt,
            Instr::EmitA(b) => io.out_a.push(b),
            Instr::EmitB(b) => io.out_b.push(b),
            Instr::EmitAReg(r) => io.out_a.push(regs[r.index()] as u8),
            Instr::EmitBReg(r) => io.out_b.push(regs[r.index()] as u8),
            Instr::ReadA(r) => {
                regs[r.index()] = match io.in_a.get(*cur_a) {
                    Some(&b) => {
                        *cur_a += 1;
                        b as u64
                    }
                    None => EXHAUSTED,
                };
            }
            Instr::ReadB(r) => {
                regs[r.index()] = match io.in_b.get(*cur_b) {
                    Some(&b) => {
                        *cur_b += 1;
                        b as u64
                    }
                    None => EXHAUSTED,
                };
            }
            Instr::Const(r, b) => regs[r.index()] = b as u64,
            Instr::Add(r, s) => regs[r.index()] = regs[r.index()].wrapping_add(regs[s.index()]),
            Instr::Inc(r) => regs[r.index()] = regs[r.index()].wrapping_add(1),
            Instr::JmpIfZero(r, _) => {
                if regs[r.index()] == 0 {
                    next_pc = op.target as usize;
                }
            }
            Instr::Jmp(_) => next_pc = op.target as usize,
            Instr::CopyA(dest) => {
                let rest = &io.in_a[(*cur_a).min(io.in_a.len())..];
                match dest {
                    Chan::A => io.out_a.extend_from_slice(rest),
                    Chan::B => io.out_b.extend_from_slice(rest),
                }
                *cur_a = io.in_a.len();
            }
            Instr::CopyB(dest) => {
                let rest = io.in_b[(*cur_b).min(io.in_b.len())..].to_vec();
                match dest {
                    Chan::A => io.out_a.extend_from_slice(&rest),
                    Chan::B => io.out_b.extend_from_slice(&rest),
                }
                *cur_b = io.in_b.len();
            }
            Instr::AddConst(r, b) => regs[r.index()] = regs[r.index()].wrapping_add(b as u64),
            Instr::EndRound => return StepOutcome::End,
        }
        *pc = next_pc;
        StepOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    fn run_once(instrs: &[Instr], in_a: &[u8], in_b: &[u8]) -> (Machine, RoundIo) {
        let mut m = Machine::new(Program::assemble(instrs));
        let mut io = RoundIo::with_inputs(in_a, in_b);
        m.round(&mut io);
        (m, io)
    }

    #[test]
    fn emit_immediates() {
        let (_, io) = run_once(&[Instr::EmitA(1), Instr::EmitB(2), Instr::EmitA(3)], b"", b"");
        assert_eq!(io.out_a, vec![1, 3]);
        assert_eq!(io.out_b, vec![2]);
    }

    #[test]
    fn read_and_emit_register() {
        let (_, io) = run_once(
            &[Instr::ReadA(Reg::new(0)), Instr::AddConst(Reg::new(0), 1), Instr::EmitBReg(Reg::new(0))],
            b"\x41",
            b"",
        );
        assert_eq!(io.out_b, vec![0x42]);
    }

    #[test]
    fn read_exhausted_sets_sentinel() {
        let (m, _) = run_once(&[Instr::ReadA(Reg::new(3))], b"", b"");
        assert_eq!(m.regs()[3], EXHAUSTED);
    }

    #[test]
    fn copy_forwards_remaining_inbox() {
        let (_, io) = run_once(
            &[Instr::ReadA(Reg::new(0)), Instr::CopyA(Chan::B)],
            b"abc",
            b"",
        );
        // First byte consumed by read, rest copied.
        assert_eq!(io.out_b, b"bc");
    }

    #[test]
    fn copy_b_to_a_relays_world_feedback() {
        let (_, io) = run_once(&[Instr::CopyB(Chan::A)], b"", b"ACK");
        assert_eq!(io.out_a, b"ACK");
    }

    #[test]
    fn halt_records_b_outbox_as_output() {
        let (m, io) = run_once(
            &[Instr::EmitB(b'o'), Instr::EmitB(b'k'), Instr::Halt, Instr::EmitB(b'!')],
            b"",
            b"",
        );
        assert_eq!(m.halted(), Some(b"ok".as_slice()));
        // Output bytes stay in the outbox too (the round's sends are real).
        assert_eq!(io.out_b, b"ok");
    }

    #[test]
    fn halted_machine_is_inert() {
        let (mut m, _) = run_once(&[Instr::Halt], b"", b"");
        assert!(m.halted().is_some());
        let mut io = RoundIo::with_inputs(b"x".as_slice(), b"".as_slice());
        m.round(&mut io);
        assert!(io.out_a.is_empty() && io.out_b.is_empty());
    }

    #[test]
    fn registers_persist_across_rounds() {
        let p = Program::assemble(&[Instr::Inc(Reg::new(0)), Instr::EmitAReg(Reg::new(0))]);
        let mut m = Machine::new(p);
        for expected in 1..=3u8 {
            let mut io = RoundIo::default();
            m.round(&mut io);
            assert_eq!(io.out_a, vec![expected]);
        }
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        // jmp +0 loops forever; fuel must stop it.
        let p = Program::assemble(&[Instr::Jmp(0)]);
        let mut m = Machine::with_fuel(p, 100);
        let mut io = RoundIo::default();
        m.round(&mut io);
        assert_eq!(m.instructions_retired(), 100);
    }

    #[test]
    fn backward_jump_with_counter_builds_loop() {
        // r0 = 3; loop: emit.a r0; r0 += 255 (i.e. -1 mod 256 at byte level
        // is not what we want for u64, so count down differently):
        // Here: emit while r1 == 0 pattern — simpler: emit.a r0 three times
        // via explicit unrolled check is overkill; instead test jz skipping.
        let p = Program::assemble(&[
            Instr::JmpIfZero(Reg::new(0), 4), // r0 == 0 initially: skip next (emit.a 0xEE is 2 bytes; jz is 3 bytes; +4 from jz start lands past emit)
            Instr::EmitA(0xee),
            Instr::EmitA(0x01),
        ]);
        let mut m = Machine::new(p);
        let mut io = RoundIo::default();
        m.round(&mut io);
        // jz at pc=0 (3 bytes), +4 → pc=4: that's the second EmitA? Layout:
        // 0..3 jz, 3..5 emit 0xee, 5..7 emit 0x01 → pc=4 lands mid-instruction
        // (operand of the first emit) — decoding from there is still total.
        // The byte at 4 is 0xee → opcode 0xee % 16 = 14 (AddConst).
        // Next decode consumes 3 bytes → pc=7 = end. So only nothing emitted.
        assert!(io.out_a.is_empty());
    }

    #[test]
    fn empty_program_is_inert() {
        let mut m = Machine::new(Program::default());
        let mut io = RoundIo::with_inputs(b"abc".as_slice(), b"def".as_slice());
        m.round(&mut io);
        assert!(io.out_a.is_empty() && io.out_b.is_empty());
        assert!(m.halted().is_none());
    }

    #[test]
    fn jump_target_wraps_both_directions() {
        assert_eq!(Machine::jump_target(0, -1, 10), 9);
        assert_eq!(Machine::jump_target(9, 3, 10), 2);
        assert_eq!(Machine::jump_target(5, 0, 10), 5);
    }

    #[test]
    #[should_panic(expected = "positive fuel")]
    fn zero_fuel_panics() {
        let _ = Machine::with_fuel(Program::default(), 0);
    }
}
