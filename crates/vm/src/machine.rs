//! The fuel-bounded transducer interpreter.
//!
//! A [`Machine`] owns a [`Program`] and eight persistent registers. Each
//! communication round, [`Machine::round`] runs the program from the top with
//! a bounded fuel budget, reading this round's inbox bytes and accumulating
//! outbox bytes. Registers persist across rounds; inboxes/outboxes do not.
//!
//! Every program is safe to run: decoding is total, jumps are reduced into
//! the code range, and the fuel bound caps the work per round, so arbitrary
//! byte strings — e.g. produced by enumeration — execute without panics or
//! divergence.
//!
//! **Two interpreter cores, one semantics.** The default core predecodes the
//! program once into a [`DecodedProgram`] — a dense opcode index plus
//! flattened operands per byte offset — and executes through `DISPATCH`, a
//! `const` table of per-opcode handler functions (unsafe-free fn-pointer
//! dispatch). Scalar rounds, the lockstep batch interpreter
//! ([`BatchVm`](crate::batch::BatchVm)), and the prewarm executor all step
//! through the same table via `StepLane`, so there is exactly one place
//! opcode semantics live. `GOC_DISPATCH=0` (see [`dispatch`](crate::dispatch))
//! selects `Machine::round_match`'s original `match` loop instead — kept as
//! the executable specification the table is differentially tested against.

use crate::instr::{Chan, Instr, OPCODE_COUNT, REG_COUNT};
use crate::program::Program;
use goc_core::snap::{SnapError, SnapReader, SnapWriter};
use std::sync::Arc;

/// Register sentinel stored by `read.*` when the inbox is exhausted.
pub const EXHAUSTED: u64 = 0x100;

/// Default fuel (instructions executed) per round.
pub const DEFAULT_FUEL: u32 = 256;

/// The messages a machine consumes and produces in one round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundIo {
    /// Bytes received on channel A this round.
    pub in_a: Vec<u8>,
    /// Bytes received on channel B this round.
    pub in_b: Vec<u8>,
    /// Bytes to send on channel A next round.
    pub out_a: Vec<u8>,
    /// Bytes to send on channel B next round.
    pub out_b: Vec<u8>,
}

impl RoundIo {
    /// A round with the given inbox contents and empty outboxes.
    pub fn with_inputs(in_a: impl Into<Vec<u8>>, in_b: impl Into<Vec<u8>>) -> Self {
        RoundIo { in_a: in_a.into(), in_b: in_b.into(), out_a: Vec::new(), out_b: Vec::new() }
    }

    /// Empties all four boxes, keeping their allocations, so one `RoundIo`
    /// can be reused for every round of a candidate's run without
    /// per-round buffer churn.
    pub fn reset(&mut self) {
        self.in_a.clear();
        self.in_b.clear();
        self.out_a.clear();
        self.out_b.clear();
    }

    /// [`reset`](Self::reset) followed by copying the given inbox contents
    /// in place.
    pub fn set_inputs(&mut self, in_a: &[u8], in_b: &[u8]) {
        self.reset();
        self.in_a.extend_from_slice(in_a);
        self.in_b.extend_from_slice(in_b);
    }
}

/// A running strategy VM.
///
/// # Examples
///
/// ```
/// use goc_vm::instr::Instr;
/// use goc_vm::machine::{Machine, RoundIo};
/// use goc_vm::program::Program;
///
/// let p = Program::assemble(&[Instr::EmitA(b'x'), Instr::EndRound]);
/// let mut m = Machine::new(p);
/// let mut io = RoundIo::default();
/// m.round(&mut io);
/// assert_eq!(io.out_a, b"x");
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    program: Program,
    regs: [u64; REG_COUNT],
    fuel_per_round: u32,
    halted: Option<Vec<u8>>,
    instructions_retired: u64,
    /// Lazily built (and `Clone`-shared) decode for table dispatch. Never
    /// serialized: snapshots carry the program bytes, and a restore into the
    /// same program keeps the decode valid.
    decoded: Option<Arc<DecodedProgram>>,
}

impl Machine {
    /// A machine for `program` with the default fuel budget.
    pub fn new(program: Program) -> Self {
        Machine::with_fuel(program, DEFAULT_FUEL)
    }

    /// A machine with an explicit per-round fuel budget.
    ///
    /// # Panics
    ///
    /// Panics if `fuel_per_round == 0`.
    pub fn with_fuel(program: Program, fuel_per_round: u32) -> Self {
        assert!(fuel_per_round > 0, "Machine requires positive fuel");
        Machine {
            program,
            regs: [0; REG_COUNT],
            fuel_per_round,
            halted: None,
            instructions_retired: 0,
            decoded: None,
        }
    }

    /// The program being run.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The per-round fuel budget.
    pub fn fuel_per_round(&self) -> u32 {
        self.fuel_per_round
    }

    /// Register contents (persist across rounds).
    pub fn regs(&self) -> &[u64; REG_COUNT] {
        &self.regs
    }

    /// `Some(final output)` once a `halt` instruction has executed.
    pub fn halted(&self) -> Option<&[u8]> {
        self.halted.as_deref()
    }

    /// Total instructions retired over the machine's lifetime.
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Executes one round: runs the program from the top until `end`,
    /// `halt`, code end, or fuel exhaustion, filling `io`'s outboxes.
    ///
    /// A halted machine does nothing (outboxes stay empty).
    ///
    /// With [`dispatch::enabled`](crate::dispatch::enabled) (the default)
    /// the round runs through the predecoded handler table, built lazily on
    /// first use and shared across rounds; `GOC_DISPATCH=0` selects the
    /// `match` loop in `round_match`. Both cores are observably identical.
    pub fn round(&mut self, io: &mut RoundIo) {
        if self.halted.is_some() || self.program.is_empty() {
            return;
        }
        if crate::dispatch::enabled() {
            let decoded = match &self.decoded {
                Some(d) => Arc::clone(d),
                None => {
                    let d = Arc::new(DecodedProgram::new(&self.program));
                    self.decoded = Some(Arc::clone(&d));
                    d
                }
            };
            self.round_decoded(&decoded, io);
        } else {
            self.round_match(io);
        }
    }

    /// The original scalar `match` interpreter loop — the executable
    /// specification the dispatch table is tested against, and the round
    /// core when `GOC_DISPATCH=0`.
    fn round_match(&mut self, io: &mut RoundIo) {
        if self.halted.is_some() || self.program.is_empty() {
            return;
        }
        let code_len = self.program.len();
        let mut pc = 0usize;
        let mut fuel = self.fuel_per_round;
        let mut cur_a = 0usize; // inbox A cursor
        let mut cur_b = 0usize; // inbox B cursor
        while pc < code_len && fuel > 0 {
            fuel -= 1;
            self.instructions_retired += 1;
            let (instr, used) = self.program.decode_at(pc);
            let mut next_pc = pc + used;
            match instr {
                Instr::Halt => {
                    self.halted = Some(io.out_b.clone());
                    return;
                }
                Instr::EmitA(b) => io.out_a.push(b),
                Instr::EmitB(b) => io.out_b.push(b),
                Instr::EmitAReg(r) => io.out_a.push(self.regs[r.index()] as u8),
                Instr::EmitBReg(r) => io.out_b.push(self.regs[r.index()] as u8),
                Instr::ReadA(r) => {
                    self.regs[r.index()] = match io.in_a.get(cur_a) {
                        Some(&b) => {
                            cur_a += 1;
                            b as u64
                        }
                        None => EXHAUSTED,
                    };
                }
                Instr::ReadB(r) => {
                    self.regs[r.index()] = match io.in_b.get(cur_b) {
                        Some(&b) => {
                            cur_b += 1;
                            b as u64
                        }
                        None => EXHAUSTED,
                    };
                }
                Instr::Const(r, b) => self.regs[r.index()] = b as u64,
                Instr::Add(r, s) => {
                    self.regs[r.index()] =
                        self.regs[r.index()].wrapping_add(self.regs[s.index()])
                }
                Instr::Inc(r) => {
                    self.regs[r.index()] = self.regs[r.index()].wrapping_add(1)
                }
                Instr::JmpIfZero(r, d) => {
                    if self.regs[r.index()] == 0 {
                        next_pc = Self::jump_target(pc, d, code_len);
                    }
                }
                Instr::Jmp(d) => next_pc = Self::jump_target(pc, d, code_len),
                Instr::CopyA(dest) => {
                    let rest = &io.in_a[cur_a.min(io.in_a.len())..];
                    match dest {
                        Chan::A => io.out_a.extend_from_slice(rest),
                        Chan::B => io.out_b.extend_from_slice(rest),
                    }
                    cur_a = io.in_a.len();
                }
                Instr::CopyB(dest) => {
                    let rest = io.in_b[cur_b.min(io.in_b.len())..].to_vec();
                    match dest {
                        Chan::A => io.out_a.extend_from_slice(&rest),
                        Chan::B => io.out_b.extend_from_slice(&rest),
                    }
                    cur_b = io.in_b.len();
                }
                Instr::AddConst(r, b) => {
                    self.regs[r.index()] = self.regs[r.index()].wrapping_add(b as u64)
                }
                Instr::EndRound => return,
            }
            pc = next_pc;
        }
    }

    /// Reduces a relative jump into `[0, code_len)` (wrapping), keeping every
    /// jump target valid.
    fn jump_target(pc: usize, displacement: i8, code_len: usize) -> usize {
        debug_assert!(code_len > 0);
        let target = pc as i64 + displacement as i64;
        target.rem_euclid(code_len as i64) as usize
    }

    /// Executes one round through a predecoded program — the jump-table
    /// dispatch twin of [`Machine::round`], observably identical (outboxes,
    /// registers, halt payload, retired-instruction count) but with decode,
    /// operand reads, and jump reduction all hoisted out of the loop.
    ///
    /// `decoded` must be [`DecodedProgram::new`] of this machine's program;
    /// that invariant is debug-asserted.
    pub fn round_decoded(&mut self, decoded: &DecodedProgram, io: &mut RoundIo) {
        debug_assert_eq!(
            decoded.code(),
            self.program.as_bytes(),
            "DecodedProgram does not match this machine's program"
        );
        if self.halted.is_some() || self.program.is_empty() {
            return;
        }
        let code_len = decoded.len();
        let mut pc = 0usize;
        let mut fuel = self.fuel_per_round;
        let mut cur_a = 0usize;
        let mut cur_b = 0usize;
        while pc < code_len && fuel > 0 {
            fuel -= 1;
            self.instructions_retired += 1;
            let mut lane = StepLane {
                pc: &mut pc,
                regs: RegLane::scalar(&mut self.regs),
                io: &mut *io,
                cur_a: &mut cur_a,
                cur_b: &mut cur_b,
            };
            match decoded.step(&mut lane) {
                StepOutcome::Continue => {}
                StepOutcome::End => return,
                StepOutcome::Halt => {
                    self.halted = Some(io.out_b.clone());
                    return;
                }
            }
        }
    }

    /// Consumes the machine, returning its program (lets the candidate
    /// arena recycle program buffers on elimination).
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Serializes the machine's mutable state (registers, halt payload,
    /// retired-instruction count), prefixed by its identity — the canonical
    /// program bytes and the fuel budget — which
    /// [`restore_snap`](Self::restore_snap) verifies rather than rebuilds.
    pub fn save_snap(&self, w: &mut SnapWriter<'_>) -> Result<(), SnapError> {
        w.bytes(self.program.as_bytes());
        w.u32(self.fuel_per_round);
        for r in self.regs {
            w.u64(r);
        }
        match &self.halted {
            None => w.u8(0),
            Some(out) => {
                w.u8(1);
                w.bytes(out);
            }
        }
        w.u64(self.instructions_retired);
        Ok(())
    }

    /// Restores state written by [`save_snap`](Self::save_snap) into this
    /// machine, which must run the same program with the same fuel budget
    /// ([`SnapError::Mismatch`] otherwise — a different program cannot
    /// continue the saved run).
    pub fn restore_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let program = r.bytes("vm program")?;
        if program != self.program.as_bytes() {
            return Err(SnapError::Mismatch {
                context: "vm program",
                expected: format!("{} bytes", self.program.len()),
                found: format!("{} bytes", program.len()),
            });
        }
        let fuel = r.u32("vm fuel")?;
        if fuel != self.fuel_per_round {
            return Err(SnapError::Mismatch {
                context: "vm fuel",
                expected: self.fuel_per_round.to_string(),
                found: fuel.to_string(),
            });
        }
        for slot in &mut self.regs {
            *slot = r.u64("vm register")?;
        }
        self.halted = match r.u8("vm halt tag")? {
            0 => None,
            1 => Some(r.bytes("vm halt output")?.to_vec()),
            found => return Err(SnapError::BadTag { context: "vm halt tag", found }),
        };
        self.instructions_retired = r.u64("vm retired")?;
        Ok(())
    }
}

/// Outcome of executing one decoded instruction (see [`DecodedProgram::step`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Fell through or jumped; the round continues.
    Continue,
    /// `end` — the round is over.
    End,
    /// `halt` — the caller records the current B outbox as final output.
    Halt,
}

/// A strided view of one lane's registers, so the scalar machine's
/// `[u64; REG_COUNT]` (stride 1, lane 0) and one lane of the batch
/// interpreter's per-register columns (stride = column stride) read and
/// write through the same two accessors — the dispatch handlers see exactly
/// one register model. Register `r` lives at `slots[r * stride + lane]`.
pub(crate) struct RegLane<'a> {
    slots: &'a mut [u64],
    stride: usize,
    lane: usize,
}

impl<'a> RegLane<'a> {
    /// The scalar view over a machine's own register array.
    #[inline(always)]
    pub(crate) fn scalar(regs: &'a mut [u64; REG_COUNT]) -> Self {
        RegLane { slots: regs, stride: 1, lane: 0 }
    }

    /// One lane of a struct-of-arrays register file.
    #[inline(always)]
    pub(crate) fn strided(slots: &'a mut [u64], stride: usize, lane: usize) -> Self {
        debug_assert!(lane < stride, "lane {lane} outside stride {stride}");
        debug_assert!(slots.len() >= REG_COUNT * stride, "register file too small");
        RegLane { slots, stride, lane }
    }

    #[inline(always)]
    fn get(&self, r: u8) -> u64 {
        self.slots[r as usize * self.stride + self.lane]
    }

    #[inline(always)]
    fn set(&mut self, r: u8, v: u64) {
        self.slots[r as usize * self.stride + self.lane] = v;
    }
}

/// The mutable per-round execution state of one lane, threaded through every
/// dispatch handler. The caller owns fuel and retired-instruction accounting
/// (charged *before* each step, as the scalar loop does).
pub(crate) struct StepLane<'a> {
    pub(crate) pc: &'a mut usize,
    pub(crate) regs: RegLane<'a>,
    pub(crate) io: &'a mut RoundIo,
    pub(crate) cur_a: &'a mut usize,
    pub(crate) cur_b: &'a mut usize,
}

impl StepLane<'_> {
    /// Falls through to `op`'s next pc and continues the round.
    #[inline(always)]
    fn advance(&mut self, op: DecodedOp) -> StepOutcome {
        *self.pc = op.next as usize;
        StepOutcome::Continue
    }
}

/// One predecoded instruction slot (see [`DecodedProgram`]): the dense
/// opcode index that selects the [`DISPATCH`] handler, plus its operands
/// flattened out of [`Instr`] (register indices already reduced mod
/// `REG_COUNT`, channel selectors as 0 = A / 1 = B).
#[derive(Clone, Copy, Debug)]
struct DecodedOp {
    /// Dense opcode index in `0..OPCODE_COUNT` — the handler-table slot.
    op: u8,
    /// First operand: register index, immediate byte, or channel selector.
    a: u8,
    /// Second operand (two-operand opcodes only).
    b: u8,
    /// `pos + encoded length`: the fall-through pc.
    next: u32,
    /// Precomputed, range-reduced target for `jmp` / taken `jz`; 0 otherwise.
    target: u32,
}

/// Flattens a decoded [`Instr`] into `(dense opcode, operand a, operand b)`.
/// The dense index mirrors the opcode byte map in [`crate::instr`] exactly.
fn flatten(instr: Instr) -> (u8, u8, u8) {
    let chan = |c: Chan| match c {
        Chan::A => 0u8,
        Chan::B => 1u8,
    };
    match instr {
        Instr::Halt => (0, 0, 0),
        Instr::EmitA(x) => (1, x, 0),
        Instr::EmitB(x) => (2, x, 0),
        Instr::EmitAReg(r) => (3, r.index() as u8, 0),
        Instr::EmitBReg(r) => (4, r.index() as u8, 0),
        Instr::ReadA(r) => (5, r.index() as u8, 0),
        Instr::ReadB(r) => (6, r.index() as u8, 0),
        Instr::Const(r, x) => (7, r.index() as u8, x),
        Instr::Add(r, s) => (8, r.index() as u8, s.index() as u8),
        Instr::Inc(r) => (9, r.index() as u8, 0),
        Instr::JmpIfZero(r, _) => (10, r.index() as u8, 0),
        Instr::Jmp(_) => (11, 0, 0),
        Instr::CopyA(c) => (12, chan(c), 0),
        Instr::CopyB(c) => (13, chan(c), 0),
        Instr::AddConst(r, x) => (14, r.index() as u8, x),
        Instr::EndRound => (15, 0, 0),
    }
}

/// One handler per opcode. Handlers set `*lane.pc` themselves (fall-through
/// or jump target) and return the round outcome; `Halt`/`End` leave the pc
/// untouched since the round is over.
type Handler = fn(DecodedOp, &mut StepLane<'_>) -> StepOutcome;

/// The computed-goto-style dispatch table, indexed by [`DecodedOp::op`].
/// Order must match [`flatten`] (== the opcode byte map in [`crate::instr`]).
const DISPATCH: [Handler; OPCODE_COUNT as usize] = [
    op_halt,
    op_emit_a,
    op_emit_b,
    op_emit_a_reg,
    op_emit_b_reg,
    op_read_a,
    op_read_b,
    op_const,
    op_add,
    op_inc,
    op_jmp_if_zero,
    op_jmp,
    op_copy_a,
    op_copy_b,
    op_add_const,
    op_end_round,
];

#[inline(always)]
fn op_halt(_op: DecodedOp, _s: &mut StepLane<'_>) -> StepOutcome {
    StepOutcome::Halt
}

#[inline(always)]
fn op_emit_a(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    s.io.out_a.push(op.a);
    s.advance(op)
}

#[inline(always)]
fn op_emit_b(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    s.io.out_b.push(op.a);
    s.advance(op)
}

#[inline(always)]
fn op_emit_a_reg(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    s.io.out_a.push(s.regs.get(op.a) as u8);
    s.advance(op)
}

#[inline(always)]
fn op_emit_b_reg(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    s.io.out_b.push(s.regs.get(op.a) as u8);
    s.advance(op)
}

#[inline(always)]
fn op_read_a(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    let v = match s.io.in_a.get(*s.cur_a) {
        Some(&b) => {
            *s.cur_a += 1;
            b as u64
        }
        None => EXHAUSTED,
    };
    s.regs.set(op.a, v);
    s.advance(op)
}

#[inline(always)]
fn op_read_b(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    let v = match s.io.in_b.get(*s.cur_b) {
        Some(&b) => {
            *s.cur_b += 1;
            b as u64
        }
        None => EXHAUSTED,
    };
    s.regs.set(op.a, v);
    s.advance(op)
}

#[inline(always)]
fn op_const(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    s.regs.set(op.a, op.b as u64);
    s.advance(op)
}

#[inline(always)]
fn op_add(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    let v = s.regs.get(op.a).wrapping_add(s.regs.get(op.b));
    s.regs.set(op.a, v);
    s.advance(op)
}

#[inline(always)]
fn op_inc(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    let v = s.regs.get(op.a).wrapping_add(1);
    s.regs.set(op.a, v);
    s.advance(op)
}

#[inline(always)]
fn op_jmp_if_zero(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    *s.pc = if s.regs.get(op.a) == 0 { op.target as usize } else { op.next as usize };
    StepOutcome::Continue
}

#[inline(always)]
fn op_jmp(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    *s.pc = op.target as usize;
    StepOutcome::Continue
}

#[inline(always)]
fn op_copy_a(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    let io = &mut *s.io;
    let rest = &io.in_a[(*s.cur_a).min(io.in_a.len())..];
    if op.a == 0 {
        io.out_a.extend_from_slice(rest);
    } else {
        io.out_b.extend_from_slice(rest);
    }
    *s.cur_a = io.in_a.len();
    s.advance(op)
}

#[inline(always)]
fn op_copy_b(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    let io = &mut *s.io;
    let rest = io.in_b[(*s.cur_b).min(io.in_b.len())..].to_vec();
    if op.a == 0 {
        io.out_a.extend_from_slice(&rest);
    } else {
        io.out_b.extend_from_slice(&rest);
    }
    *s.cur_b = io.in_b.len();
    s.advance(op)
}

#[inline(always)]
fn op_add_const(op: DecodedOp, s: &mut StepLane<'_>) -> StepOutcome {
    let v = s.regs.get(op.a).wrapping_add(op.b as u64);
    s.regs.set(op.a, v);
    s.advance(op)
}

#[inline(always)]
fn op_end_round(_op: DecodedOp, _s: &mut StepLane<'_>) -> StepOutcome {
    StepOutcome::End
}

/// A program predecoded for jump-table dispatch: one op per **byte offset**
/// (jumps may land mid-instruction, so every offset is a legal entry point),
/// with fall-through and jump targets resolved up front. One decode is
/// shared by every round of a machine and by every lane of a
/// [`BatchVm`](crate::batch::BatchVm) running the same program.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    code: Box<[u8]>,
    ops: Box<[DecodedOp]>,
}

impl DecodedProgram {
    /// Predecodes `program` at every byte offset, flattening each [`Instr`]
    /// into its dense opcode index and raw operands.
    pub fn new(program: &Program) -> Self {
        let code = program.as_bytes();
        let len = code.len();
        let ops = (0..len)
            .map(|pos| {
                let (instr, used) = Instr::decode(code, pos);
                let target = match instr {
                    Instr::Jmp(d) | Instr::JmpIfZero(_, d) => {
                        Machine::jump_target(pos, d, len) as u32
                    }
                    _ => 0,
                };
                let (op, a, b) = flatten(instr);
                DecodedOp { op, a, b, next: (pos + used) as u32, target }
            })
            .collect();
        DecodedProgram { code: code.into(), ops }
    }

    /// The raw program bytes this table was built from.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Code length in bytes (== number of decoded slots).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the instruction at `*lane.pc` through the dispatch table,
    /// observably identical to one iteration of the scalar `match` loop.
    /// The caller owns the fuel and retired-instruction accounting (charged
    /// *before* this call, as the scalar loop does).
    #[inline(always)]
    pub(crate) fn step(&self, lane: &mut StepLane<'_>) -> StepOutcome {
        let op = self.ops[*lane.pc];
        exec_op(op, lane)
    }
}

/// Executes one decoded op: semantically `DISPATCH[op.op](op, lane)`, written
/// as a `match` on the dense opcode index. Both forms compile to an indexed
/// jump through a constant table, but the `match` keeps the handler bodies
/// inlinable into the scalar and batch round loops — an indirect call through
/// the fn-pointer table is an inlining barrier that costs ~1.5x on
/// burner-heavy settle workloads, where the whole per-step state otherwise
/// lives in registers. The `const` table stays the canonical opcode → handler
/// map: the (unreachable by [`flatten`] construction) default arm routes
/// through it, and `exec_op_agrees_with_dispatch_table` pins each arm to its
/// table slot.
#[inline(always)]
fn exec_op(op: DecodedOp, lane: &mut StepLane<'_>) -> StepOutcome {
    match op.op {
        0 => op_halt(op, lane),
        1 => op_emit_a(op, lane),
        2 => op_emit_b(op, lane),
        3 => op_emit_a_reg(op, lane),
        4 => op_emit_b_reg(op, lane),
        5 => op_read_a(op, lane),
        6 => op_read_b(op, lane),
        7 => op_const(op, lane),
        8 => op_add(op, lane),
        9 => op_inc(op, lane),
        10 => op_jmp_if_zero(op, lane),
        11 => op_jmp(op, lane),
        12 => op_copy_a(op, lane),
        13 => op_copy_b(op, lane),
        14 => op_add_const(op, lane),
        15 => op_end_round(op, lane),
        _ => DISPATCH[op.op as usize](op, lane),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    fn run_once(instrs: &[Instr], in_a: &[u8], in_b: &[u8]) -> (Machine, RoundIo) {
        let mut m = Machine::new(Program::assemble(instrs));
        let mut io = RoundIo::with_inputs(in_a, in_b);
        m.round(&mut io);
        (m, io)
    }

    #[test]
    fn emit_immediates() {
        let (_, io) = run_once(&[Instr::EmitA(1), Instr::EmitB(2), Instr::EmitA(3)], b"", b"");
        assert_eq!(io.out_a, vec![1, 3]);
        assert_eq!(io.out_b, vec![2]);
    }

    #[test]
    fn read_and_emit_register() {
        let (_, io) = run_once(
            &[Instr::ReadA(Reg::new(0)), Instr::AddConst(Reg::new(0), 1), Instr::EmitBReg(Reg::new(0))],
            b"\x41",
            b"",
        );
        assert_eq!(io.out_b, vec![0x42]);
    }

    #[test]
    fn read_exhausted_sets_sentinel() {
        let (m, _) = run_once(&[Instr::ReadA(Reg::new(3))], b"", b"");
        assert_eq!(m.regs()[3], EXHAUSTED);
    }

    #[test]
    fn copy_forwards_remaining_inbox() {
        let (_, io) = run_once(
            &[Instr::ReadA(Reg::new(0)), Instr::CopyA(Chan::B)],
            b"abc",
            b"",
        );
        // First byte consumed by read, rest copied.
        assert_eq!(io.out_b, b"bc");
    }

    #[test]
    fn copy_b_to_a_relays_world_feedback() {
        let (_, io) = run_once(&[Instr::CopyB(Chan::A)], b"", b"ACK");
        assert_eq!(io.out_a, b"ACK");
    }

    #[test]
    fn halt_records_b_outbox_as_output() {
        let (m, io) = run_once(
            &[Instr::EmitB(b'o'), Instr::EmitB(b'k'), Instr::Halt, Instr::EmitB(b'!')],
            b"",
            b"",
        );
        assert_eq!(m.halted(), Some(b"ok".as_slice()));
        // Output bytes stay in the outbox too (the round's sends are real).
        assert_eq!(io.out_b, b"ok");
    }

    #[test]
    fn halted_machine_is_inert() {
        let (mut m, _) = run_once(&[Instr::Halt], b"", b"");
        assert!(m.halted().is_some());
        let mut io = RoundIo::with_inputs(b"x".as_slice(), b"".as_slice());
        m.round(&mut io);
        assert!(io.out_a.is_empty() && io.out_b.is_empty());
    }

    #[test]
    fn registers_persist_across_rounds() {
        let p = Program::assemble(&[Instr::Inc(Reg::new(0)), Instr::EmitAReg(Reg::new(0))]);
        let mut m = Machine::new(p);
        for expected in 1..=3u8 {
            let mut io = RoundIo::default();
            m.round(&mut io);
            assert_eq!(io.out_a, vec![expected]);
        }
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        // jmp +0 loops forever; fuel must stop it.
        let p = Program::assemble(&[Instr::Jmp(0)]);
        let mut m = Machine::with_fuel(p, 100);
        let mut io = RoundIo::default();
        m.round(&mut io);
        assert_eq!(m.instructions_retired(), 100);
    }

    #[test]
    fn backward_jump_with_counter_builds_loop() {
        // r0 = 3; loop: emit.a r0; r0 += 255 (i.e. -1 mod 256 at byte level
        // is not what we want for u64, so count down differently):
        // Here: emit while r1 == 0 pattern — simpler: emit.a r0 three times
        // via explicit unrolled check is overkill; instead test jz skipping.
        let p = Program::assemble(&[
            Instr::JmpIfZero(Reg::new(0), 4), // r0 == 0 initially: skip next (emit.a 0xEE is 2 bytes; jz is 3 bytes; +4 from jz start lands past emit)
            Instr::EmitA(0xee),
            Instr::EmitA(0x01),
        ]);
        let mut m = Machine::new(p);
        let mut io = RoundIo::default();
        m.round(&mut io);
        // jz at pc=0 (3 bytes), +4 → pc=4: that's the second EmitA? Layout:
        // 0..3 jz, 3..5 emit 0xee, 5..7 emit 0x01 → pc=4 lands mid-instruction
        // (operand of the first emit) — decoding from there is still total.
        // The byte at 4 is 0xee → opcode 0xee % 16 = 14 (AddConst).
        // Next decode consumes 3 bytes → pc=7 = end. So only nothing emitted.
        assert!(io.out_a.is_empty());
    }

    #[test]
    fn empty_program_is_inert() {
        let mut m = Machine::new(Program::default());
        let mut io = RoundIo::with_inputs(b"abc".as_slice(), b"def".as_slice());
        m.round(&mut io);
        assert!(io.out_a.is_empty() && io.out_b.is_empty());
        assert!(m.halted().is_none());
    }

    #[test]
    fn jump_target_wraps_both_directions() {
        assert_eq!(Machine::jump_target(0, -1, 10), 9);
        assert_eq!(Machine::jump_target(9, 3, 10), 2);
        assert_eq!(Machine::jump_target(5, 0, 10), 5);
    }

    #[test]
    #[should_panic(expected = "positive fuel")]
    fn zero_fuel_panics() {
        let _ = Machine::with_fuel(Program::default(), 0);
    }

    #[test]
    fn dispatch_table_matches_match_loop() {
        let p = Program::assemble(&[
            Instr::ReadA(Reg::new(1)),
            Instr::Const(Reg::new(2), 7),
            Instr::Add(Reg::new(1), Reg::new(2)),
            Instr::EmitAReg(Reg::new(1)),
            Instr::CopyB(Chan::A),
            Instr::JmpIfZero(Reg::new(3), 3),
            Instr::EmitB(0xAA),
        ]);
        let run = |table: bool| {
            crate::dispatch::with_dispatch(table, || {
                let mut m = Machine::with_fuel(p.clone(), 64);
                let mut outs = Vec::new();
                for _ in 0..3 {
                    let mut io = RoundIo::with_inputs(b"hi".as_slice(), b"yo".as_slice());
                    m.round(&mut io);
                    outs.push((io.out_a.clone(), io.out_b.clone()));
                }
                (outs, *m.regs(), m.instructions_retired(), m.halted.clone())
            })
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn exec_op_agrees_with_dispatch_table() {
        // `exec_op`'s match arms and the `DISPATCH` slots must decode the
        // same opcode → handler map: run every opcode through both from an
        // identical starting state and compare the full observable effect.
        for idx in 0..OPCODE_COUNT {
            let op = DecodedOp { op: idx, a: 1, b: 2, next: 7, target: 3 };
            let run = |dispatch: &dyn Fn(DecodedOp, &mut StepLane<'_>) -> StepOutcome| {
                let mut pc = 0usize;
                let mut regs = [0u64; REG_COUNT];
                regs[1] = 5;
                regs[2] = 9;
                let mut io = RoundIo::with_inputs(b"ab".as_slice(), b"cd".as_slice());
                let mut cur_a = 1usize;
                let mut cur_b = 0usize;
                let outcome = {
                    let mut lane = StepLane {
                        pc: &mut pc,
                        regs: RegLane::scalar(&mut regs),
                        io: &mut io,
                        cur_a: &mut cur_a,
                        cur_b: &mut cur_b,
                    };
                    dispatch(op, &mut lane)
                };
                (outcome, pc, regs, io.out_a, io.out_b, cur_a, cur_b)
            };
            assert_eq!(
                run(&exec_op),
                run(&DISPATCH[idx as usize]),
                "opcode {idx}: match arm and table slot disagree"
            );
        }
    }
}
