//! # goc-vm — an enumerable, total strategy language
//!
//! The proof of Theorem 1 in *A Theory of Goal-Oriented Communication*
//! "enumerates all relevant user strategies". This crate makes that object
//! concrete: a tiny transducer bytecode whose decoding is **total** (every
//! byte string is a valid program), interpreted with a per-round fuel bound
//! (every program is safe to run), so the length-lexicographic enumeration of
//! byte strings *is* an enumeration of the whole strategy class.
//!
//! - [`instr`] — the 16-opcode instruction set (registers, channel I/O,
//!   bounded jumps).
//! - [`program`] — programs, assembler, disassembler.
//! - [`machine`] — the fuel-bounded interpreter: a predecoded
//!   ([`DecodedProgram`]) per-opcode dispatch table shared by the scalar,
//!   batch, and prewarm paths, with the original `match` loop kept as its
//!   executable specification.
//! - [`dispatch`] — the `GOC_DISPATCH` gate selecting between the two
//!   interpreter cores (default: table dispatch).
//! - [`batch`] — the lockstep batch interpreter ([`BatchVm`]) stepping N
//!   candidates per round with one shared decode and struct-of-arrays
//!   per-register columns (`GOC_BATCH`, default on).
//! - [`arena`] — thread-local recycled buffers for candidate spawn/eliminate
//!   churn under batch mode.
//! - [`predict`] — per-program-class first-round output signatures and the
//!   top-K continuation predictor behind predicted-prefix prewarm
//!   speculation.
//! - [`adapter`] — mounting programs as `goc-core` users/servers, plus a
//!   library of small useful programs.
//! - [`cache`] — the candidate-evaluation cache memoising VM rounds by
//!   `(program, fuel, interaction prefix)` across universal-search revisits
//!   and harness trials.
//! - [`enumerate`] — the length-lex [`ProgramEnumerator`], a
//!   [`StrategyEnumerator`](goc_core::enumeration::StrategyEnumerator) over
//!   the full class or any alphabet-restricted subclass, with a
//!   canonical-signature dedup pass for finite classes.
//!
//! ## Quickstart
//!
//! ```
//! use goc_vm::adapter::{programs, VmUser};
//! use goc_vm::enumerate::ProgramEnumerator;
//!
//! // The "say hi to the server" program and its index in the enumeration
//! // over the alphabet it is written in.
//! let p = programs::say_to_peer(b"hi");
//! let class = ProgramEnumerator::over(p.as_bytes().to_vec().into_iter()
//!     .collect::<std::collections::BTreeSet<_>>()
//!     .into_iter().collect::<Vec<_>>());
//! let idx = class.index_of(&p).expect("writable in its own alphabet");
//! assert_eq!(class.program(idx), p);
//! ```

pub mod adapter;
pub mod arena;
pub mod asm;
pub mod batch;
pub mod cache;
pub mod dispatch;
pub mod enumerate;
pub mod instr;
pub mod machine;
pub mod predict;
pub mod program;

pub use adapter::{VmServer, VmUser};
pub use batch::BatchVm;
pub use enumerate::ProgramEnumerator;
pub use instr::{Chan, Instr, Reg};
pub use machine::{DecodedProgram, Machine, RoundIo};
pub use program::Program;
